//! Vendored API-subset shim of the `rand` crate.
//!
//! The build environment for this workspace has no network access, so
//! the handful of `rand` APIs the workspace uses are implemented
//! locally: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], and [`Rng::gen_range`]. The generator is
//! xoshiro256** seeded through SplitMix64 — a fixed algorithm, so
//! every stream is bit-for-bit reproducible from its seed (which is
//! the only property the simulation kernel relies on; it does *not*
//! promise the same stream as upstream `rand`'s `StdRng`).

#![warn(missing_docs)]

use std::ops::Range;

/// A random number generator: the single entry point all sampling
/// funnels through.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from uniform random bits (the shim's stand-in for
/// `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable uniformly (the shim's stand-in for `SampleRange`).
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding carrying us onto the excluded bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased via rejection on the top partial block.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let r = rng.next_u64();
                    if r < zone {
                        return self.start + (r % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i64);

/// Generic sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (e.g. `f64` uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to the full
    /// state via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Fixed algorithm — a given seed yields the same stream on every
    /// platform and in every build of this shim.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_range_hits_all_residues() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.gen_range(0u64..7) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }
}
