//! Derive macros for the vendored `serde` shim.
//!
//! `syn`/`quote` are unavailable in this no-network build environment,
//! so the item is parsed directly from the `proc_macro` token stream.
//! Supported shapes — the ones this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (arity 1 serializes transparently, like upstream
//!   serde's newtype handling),
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generics are not supported; deriving on a generic item is a
//! compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Option<Shape>, // None = unit variant
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips one attribute (`#[...]`) if the iterator is positioned on one.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                tokens.next();
            }
            _ => return,
        }
    }
}

fn skip_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        // pub(crate), pub(super), ...
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Parses the fields of a `{ ... }` body into their names, skipping
/// types (angle-bracket aware so `Vec<(f64, f64)>` fields work).
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        skip_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => panic!("expected field name, found {other}"),
            None => break,
        };
        fields.push(name);
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Consume the type: everything up to a comma at angle depth 0.
        let mut angle = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
    }
    fields
}

/// Counts the fields of a `( ... )` body (angle-bracket aware).
fn parse_tuple_arity(group: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut angle = 0i32;
    let mut saw_any = false;
    let mut last_was_comma = false;
    for tok in group {
        saw_any = true;
        last_was_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                arity += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if saw_any && !last_was_comma {
        arity += 1;
    }
    arity
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => panic!("expected variant name, found {other}"),
            None => break,
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_arity(g.stream());
                tokens.next();
                Some(Shape::Tuple(arity))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                Some(Shape::Named(fields))
            }
            _ => None,
        };
        variants.push(Variant { name, shape });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            Some(other) => panic!("expected `,` between variants, found {other}"),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the serde shim's derive does not support generic items (deriving on `{name}`)");
    }
    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                shape: Shape::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                shape: Shape::Tuple(parse_tuple_arity(g.stream())),
            },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

/// Derives `serde::Serialize` (shim data model: lowering to `Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        None => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Some(Shape::Tuple(n)) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        Some(Shape::Named(fields)) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (shim data model: rebuilding from `Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::field(__m, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __m = __v.as_map().ok_or_else(|| \
                         ::serde::DeError::expected(\"map for struct {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Shape::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                        .collect();
                    format!(
                        "let __s = __v.as_seq().ok_or_else(|| \
                         ::serde::DeError::expected(\"sequence for struct {name}\"))?;\n\
                         if __s.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"{n} elements for struct {name}\")); }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.shape.is_none())
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        None => None,
                        Some(Shape::Tuple(1)) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        Some(Shape::Tuple(n)) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__s[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __s = __payload.as_seq().ok_or_else(|| \
                                 ::serde::DeError::expected(\"sequence for variant {vname}\"))?;\n\
                                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"{n} elements for variant {vname}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n}},",
                                inits.join(", ")
                            ))
                        }
                        Some(Shape::Named(fields)) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::field(__fm, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __fm = __payload.as_map().ok_or_else(|| \
                                 ::serde::DeError::expected(\"map for variant {vname}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }})\n}},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::DeError> {{\n\
                     match __v {{\n\
                         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"unknown unit variant `{{__other}}` of {name}\"))),\n\
                         }},\n\
                         ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                             let (__tag, __payload) = &__m[0];\n\
                             match __tag.as_str() {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }}\n\
                         }},\n\
                         _ => ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"externally tagged {name}\")),\n\
                     }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}
