//! Vendored API-subset shim of `serde_json`: pretty printing and
//! parsing of the local serde shim's [`serde::Value`] data model.
//!
//! Mirrors upstream behaviour where the workspace depends on it:
//! `to_string_pretty` uses two-space indentation, refuses non-finite
//! numbers, and integers within `2^53` print without a decimal point.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error for serialization (non-finite floats) and parsing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite number.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite number
/// (JSON has no representation for NaN or infinities).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(|e| Error::new(e.0))
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                return Err(Error::new(format!(
                    "non-finite number {n} is not valid JSON"
                )));
            }
            if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.5), ("b\"x".into(), -2.0)];
        let j = to_string_pretty(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&j).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_nan() {
        assert!(to_string_pretty(&f64::NAN).is_err());
    }

    #[test]
    fn integers_print_without_point() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }
}
