//! Vendored API-subset shim of `proptest`.
//!
//! The build environment has no network access, so the slice of
//! proptest this workspace uses is implemented locally:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, range strategies
//!   over the common numeric types, tuple strategies, [`Just`],
//!   [`any`], and [`collection::vec`] / [`collection::btree_set`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from upstream, on purpose:
//!
//! * **The RNG seed is pinned.** Each test derives its seed from its
//!   own `module_path!::name`, so every run of the suite explores the
//!   same cases — reproducibility is what this workspace needs from
//!   property testing, and a failure always reproduces locally.
//! * **No shrinking.** A failing case panics with the sampled inputs
//!   available via the assertion message; since the seed is pinned,
//!   re-running reaches the same case.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The per-test random source. Deterministic: built from a seed that
/// the [`proptest!`] macro derives from the test's full path.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a generator for the given pinned seed.
    #[must_use]
    pub fn deterministic(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        self.0.gen_range(0..n)
    }
}

/// FNV-1a hash of a string, `const` so the [`proptest!`] macro can
/// derive a pinned seed from `module_path!()` at compile time.
#[must_use]
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

/// Per-suite configuration, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of an output type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f`, which yields the strategy to
    /// sample next (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // 53-bit fraction scaled to close the upper end.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        Range {
            start: self.start as f64,
            end: self.end as f64,
        }
        .sample(rng) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Types with a canonical "any value" strategy (shim subset of
/// proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — a pragmatic default for simulation
    /// parameters (upstream samples the whole bit pattern).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, e.g. `any::<bool>()`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A size specification for collection strategies: a fixed size, an
/// exclusive range, or an inclusive range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets whose elements come from `element` and whose
    /// size is drawn from `size` (best effort: gives up growing after
    /// many duplicate draws, like upstream).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(100) + 100 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub use collection::{BTreeSetStrategy, VecStrategy};

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts two expressions differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a
/// precondition. (The shim samples a fresh case instead of retrying,
/// so heavy use of assumptions thins coverage — same caveat as
/// upstream.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `config.cases` sampled cases with a
/// pinned per-test RNG seed.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            // Pinned seed: full test path hashed at compile time.
            let mut __rng = $crate::TestRng::deterministic($crate::fnv1a(
                concat!(module_path!(), "::", stringify!($name)),
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                // The closure gives `prop_assume!` an early exit that
                // skips just this case.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0.25f64..=0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
        }

        #[test]
        fn vec_sizes_in_range(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_dependent(pair in (1u64..10).prop_flat_map(|n| (Just(n), 0u64..n))) {
            let (n, k) = pair;
            prop_assert!(k < n);
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn pinned_seed_reproduces() {
        let mut a = TestRng::deterministic(1234);
        let mut b = TestRng::deterministic(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn btree_set_reaches_target_size() {
        let strat = crate::collection::btree_set(0u32..10_000, 5..=5);
        let mut rng = TestRng::deterministic(9);
        let s = crate::Strategy::sample(&strat, &mut rng);
        assert_eq!(s.len(), 5);
    }
}
