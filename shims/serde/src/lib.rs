//! Vendored API-subset shim of `serde`.
//!
//! The build environment has no network access, so this crate
//! implements the small slice of serde the workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits, their derive macros (see
//! the sibling `serde_derive` shim), and a self-describing [`Value`]
//! data model that `serde_json` (also shimmed) prints and parses.
//!
//! Representation choices mirror upstream serde's defaults so JSON
//! artefacts look conventional: structs are maps, newtype structs are
//! transparent, enums are externally tagged, tuples are sequences.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data model every serializable type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields keep their
    /// declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this value is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this value is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric contents, if this value is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean contents, if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the shape a
/// [`Deserialize`] implementation expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// A "expected X, found something else" error.
    pub fn expected(what: impl fmt::Display) -> Self {
        DeError(format!("expected {what}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves into the [`Value`] data model.
pub trait Serialize {
    /// Lowers `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a required struct field in a map value (used by derived
/// `Deserialize` impls).
///
/// # Errors
///
/// Returns [`DeError`] if the field is absent.
pub fn field<'v>(map: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    _ => Err(DeError::expected(concat!("number (", stringify!($t), ")"))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::expected("tuple sequence"))?;
                let expected = [$( stringify!($n) ),+].len();
                if seq.len() != expected {
                    return Err(DeError(format!(
                        "expected tuple of {expected}, found {} elements", seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
