//! Vendored API-subset shim of `criterion`.
//!
//! The build environment has no network access, so this implements
//! just enough of criterion's surface for the workspace's four bench
//! targets: [`Criterion`], [`Bencher::iter`] /
//! [`Bencher::iter_with_setup`], benchmark groups, [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — mean wall-clock over
//! `sample_size` timed batches after a short warm-up — and results
//! print as one line per benchmark. No statistical analysis, HTML
//! reports, or saved baselines.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier, forwarding to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Reads the benchmark-name filter from the command line (the
    /// first non-flag argument, as `cargo bench -- <filter>` passes
    /// it).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_named(id, f);
        self
    }

    fn run_named<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(id) {
            return;
        }
        let mut bencher = Bencher {
            batch: Duration::ZERO,
            iters_done: 0,
        };
        // Warm-up pass (also sizes nothing: the shim times whole
        // closure invocations).
        f(&mut bencher);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            bencher.batch = Duration::ZERO;
            bencher.iters_done = 0;
            f(&mut bencher);
            total += bencher.batch;
            iters += bencher.iters_done;
        }
        let per_iter = if iters > 0 {
            total / iters as u32
        } else {
            Duration::ZERO
        };
        println!("bench: {id:<40} {per_iter:>12.2?}/iter  ({iters} iters)");
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Prints the closing summary (a no-op in the shim).
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    /// Group-local override; the parent's setting is untouched (as in
    /// upstream criterion, where the override dies with the group).
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample size for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        match self.sample_size {
            Some(n) => {
                let saved = self.parent.sample_size;
                self.parent.sample_size = n;
                self.parent.run_named(&full, f);
                self.parent.sample_size = saved;
            }
            None => self.parent.run_named(&full, f),
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times the body closures handed to it.
#[derive(Debug)]
pub struct Bencher {
    batch: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.batch += start.elapsed();
        self.iters_done += 1;
    }

    /// Times `routine` on a fresh `setup()` input, excluding setup
    /// time from the measurement.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.batch += start.elapsed();
        self.iters_done += 1;
    }
}

/// Declares a group function that runs each target against one
/// [`Criterion`] configured from the command line.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        // 1 warm-up + 3 samples, one iter each.
        assert_eq!(calls, 4);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("yes".into()),
        };
        let mut ran = false;
        c.bench_function("no/match", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("yes/match", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default().sample_size(1);
        let mut g = c.benchmark_group("grp");
        let mut n = 0;
        g.bench_function("one", |b| b.iter(|| n += 1));
        g.finish();
        assert!(n > 0);
    }

    #[test]
    fn group_sample_size_does_not_leak_to_parent() {
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut in_group = 0u64;
        g.bench_function("one", |b| b.iter(|| in_group += 1));
        g.finish();
        assert_eq!(in_group, 3, "1 warm-up + 2 group-local samples");
        let mut after = 0u64;
        c.bench_function("outside", |b| b.iter(|| after += 1));
        assert_eq!(after, 6, "1 warm-up + the parent's 5 samples");
    }
}
