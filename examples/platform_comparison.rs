//! Table 2 on your terminal: pi-app execution times across the seven
//! 2013-era platform archetypes, Performance vs OnDemand.
//!
//! Run with: `cargo run --release --example platform_comparison`
//! (add `-- --full` for paper-scale job sizes).

use pas_repro::experiments::{runner, Fidelity};

fn main() {
    let fidelity = if std::env::args().any(|a| a == "--full") {
        Fidelity::Full
    } else {
        Fidelity::Quick
    };
    let report = runner::run_experiment("table2", fidelity).expect("table2 is registered");
    println!("{}", report.text);
    for note in &report.notes {
        println!("note: {note}");
    }
}
