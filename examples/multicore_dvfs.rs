//! The paper's closing perspective, runnable: PAS on a multi-core
//! host with global vs per-socket vs per-core DVFS domains.
//!
//! Run with: `cargo run --example multicore_dvfs`

use pas_repro::experiments::{runner, Fidelity};

fn main() {
    let report =
        runner::run_experiment("multicore", Fidelity::Full).expect("multicore is registered");
    println!("{}", report.text);
}
