//! Quickstart: the paper's headline problem and its fix, in one file.
//!
//! Two VMs share an Optiplex 755: V20 booked 20% of the processor and
//! overloaded, V70 booked 70% and lazy. We run the identical scenario
//! under (a) the Xen Credit scheduler with an ondemand governor —
//! which silently halves V20's capacity — and (b) the paper's PAS
//! scheduler, which lowers the frequency *and* compensates V20's
//! credit.
//!
//! Run with: `cargo run --example quickstart`

use pas_repro::governors::StableOndemand;
use pas_repro::hypervisor::work::{ConstantDemand, Idle};
use pas_repro::hypervisor::{HostConfig, SchedulerKind, VmConfig, VmId};
use pas_repro::pas_core::Credit;
use pas_repro::simkernel::SimDuration;

fn run(label: &str, scheduler: SchedulerKind, with_governor: bool) {
    let mut cfg = HostConfig::optiplex_defaults(scheduler);
    if with_governor {
        cfg = cfg.with_governor(Box::new(StableOndemand::new()));
    }
    let mut host = cfg.build();
    let thrash = host.fmax_mcps(); // more demand than V20 can ever get
    host.add_vm(
        VmConfig::new("v20", Credit::percent(20.0)),
        Box::new(ConstantDemand::new(thrash)),
    );
    host.add_vm(VmConfig::new("v70", Credit::percent(70.0)), Box::new(Idle));
    host.run_for(SimDuration::from_secs(120));

    let freq = host.cpu().pstates().state(host.cpu().pstate()).frequency;
    let absolute = 100.0 * host.stats().vm_absolute_fraction(VmId(0));
    let cap = host.effective_cap_pct(VmId(0)).unwrap_or(100.0);
    let energy = host.cpu().energy().joules();
    println!(
        "  {label:<22} freq = {freq}, V20 cap = {cap:5.1}%, \
         V20 absolute capacity = {absolute:5.1}% (booked 20%), energy = {energy:6.0} J"
    );
}

fn main() {
    println!("V20 overloaded + V70 lazy, 120 s on the Optiplex 755:\n");
    run("credit + performance", SchedulerKind::Credit, false);
    run("credit + ondemand", SchedulerKind::Credit, true);
    run("PAS (the paper)", SchedulerKind::Pas, false);
    println!(
        "\nThe ondemand governor lowers the frequency and V20 loses capacity it paid\n\
         for; PAS lowers the frequency too but raises V20's cap to ~33% (Equation 4),\n\
         so V20 keeps its booked 20% of fmax-equivalent capacity at lower energy."
    );
}
