//! A hosting-center day: the paper's three-phase web scenario,
//! rendered as terminal charts for all three schedulers.
//!
//! Reproduces the qualitative content of Figures 5, 7 and 10 side by
//! side: the absolute (fmax-equivalent) load each scheduler actually
//! delivers to V20 against its 20% booking.
//!
//! Run with: `cargo run --example web_hosting`

use pas_repro::experiments::scenario::{build, Fidelity, ScenarioConfig};
use pas_repro::governors::StableOndemand;
use pas_repro::hypervisor::SchedulerKind;
use pas_repro::metrics::ascii;
use pas_repro::workloads::Intensity;

fn show(label: &str, scheduler: SchedulerKind, intensity: Intensity, governed: bool) {
    let mut cfg = ScenarioConfig::new(scheduler, intensity, Fidelity::Quick);
    if governed {
        cfg = cfg.with_governor(Box::new(StableOndemand::new()));
    }
    let mut sc = build(cfg);
    sc.run();
    let v20 = sc.absolute_load_series(sc.v20, "v20 absolute %");
    let freq = sc.freq_series().renamed("freq (MHz/100)");
    let freq_scaled = pas_repro::metrics::TimeSeries::from_points(
        "freq/100",
        freq.points().iter().map(|&(t, v)| (t, v / 100.0)).collect(),
    );
    println!("--- {label} ---");
    println!("{}", ascii::chart_many(&[&v20, &freq_scaled], 70, 12));
}

fn main() {
    println!(
        "Three-phase scenario: V20 active early, V70 joins later.\n\
         The booking is 20% of maximum-frequency capacity.\n"
    );
    show(
        "Credit + ondemand, exact load (Figure 5: V20 shortchanged in phase A)",
        SchedulerKind::Credit,
        Intensity::Exact,
        true,
    );
    show(
        "SEDF + ondemand, exact load (Figure 7: idle slices mask the penalty)",
        SchedulerKind::Sedf { extra: true },
        Intensity::Exact,
        true,
    );
    show(
        "PAS, thrashing load (Figure 10: booked capacity at low frequency)",
        SchedulerKind::Pas,
        Intensity::Thrashing,
        false,
    );
}
