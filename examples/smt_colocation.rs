//! Hyper-threaded co-location: what a CPU credit is worth when your
//! sibling wakes up.
//!
//! Two tenants are pinned to the two hardware threads of one physical
//! core (Intel-typical SMT: 1.25× aggregate speedup, so each contended
//! thread runs at 0.625× of a dedicated one). Tenant A books 40% of a
//! thread and thrashes throughout; tenant B is idle at first, then
//! starts thrashing too.
//!
//! Under the paper's PAS verbatim (frequency compensation only), A
//! silently loses capacity the moment B wakes — the hyper-threading
//! analogue of the paper's Scenario 1. The SMT-aware extension folds
//! the observed sibling contention into Equation 4 and restores A's
//! booking.
//!
//! Run with: `cargo run --example smt_colocation`

use pas_repro::cpumodel::machines;
use pas_repro::cpumodel::smt::SmtSpec;
use pas_repro::hypervisor::smt::{SmtAwareness, SmtHost, ThreadId};
use pas_repro::hypervisor::work::{ConstantDemand, Idle};
use pas_repro::hypervisor::VmConfig;
use pas_repro::pas_core::Credit;
use pas_repro::simkernel::SimDuration;

/// One run: tenant A books 40% on thread 0; the sibling is idle for
/// the first half, thrashing for the second. Returns A's delivered
/// absolute capacity (percent of a non-contended thread at fmax) per
/// half.
fn run(awareness: SmtAwareness) -> (f64, f64) {
    let mut host = SmtHost::new(
        &machines::optiplex_755(),
        SmtSpec::intel_typical(),
        awareness,
    );
    let thrash = host.fmax_mcps();
    let a = host.add_vm(
        VmConfig::new("tenant-a", Credit::percent(40.0)),
        Box::new(ConstantDemand::new(thrash)),
        ThreadId(0),
    );

    // First half: sibling idle.
    host.add_vm(
        VmConfig::new("tenant-b", Credit::percent(60.0)),
        Box::new(Idle),
        ThreadId(1),
    );
    host.run_for(SimDuration::from_secs(120));
    let half1 = 100.0 * host.vm_absolute_fraction(a);

    // Second half: rebuild with a thrashing sibling (steady states are
    // what matter; a fresh host keeps the two halves independent).
    let mut host2 = SmtHost::new(
        &machines::optiplex_755(),
        SmtSpec::intel_typical(),
        awareness,
    );
    let a2 = host2.add_vm(
        VmConfig::new("tenant-a", Credit::percent(40.0)),
        Box::new(ConstantDemand::new(thrash)),
        ThreadId(0),
    );
    host2.add_vm(
        VmConfig::new("tenant-b", Credit::percent(60.0)),
        Box::new(ConstantDemand::new(thrash)),
        ThreadId(1),
    );
    host2.run_for(SimDuration::from_secs(120));
    let half2 = 100.0 * host2.vm_absolute_fraction(a2);
    (half1, half2)
}

fn main() {
    println!(
        "Tenant A books 40% of a hardware thread (Optiplex 755 ladder,\n\
         2-way SMT, 1.25x aggregate speedup). Delivered absolute capacity:\n"
    );
    println!(
        "  {:<18} {:>14} {:>18}",
        "PAS variant", "sibling idle", "sibling thrashing"
    );
    for (label, awareness) in [
        ("naive (paper)", SmtAwareness::Naive),
        ("SMT-aware", SmtAwareness::Aware),
    ] {
        let (idle, busy) = run(awareness);
        println!("  {label:<18} {idle:>13.1}% {busy:>17.1}%");
    }
    println!(
        "\nThe naive scheduler honours the booking only while the sibling\n\
         sleeps; the SMT-aware Equation 4 (credit / (ratio * cf * contention))\n\
         holds it at 40% in both states."
    );
}
