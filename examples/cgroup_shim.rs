//! The cgroup-v2 deployment path, end to end against a synthetic
//! sysfs tree: the user-level PAS controller reads the host load from
//! `/proc/stat` deltas, picks a frequency, and writes compensated
//! `cpu.max` quotas — exactly what it would do on a real machine with
//! the root pointed at `/`.
//!
//! Run with: `cargo run --example cgroup_shim`

use pas_repro::cpumodel::machines;
use pas_repro::enforcer::testkit::{temp_root, FakeSysfs};
use pas_repro::enforcer::{CgroupBackend, CgroupLayout};
use pas_repro::enforcer::{PasDaemon, TickOutcome};
use pas_repro::pas_core::{ControllerPlacement, Credit, PasController};

fn main() {
    let root = temp_root("example");
    let table = machines::optiplex_755().pstate_table();
    let mut fake = FakeSysfs::create(&root, &table, &["v20", "v70"]);
    let mut backend = CgroupBackend::with_table(
        CgroupLayout::new(&root),
        vec![
            ("v20".to_owned(), Credit::percent(20.0)),
            ("v70".to_owned(), Credit::percent(70.0)),
        ],
        table,
    );
    backend.prime_load().expect("prime load baseline");
    let controller = PasController::new(
        ControllerPlacement::UserLevelFull,
        pas_repro::pas_core::PasBackend::pstate_table(&backend).clone(),
    );
    // The supervised loop a real deployment would run: error budget,
    // fail-safe, recovery.
    let mut daemon = PasDaemon::new(controller);

    println!("control loop over a fake sysfs at {}\n", root.display());
    // Load drops from 90% to 20% over six 1-second periods.
    for (period, busy) in [0.90, 0.90, 0.20, 0.20, 0.20, 0.20].into_iter().enumerate() {
        fake.advance_time(1000, busy);
        assert_eq!(daemon.tick(&mut backend), TickOutcome::Applied);
        backend.advance_load_baseline().expect("advance baseline");
        fake.kernel_tick();
        let (quota, p) = fake.read_cpu_max("v20");
        println!(
            "t={}s  host busy {:3.0}%  ->  freq {} kHz, v20 cpu.max = {}/{p} us",
            period + 1,
            busy * 100.0,
            fake.cur_freq_khz(),
            quota.map_or("max".to_owned(), |q| q.to_string()),
        );
    }

    // Failure injection: the kernel "breaks" the stat file; the daemon
    // degrades after its error budget and fails safe.
    let stat = backend.layout().proc_stat();
    fake.break_file(&stat);
    let outcomes = daemon.run_for_steps(&mut backend, 3);
    fake.kernel_tick();
    let (quota, p) = fake.read_cpu_max("v20");
    println!(
        "\nafter breaking /proc/stat: outcomes {:?}\n  fail-safe -> freq {} kHz, v20 cpu.max = {}/{p} us",
        outcomes,
        fake.cur_freq_khz(),
        quota.map_or("max".to_owned(), |q| q.to_string()),
    );

    println!(
        "\nAt low load the daemon parks the CPU at 1.6 GHz and raises v20's\n\
         bandwidth quota to ~33% (Equation 4 through cgroup v2); when the\n\
         backend breaks it restores the booked 20% quota and full frequency."
    );
    let _ = std::fs::remove_dir_all(&root);
}
