//! A virtualized-host simulator with Xen-like VM schedulers.
//!
//! This crate is the substrate substitution for the paper's testbed
//! (Xen 4.1.2 on a DELL Optiplex 755): a deterministic simulation of
//! one physical host running several VMs under a hypervisor scheduler,
//! with DVFS driven either by a governor (`governors` crate) or by the
//! PAS scheduler itself.
//!
//! * [`vm`] — VM identity, configuration (credit, weight, priority,
//!   SEDF triplet) and runtime state,
//! * [`work`] — the [`WorkSource`] trait the `workloads` crate
//!   implements (pi-app, web-app),
//! * [`guest`] — a guest-level round-robin process scheduler, so that
//!   the two-level scheduling structure the paper describes (hypervisor
//!   schedules VMs, the guest OS schedules processes) actually exists,
//! * [`sched`] — the three hypervisor schedulers the paper evaluates:
//!   Xen **Credit** (fix credit via caps), **SEDF** (variable credit
//!   via extra-time) and **PAS** (the contribution),
//! * [`host`] — the host simulation loop tying CPU, scheduler,
//!   governor, VMs and telemetry together,
//! * [`platforms`] — the Table 2 platform archetypes (Hyper-V, VMware
//!   ESXi, Xen, KVM, VirtualBox),
//! * [`multicore`] — the paper's closing perspective as a running
//!   system: multi-core hosts with per-socket / per-core DVFS domains
//!   and per-domain PAS,
//! * [`smt`] — the hyper-threading perspective: logical CPUs sharing a
//!   core, with naive vs contention-aware PAS credit compensation,
//! * [`stats`] — load accounting and periodic snapshots.
//!
//! # Example: the paper's host in a few lines
//!
//! ```
//! use hypervisor::host::{HostConfig, SchedulerKind};
//! use hypervisor::vm::VmConfig;
//! use hypervisor::work::ConstantDemand;
//! use pas_core::Credit;
//! use simkernel::SimDuration;
//!
//! let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
//! // V20 wants 30% of the host's fmax capacity but is capped at 20%.
//! let fmax_mcps = host.fmax_mcps();
//! host.add_vm(
//!     VmConfig::new("v20", Credit::percent(20.0)),
//!     Box::new(ConstantDemand::new(0.30 * fmax_mcps)),
//! );
//! host.run_for(SimDuration::from_secs(30));
//! let load = host.stats().vm_busy_fraction(hypervisor::vm::VmId(0));
//! assert!((load - 0.20).abs() < 0.02, "cap enforced: {load}");
//! ```

#![deny(missing_docs)]

pub mod guest;
pub mod host;
pub mod multicore;
pub mod platforms;
pub mod sched;
pub mod smt;
pub mod stats;
pub mod vm;
pub mod work;

pub use host::{Host, HostConfig, HostPerf, SchedulerKind};
pub use vm::{VmConfig, VmId};
pub use work::WorkSource;
