//! Hypervisor VM schedulers.
//!
//! Three schedulers, mirroring the paper's Section 3.1/4:
//!
//! * [`CreditScheduler`] — Xen's default Credit scheduler used as a
//!   **fix credit** scheduler: every VM's credit is enforced as a cap
//!   on the wall-clock CPU-time fraction it may consume per accounting
//!   period (Xen's `cap` parameter). A zero credit means *no cap*.
//! * [`Credit2Scheduler`] — the Credit2 beta the paper mentions and
//!   sets aside: weighted fair with **no caps**, i.e. another
//!   variable-credit scheduler.
//! * [`SedfScheduler`] — Xen's Simple Earliest Deadline First used as
//!   a **variable credit** scheduler: each VM gets a guaranteed
//!   `(slice, period)` reservation, and VMs with the extra-time flag
//!   may consume CPU time nobody reserved.
//! * [`PasScheduler`] — the paper's contribution: the Credit scheduler
//!   extended to recompute the processor frequency and every VM's cap
//!   on each accounting tick (Listings 1.1/1.2 via
//!   [`pas_core::FreqPlanner`]).

pub mod credit;
pub mod credit2;
pub mod pas;
pub mod sedf;

pub use credit::CreditScheduler;
pub use credit2::Credit2Scheduler;
pub use pas::PasScheduler;
pub use sedf::SedfScheduler;

use cpumodel::Cpu;
use simkernel::{SimDuration, SimTime};

use crate::vm::{VmConfig, VmId};

/// Context handed to a scheduler at each accounting boundary.
pub struct SchedCtx<'a> {
    /// The boundary instant.
    pub now: SimTime,
    /// The processor — PAS changes its P-state from here.
    pub cpu: &'a mut Cpu,
    /// Global processor load over the elapsed accounting period, in
    /// percent of capacity at the frequency/ies that held during it.
    pub measured_load_pct: f64,
    /// The same load expressed as *absolute load* (percent of capacity
    /// at maximum frequency, Section 4's `Absolute_load`). The host
    /// integrates `busy · ratio · cf` per slice, so this is exact even
    /// when the frequency changed inside the period.
    pub measured_absolute_pct: f64,
}

/// A scheduler-internal event drained by the host's tracer through
/// [`Scheduler::take_sched_events`]: a VM's effective cap was
/// rewritten at an accounting boundary (PAS credit compensation,
/// Equation 4). Recording is opt-in and must never change scheduling
/// decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedEvent {
    /// The VM whose cap changed.
    pub vm: VmId,
    /// The new cap in percent of wall time; `None` = uncapped.
    pub cap_pct: Option<f64>,
}

/// A hypervisor VM scheduler.
///
/// The host drives it with this protocol, per scheduling step:
///
/// 1. [`pick_next`](Scheduler::pick_next) over the currently runnable
///    VMs;
/// 2. the host computes the actual slice as the minimum of its own
///    horizon (quantum, period boundaries, backlog drain time) and
///    [`max_slice`](Scheduler::max_slice);
/// 3. [`charge`](Scheduler::charge) with the busy time actually
///    consumed;
/// 4. at every accounting boundary,
///    [`on_accounting`](Scheduler::on_accounting).
///
/// Schedulers are `Send` so a whole host can be simulated on a worker
/// thread (the `cluster` crate runs fleets of hosts concurrently).
pub trait Scheduler: Send {
    /// Scheduler name ("credit", "sedf", "pas").
    fn name(&self) -> &'static str;

    /// The accounting period (Xen Credit: 30 ms).
    fn accounting_period(&self) -> SimDuration;

    /// Registers a VM. Called by the host in `VmId` order.
    fn on_vm_added(&mut self, id: VmId, cfg: &VmConfig);

    /// Runs the accounting-boundary bookkeeping (credit refill, cap
    /// reset; for PAS also DVFS and credit recomputation).
    fn on_accounting(&mut self, ctx: &mut SchedCtx<'_>);

    /// Chooses the next VM to run among `runnable` (ascending id
    /// order), or `None` to idle. Must only return members of
    /// `runnable` that are *eligible* (e.g. not over their cap).
    fn pick_next(&mut self, now: SimTime, runnable: &[VmId]) -> Option<VmId>;

    /// Upper bound on how long `vm` may run contiguously from `now`
    /// before the scheduler needs to reconsider (cap or slice
    /// exhaustion).
    fn max_slice(&self, vm: VmId, now: SimTime) -> SimDuration;

    /// Charges `vm` for `busy` time actually consumed.
    fn charge(&mut self, vm: VmId, busy: SimDuration);

    /// The wall-clock-time fraction `vm` is currently allowed per
    /// period (`None` = uncapped). For PAS this is the *compensated*
    /// cap, which is what the paper's Figure 9 plots as "credit".
    fn effective_cap(&self, vm: VmId) -> Option<f64>;

    /// Externally overrides a VM's cap (used by the user-level
    /// controllers of Section 4.1). Returns `false` when this
    /// scheduler does not support runtime cap changes (SEDF) or
    /// manages caps itself (PAS).
    fn set_cap_external(&mut self, vm: VmId, cap: Option<f64>) -> bool {
        let _ = (vm, cap);
        false
    }

    /// Turns recording of scheduler-internal events on or off. The
    /// host enables it when a tracer is installed. Off by default;
    /// the default implementation records nothing either way.
    fn set_event_recording(&mut self, on: bool) {
        let _ = on;
    }

    /// Drains the [`SchedEvent`]s accumulated since the last call.
    /// Empty unless recording is enabled *and* the scheduler overrides
    /// this (only PAS rewrites caps today).
    fn take_sched_events(&mut self) -> Vec<SchedEvent> {
        Vec::new()
    }

    /// The underlying [`CreditScheduler`], if this scheduler's
    /// *slice-level* behaviour (`pick_next` / `max_slice` / `charge`)
    /// is exactly Credit's. The host's event-driven core leases it to
    /// replay steady scheduling windows without re-running the pick
    /// scan. PAS qualifies — it only diverges from Credit at
    /// accounting boundaries, which end every window — while SEDF and
    /// Credit2 return `None` (the default), which simply keeps the
    /// fused fast path off.
    fn credit_core(&mut self) -> Option<&mut CreditScheduler> {
        None
    }
}
