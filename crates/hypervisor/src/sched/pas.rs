//! The PAS (Power-Aware Scheduler) — the paper's contribution.
//!
//! PAS is "an extension of the Xen Credit scheduler" (Section 4): all
//! dispatching and cap enforcement is delegated to the embedded
//! [`CreditScheduler`]; on every accounting tick PAS additionally
//!
//! 1. smooths the measured global load over 3 samples (footnote 5),
//! 2. computes the *absolute load* (Section 4's definition),
//! 3. runs `computeNewFreq` (Listing 1.1) to pick the lowest adequate
//!    frequency,
//! 4. rewrites every VM's cap with the Equation 4 compensated credit
//!    (`updateDvfsAndCredits`, Listing 1.2), and
//! 5. applies the frequency.
//!
//! This is the paper's third (in-hypervisor) implementation choice,
//! the one whose results Section 5 reports.

use cpumodel::Cpu;
use pas_core::{Credit, FreqPlanner, MovingAverage};
use simkernel::{SimDuration, SimTime};

use crate::sched::credit::CreditScheduler;
use crate::sched::{SchedCtx, SchedEvent, Scheduler};
use crate::vm::{VmConfig, VmId};

/// The DVFS-aware credit scheduler.
///
/// # Example
///
/// ```
/// use cpumodel::machines;
/// use hypervisor::sched::{PasScheduler, Scheduler};
/// use hypervisor::vm::{VmConfig, VmId};
/// use pas_core::Credit;
///
/// let cpu = machines::optiplex_755().build_cpu();
/// let mut pas = PasScheduler::new(&cpu);
/// pas.on_vm_added(VmId(0), &VmConfig::new("v20", Credit::percent(20.0)));
/// // Before any tick, the plain 20% cap applies.
/// assert_eq!(pas.effective_cap(VmId(0)), Some(0.20));
/// ```
pub struct PasScheduler {
    inner: CreditScheduler,
    planner: FreqPlanner,
    smoother: MovingAverage,
    initial: Vec<(VmId, Credit)>,
    last_plan_pstate: Option<cpumodel::PStateIdx>,
    // Event recording (tracing): off by default, and kept strictly
    // observational — the cap computation below never reads it.
    record_events: bool,
    last_caps: Vec<Option<Option<f64>>>,
    pending_events: Vec<SchedEvent>,
}

impl PasScheduler {
    /// Creates a PAS scheduler for the given processor (the planner
    /// needs its DVFS ladder), with the paper's 3-sample smoothing and
    /// Xen's 30 ms accounting period.
    #[must_use]
    pub fn new(cpu: &Cpu) -> Self {
        PasScheduler {
            inner: CreditScheduler::new(),
            planner: FreqPlanner::new(cpu.pstates().clone()),
            smoother: MovingAverage::paper_default(),
            initial: Vec::new(),
            last_plan_pstate: None,
            record_events: false,
            last_caps: Vec::new(),
            pending_events: Vec::new(),
        }
    }

    /// Overrides the planner headroom (ablation hook; the paper's
    /// Listing 1.1 uses none).
    #[must_use]
    pub fn with_headroom(mut self, headroom_pct: f64) -> Self {
        self.planner = FreqPlanner::new(self.planner.table().clone()).with_headroom(headroom_pct);
        self
    }

    /// Overrides the smoothing window (ablation hook).
    #[must_use]
    pub fn with_smoothing_window(mut self, window: usize) -> Self {
        self.smoother = MovingAverage::new(window);
        self
    }

    /// The P-state chosen by the most recent accounting tick.
    #[must_use]
    pub fn last_planned_pstate(&self) -> Option<cpumodel::PStateIdx> {
        self.last_plan_pstate
    }
}

impl Scheduler for PasScheduler {
    fn name(&self) -> &'static str {
        "pas"
    }

    fn accounting_period(&self) -> SimDuration {
        self.inner.accounting_period()
    }

    fn on_vm_added(&mut self, id: VmId, cfg: &VmConfig) {
        self.initial.push((id, cfg.credit));
        self.inner.on_vm_added(id, cfg);
    }

    fn on_accounting(&mut self, ctx: &mut SchedCtx<'_>) {
        self.inner.on_accounting(ctx);

        // Listing 1.2, with the absolute load measured exactly by the
        // host (integrated per slice) and smoothed per footnote 5.
        let absolute = self.smoother.push(ctx.measured_absolute_pct);
        let mut target = self.planner.compute_new_freq(absolute);

        // Saturation rescue: when the processor is pegged, the measured
        // absolute load is only a *lower bound* (it cannot exceed the
        // current state's capacity), so Listing 1.1 alone would keep a
        // saturated CPU at a low frequency forever. Climb one state per
        // tick until the saturation clears, as the stock ondemand
        // governor's jump rule does.
        let current = ctx.cpu.pstate();
        if ctx.measured_load_pct >= 99.0 && target <= current {
            let table = self.planner.table();
            target = cpumodel::PStateIdx((current.0 + 1).min(table.max_idx().0));
        }

        for (i, (id, init)) in self.initial.iter().enumerate() {
            let new_credit = self.planner.compensate(*init, target);
            let cap = if new_credit.is_uncapped() {
                None
            } else {
                Some(new_credit.as_fraction())
            };
            self.inner.set_cap(*id, cap);
            if self.record_events {
                if self.last_caps.len() <= i {
                    self.last_caps.resize(i + 1, None);
                }
                if self.last_caps[i] != Some(cap) {
                    self.last_caps[i] = Some(cap);
                    self.pending_events.push(SchedEvent {
                        vm: *id,
                        cap_pct: cap.map(|c| c * 100.0),
                    });
                }
            }
        }
        ctx.cpu
            .set_pstate(target)
            .expect("planner uses the cpu's own ladder");
        self.last_plan_pstate = Some(target);
    }

    fn pick_next(&mut self, now: SimTime, runnable: &[VmId]) -> Option<VmId> {
        self.inner.pick_next(now, runnable)
    }

    fn max_slice(&self, vm: VmId, now: SimTime) -> SimDuration {
        self.inner.max_slice(vm, now)
    }

    fn charge(&mut self, vm: VmId, busy: SimDuration) {
        self.inner.charge(vm, busy)
    }

    fn effective_cap(&self, vm: VmId) -> Option<f64> {
        self.inner.effective_cap(vm)
    }

    fn set_event_recording(&mut self, on: bool) {
        self.record_events = on;
        // Start from a clean slate either way: enabling mid-run emits
        // every VM's current cap on the next tick (a self-describing
        // trace), disabling drops anything not yet drained.
        self.last_caps.clear();
        self.pending_events.clear();
    }

    fn take_sched_events(&mut self) -> Vec<SchedEvent> {
        std::mem::take(&mut self.pending_events)
    }

    fn credit_core(&mut self) -> Option<&mut crate::sched::CreditScheduler> {
        // PAS only diverges from Credit at accounting boundaries
        // (frequency plan + cap rewrite in `on_accounting`); between
        // boundaries pick/max_slice/charge delegate verbatim, so the
        // host may replay slices against the inner scheduler directly.
        Some(&mut self.inner)
    }
}

impl std::fmt::Debug for PasScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PasScheduler")
            .field("vms", &self.initial.len())
            .field("last_plan_pstate", &self.last_plan_pstate)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpumodel::machines;

    fn setup() -> (PasScheduler, Cpu) {
        let cpu = machines::optiplex_755().build_cpu();
        let mut pas = PasScheduler::new(&cpu);
        pas.on_vm_added(VmId(0), &VmConfig::new("v20", Credit::percent(20.0)));
        pas.on_vm_added(VmId(1), &VmConfig::new("v70", Credit::percent(70.0)));
        (pas, cpu)
    }

    fn tick(pas: &mut PasScheduler, cpu: &mut Cpu, absolute: f64) {
        let mut ctx = SchedCtx {
            now: SimTime::from_millis(30),
            cpu,
            measured_load_pct: absolute, // irrelevant for PAS
            measured_absolute_pct: absolute,
        };
        pas.on_accounting(&mut ctx);
    }

    #[test]
    fn underload_lowers_freq_and_raises_caps() {
        let (mut pas, mut cpu) = setup();
        // Three ticks at 20% absolute load (V20 active, V70 lazy).
        for _ in 0..3 {
            tick(&mut pas, &mut cpu, 20.0);
        }
        assert_eq!(cpu.pstate(), cpu.pstates().min_idx(), "scaled to 1600 MHz");
        let cap = pas.effective_cap(VmId(0)).unwrap();
        // Paper Figure 9: V20 is granted ~33% at 1600 MHz.
        assert!((cap * 100.0 - 33.0).abs() < 1.5, "cap {}%", cap * 100.0);
        let cap70 = pas.effective_cap(VmId(1)).unwrap();
        assert!(
            cap70 > 0.70,
            "V70's limit also raised (meaningless while lazy)"
        );
    }

    #[test]
    fn high_load_restores_initial_credits() {
        let (mut pas, mut cpu) = setup();
        for _ in 0..3 {
            tick(&mut pas, &mut cpu, 20.0);
        }
        // V70 wakes up: absolute load jumps to 90%.
        for _ in 0..5 {
            tick(&mut pas, &mut cpu, 90.0);
        }
        assert_eq!(cpu.pstate(), cpu.pstates().max_idx());
        let cap = pas.effective_cap(VmId(0)).unwrap();
        assert!((cap - 0.20).abs() < 1e-6, "back to the booked 20%");
    }

    #[test]
    fn compensated_capacity_is_invariant() {
        // The PAS invariant: cap · ratio · cf == booked credit at every
        // stabilized operating point.
        let (mut pas, mut cpu) = setup();
        for target in [10.0, 35.0, 55.0, 75.0, 95.0] {
            for _ in 0..5 {
                tick(&mut pas, &mut cpu, target);
            }
            let table = cpu.pstates();
            let ratio = table.ratio(cpu.pstate());
            let cf = table.cf(cpu.pstate());
            let cap = pas.effective_cap(VmId(0)).unwrap();
            let granted_absolute = cap * 100.0 * ratio * cf;
            assert!(
                (granted_absolute - 20.0).abs() < 0.5,
                "at absolute load {target}: granted {granted_absolute}% != 20%"
            );
        }
    }

    #[test]
    fn cap_never_exceeds_wall_clock() {
        let (mut pas, mut cpu) = setup();
        for _ in 0..5 {
            tick(&mut pas, &mut cpu, 5.0);
        }
        // V70's compensated credit is 70/0.6 ≈ 117% → clamped to 100%.
        let cap70 = pas.effective_cap(VmId(1)).unwrap();
        assert!(cap70 <= 1.0);
    }

    #[test]
    fn dispatch_delegates_to_credit() {
        let (mut pas, _cpu) = setup();
        let p = pas.pick_next(SimTime::ZERO, &[VmId(0), VmId(1)]);
        assert!(p.is_some());
        let slice = pas.max_slice(p.unwrap(), SimTime::ZERO);
        assert!(!slice.is_zero());
        pas.charge(p.unwrap(), slice);
    }

    #[test]
    fn last_planned_pstate_tracks() {
        let (mut pas, mut cpu) = setup();
        assert!(pas.last_planned_pstate().is_none());
        tick(&mut pas, &mut cpu, 20.0);
        assert!(pas.last_planned_pstate().is_some());
    }

    #[test]
    fn event_recording_emits_only_cap_changes() {
        let (mut pas, mut cpu) = setup();
        // Off by default: ticks accumulate nothing.
        tick(&mut pas, &mut cpu, 20.0);
        assert!(pas.take_sched_events().is_empty());

        pas.set_event_recording(true);
        tick(&mut pas, &mut cpu, 20.0);
        let first = pas.take_sched_events();
        // First recorded tick emits every VM's current cap.
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].vm, VmId(0));
        assert!(first[0].cap_pct.is_some());

        // A stable operating point emits nothing further...
        let before = cpu.pstate();
        tick(&mut pas, &mut cpu, 20.0);
        if cpu.pstate() == before {
            assert!(pas.take_sched_events().is_empty());
        }
        // ...and a load change that moves the frequency re-emits caps.
        for _ in 0..5 {
            tick(&mut pas, &mut cpu, 90.0);
        }
        assert!(!pas.take_sched_events().is_empty());
    }

    #[test]
    fn event_recording_never_changes_decisions() {
        let run = |record: bool| {
            let (mut pas, mut cpu) = setup();
            pas.set_event_recording(record);
            for target in [20.0, 20.0, 55.0, 90.0, 35.0, 10.0] {
                tick(&mut pas, &mut cpu, target);
            }
            (
                cpu.pstate(),
                pas.effective_cap(VmId(0)),
                pas.effective_cap(VmId(1)),
            )
        };
        assert_eq!(run(true), run(false));
    }
}
