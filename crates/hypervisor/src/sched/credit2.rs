//! The Xen Credit2 scheduler (the "updated version of Credit …
//! currently available in a beta version" the paper mentions in
//! Section 3.1 and sets aside).
//!
//! We include it as an additional baseline because its behaviour class
//! matters for the paper's taxonomy: Credit2 (as of Xen 4.1) has
//! weights but **no caps**, so it is a *variable-credit* scheduler —
//! it exhibits the Scenario 2 pathology (prevents frequency scaling
//! under thrashing), not Scenario 1.
//!
//! Faithful at the policy level: each vCPU burns credit at a rate
//! inversely proportional to its weight; the runnable vCPU with the
//! most credit runs next; when the leader's credit is exhausted,
//! everyone's credit is reset. That yields long-run CPU shares
//! proportional to weights, work-conservingly.

use simkernel::{SimDuration, SimTime};

use crate::sched::{SchedCtx, Scheduler};
use crate::vm::{Priority, VmConfig, VmId};

const CREDIT_INIT_US: i64 = 10_000; // Xen's CSCHED2_CREDIT_INIT scale

#[derive(Debug, Clone)]
struct VmCredit2 {
    weight: u32,
    priority: Priority,
    credit_us: i64,
}

/// The Credit2 scheduler: weighted fair, work conserving, no caps.
///
/// # Example
///
/// ```
/// use hypervisor::sched::{Credit2Scheduler, Scheduler};
/// use hypervisor::vm::{VmConfig, VmId};
/// use pas_core::Credit;
/// use simkernel::SimTime;
///
/// let mut s = Credit2Scheduler::new();
/// s.on_vm_added(VmId(0), &VmConfig::new("a", Credit::percent(20.0)));
/// assert_eq!(s.effective_cap(VmId(0)), None, "no caps: variable credit");
/// assert_eq!(s.pick_next(SimTime::ZERO, &[VmId(0)]), Some(VmId(0)));
/// ```
#[derive(Debug, Default)]
pub struct Credit2Scheduler {
    // Indexed by `VmId.0`; `None` marks ids never added here (see
    // `CreditScheduler::vms`).
    vms: Vec<Option<VmCredit2>>,
    max_weight: u32,
}

impl Credit2Scheduler {
    /// An empty Credit2 scheduler.
    #[must_use]
    pub fn new() -> Self {
        Credit2Scheduler::default()
    }

    #[inline]
    fn entry(&self, id: VmId) -> &VmCredit2 {
        self.vms[id.0].as_ref().expect("unknown VM")
    }

    fn reset_credits(&mut self) {
        for vm in self.vms.iter_mut().flatten() {
            vm.credit_us = (vm.credit_us + CREDIT_INIT_US).min(CREDIT_INIT_US);
        }
    }
}

impl Scheduler for Credit2Scheduler {
    fn name(&self) -> &'static str {
        "credit2"
    }

    fn accounting_period(&self) -> SimDuration {
        SimDuration::from_millis(30)
    }

    fn on_vm_added(&mut self, id: VmId, cfg: &VmConfig) {
        if id.0 >= self.vms.len() {
            self.vms.resize_with(id.0 + 1, || None);
        }
        self.max_weight = self.max_weight.max(cfg.weight);
        self.vms[id.0] = Some(VmCredit2 {
            weight: cfg.weight,
            priority: cfg.priority,
            credit_us: CREDIT_INIT_US,
        });
    }

    fn on_accounting(&mut self, _ctx: &mut SchedCtx<'_>) {
        // Credit2 resets on exhaustion (in pick_next), not on a period;
        // nothing to do here.
    }

    fn pick_next(&mut self, _now: SimTime, runnable: &[VmId]) -> Option<VmId> {
        if runnable.is_empty() {
            return None;
        }
        if let Some(&dom0) = runnable
            .iter()
            .find(|&&id| self.entry(id).priority == Priority::Dom0)
        {
            return Some(dom0);
        }
        let best = runnable
            .iter()
            .copied()
            .max_by_key(|&id| (self.entry(id).credit_us, std::cmp::Reverse(id.0)))?;
        if self.entry(best).credit_us <= 0 {
            self.reset_credits();
        }
        Some(best)
    }

    fn max_slice(&self, _vm: VmId, _now: SimTime) -> SimDuration {
        // Credit2 rate-limits context switches to ~1 ms minimum and
        // otherwise preempts on credit comparison; a 10 ms grain under
        // the host quantum is the behaviour the paper's timescale sees.
        SimDuration::from_millis(10)
    }

    fn charge(&mut self, vm: VmId, busy: SimDuration) {
        let max_weight = i64::from(self.max_weight.max(1));
        let entry = self
            .vms
            .get_mut(vm.0)
            .and_then(Option::as_mut)
            .expect("charge on unknown VM");
        // Burn inversely to weight: heavier VMs drain slower, so they
        // hold the "most credit" slot proportionally longer.
        let scaled = busy.as_micros() as i64 * max_weight / i64::from(entry.weight.max(1));
        entry.credit_us -= scaled;
    }

    fn effective_cap(&self, _vm: VmId) -> Option<f64> {
        None // no caps in Credit2 (the property that matters here)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_core::Credit;

    fn sched(weights: &[u32]) -> (Credit2Scheduler, Vec<VmId>) {
        let mut s = Credit2Scheduler::new();
        let ids: Vec<VmId> = (0..weights.len()).map(VmId).collect();
        for (i, &w) in weights.iter().enumerate() {
            s.on_vm_added(
                ids[i],
                &VmConfig::new(format!("vm{i}"), Credit::percent(f64::from(w))).with_weight(w),
            );
        }
        (s, ids)
    }

    /// Simulates `rounds` dispatch cycles of 1 ms each and returns the
    /// per-VM busy time.
    fn share_after(s: &mut Credit2Scheduler, ids: &[VmId], rounds: usize) -> Vec<f64> {
        let mut busy = vec![0.0; ids.len()];
        for _ in 0..rounds {
            let pick = s.pick_next(SimTime::ZERO, ids).expect("runnable");
            s.charge(pick, SimDuration::from_millis(1));
            busy[pick.0] += 1.0;
        }
        let total: f64 = busy.iter().sum();
        busy.iter().map(|b| b / total).collect()
    }

    #[test]
    fn equal_weights_share_equally() {
        let (mut s, ids) = sched(&[50, 50]);
        let shares = share_after(&mut s, &ids, 2000);
        assert!((shares[0] - 0.5).abs() < 0.05, "shares {shares:?}");
    }

    #[test]
    fn shares_proportional_to_weights() {
        let (mut s, ids) = sched(&[20, 70]);
        let shares = share_after(&mut s, &ids, 9000);
        assert!((shares[0] - 2.0 / 9.0).abs() < 0.05, "shares {shares:?}");
        assert!((shares[1] - 7.0 / 9.0).abs() < 0.05, "shares {shares:?}");
    }

    #[test]
    fn work_conserving_single_runnable() {
        let (mut s, ids) = sched(&[20, 70]);
        // Only vm0 runnable: it gets everything, regardless of weight.
        for _ in 0..100 {
            assert_eq!(s.pick_next(SimTime::ZERO, &ids[..1]), Some(ids[0]));
            s.charge(ids[0], SimDuration::from_millis(1));
        }
        assert_eq!(s.effective_cap(ids[0]), None);
    }

    #[test]
    fn dom0_has_absolute_priority() {
        let mut s = Credit2Scheduler::new();
        s.on_vm_added(VmId(0), &VmConfig::new("v", Credit::percent(90.0)));
        s.on_vm_added(VmId(1), &VmConfig::dom0());
        assert_eq!(
            s.pick_next(SimTime::ZERO, &[VmId(0), VmId(1)]),
            Some(VmId(1))
        );
    }

    #[test]
    fn credits_reset_instead_of_deadlocking() {
        let (mut s, ids) = sched(&[10]);
        for _ in 0..10_000 {
            let pick = s.pick_next(SimTime::ZERO, &ids);
            assert!(pick.is_some(), "always schedulable");
            s.charge(pick.unwrap(), SimDuration::from_millis(1));
        }
    }
}
