//! The Xen SEDF scheduler (variable-credit configuration).
//!
//! Each VM is configured with the paper's `(s, p, b)` triplet: it is
//! guaranteed `s` units of CPU time in every period of length `p`,
//! scheduled EDF on the period deadlines; when no VM has guaranteed
//! time left, VMs with `b = true` share the leftover ("extra time")
//! round-robin. With `b = true` SEDF behaves as a **work-conserving /
//! variable credit** scheduler — the configuration of the paper's
//! Figures 6–8.

use simkernel::{SimDuration, SimTime};

use crate::sched::{SchedCtx, Scheduler};
use crate::vm::{Priority, SedfParams, VmConfig, VmId};

#[derive(Debug, Clone)]
struct VmSedf {
    params: SedfParams,
    priority: Priority,
    /// End of the current period (the EDF deadline).
    deadline: SimTime,
    /// Guaranteed time left in the current period.
    remaining: SimDuration,
}

/// Which path the last `pick_next` used for a VM; determines whether
/// `charge` burns guaranteed or extra time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PickMode {
    Guaranteed,
    Extra,
}

/// The SEDF scheduler.
///
/// # Example
///
/// ```
/// use hypervisor::sched::{SedfScheduler, Scheduler};
/// use hypervisor::vm::{VmConfig, VmId};
/// use pas_core::Credit;
/// use simkernel::SimTime;
///
/// let mut s = SedfScheduler::new(true);
/// s.on_vm_added(VmId(0), &VmConfig::new("v20", Credit::percent(20.0)));
/// // Guaranteed 20% of each period:
/// assert_eq!(s.effective_cap(VmId(0)), None, "extra-time: work conserving");
/// assert_eq!(s.pick_next(SimTime::ZERO, &[VmId(0)]), Some(VmId(0)));
/// ```
#[derive(Debug)]
pub struct SedfScheduler {
    period: SimDuration,
    extra_default: bool,
    // Both indexed by `VmId.0`; `None` marks ids never added here
    // (see `CreditScheduler::vms`).
    vms: Vec<Option<VmSedf>>,
    last_mode: Vec<Option<PickMode>>,
    rr_cursor: usize,
}

impl SedfScheduler {
    /// An SEDF scheduler with a 100 ms default period; `extra_default`
    /// sets the `b` flag for VMs whose config has no explicit triplet
    /// (`true` = variable credit, the paper's configuration).
    #[must_use]
    pub fn new(extra_default: bool) -> Self {
        Self::with_period(SimDuration::from_millis(100), extra_default)
    }

    /// Overrides the default period used to derive triplets from
    /// credits.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn with_period(period: SimDuration, extra_default: bool) -> Self {
        assert!(!period.is_zero(), "SEDF period must be non-zero");
        SedfScheduler {
            period,
            extra_default,
            vms: Vec::new(),
            last_mode: Vec::new(),
            rr_cursor: 0,
        }
    }

    #[inline]
    fn entry(&self, id: VmId) -> &VmSedf {
        self.vms[id.0].as_ref().expect("unknown VM")
    }

    fn refresh(&mut self, now: SimTime) {
        for vm in self.vms.iter_mut().flatten() {
            while now >= vm.deadline {
                vm.deadline += vm.params.period;
                vm.remaining = vm.params.slice;
            }
        }
    }
}

impl Scheduler for SedfScheduler {
    fn name(&self) -> &'static str {
        "sedf"
    }

    fn accounting_period(&self) -> SimDuration {
        self.period
    }

    fn on_vm_added(&mut self, id: VmId, cfg: &VmConfig) {
        let params = cfg.sedf.unwrap_or_else(|| {
            SedfParams::from_credit(cfg.credit, self.period, self.extra_default)
        });
        if id.0 >= self.vms.len() {
            self.vms.resize_with(id.0 + 1, || None);
            self.last_mode.resize(id.0 + 1, None);
        }
        self.vms[id.0] = Some(VmSedf {
            params,
            priority: cfg.priority,
            deadline: SimTime::ZERO + params.period,
            remaining: params.slice,
        });
        self.last_mode[id.0] = None;
    }

    fn on_accounting(&mut self, ctx: &mut SchedCtx<'_>) {
        // SEDF needs no periodic bookkeeping beyond deadline refresh,
        // which happens lazily in pick_next; refresh here too so that
        // long idle gaps cannot leave deadlines stale.
        self.refresh(ctx.now);
    }

    fn pick_next(&mut self, now: SimTime, runnable: &[VmId]) -> Option<VmId> {
        self.refresh(now);
        // Dom0 runs first if it has guaranteed time (matching its
        // highest-priority configuration in the paper).
        if let Some(&dom0) = runnable.iter().find(|&&id| {
            let vm = self.entry(id);
            vm.priority == Priority::Dom0 && !vm.remaining.is_zero()
        }) {
            self.last_mode[dom0.0] = Some(PickMode::Guaranteed);
            return Some(dom0);
        }
        // EDF over VMs with guaranteed time left.
        let guaranteed = runnable
            .iter()
            .copied()
            .filter(|&id| !self.entry(id).remaining.is_zero())
            .min_by_key(|&id| (self.entry(id).deadline, id.0));
        if let Some(pick) = guaranteed {
            self.last_mode[pick.0] = Some(PickMode::Guaranteed);
            return Some(pick);
        }
        // Extra time: round-robin over runnable extra-eligible VMs.
        // Count-then-select keeps the scan allocation-free.
        let n_extra = runnable
            .iter()
            .filter(|&&id| self.entry(id).params.extra)
            .count();
        if n_extra == 0 {
            return None;
        }
        self.rr_cursor = self.rr_cursor.wrapping_add(1);
        let pick = runnable
            .iter()
            .copied()
            .filter(|&id| self.entry(id).params.extra)
            .nth(self.rr_cursor % n_extra)
            .expect("extra candidate counted above");
        self.last_mode[pick.0] = Some(PickMode::Extra);
        Some(pick)
    }

    fn max_slice(&self, vm: VmId, now: SimTime) -> SimDuration {
        let entry = self.entry(vm);
        let to_deadline = entry.deadline.duration_since(now);
        match self.last_mode.get(vm.0).copied().flatten() {
            Some(PickMode::Guaranteed) => entry.remaining.min(to_deadline),
            // Extra time runs in small grains so guaranteed VMs can
            // preempt at the next decision point.
            _ => SimDuration::from_millis(10).min(to_deadline.max(SimDuration::from_millis(1))),
        }
    }

    fn charge(&mut self, vm: VmId, busy: SimDuration) {
        let mode = self
            .last_mode
            .get(vm.0)
            .copied()
            .flatten()
            .unwrap_or(PickMode::Extra);
        let entry = self
            .vms
            .get_mut(vm.0)
            .and_then(Option::as_mut)
            .expect("charge on unknown VM");
        if mode == PickMode::Guaranteed {
            entry.remaining = entry.remaining.saturating_sub(busy);
        }
    }

    fn effective_cap(&self, vm: VmId) -> Option<f64> {
        let entry = self.entry(vm);
        if entry.params.extra {
            None // work conserving: no hard ceiling
        } else {
            Some(entry.params.slice.as_secs_f64() / entry.params.period.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas_core::Credit;

    fn setup(extra: bool) -> SedfScheduler {
        let mut s = SedfScheduler::new(extra);
        s.on_vm_added(VmId(0), &VmConfig::new("v20", Credit::percent(20.0)));
        s.on_vm_added(VmId(1), &VmConfig::new("v70", Credit::percent(70.0)));
        s
    }

    #[test]
    fn guaranteed_time_respects_credit() {
        let s = setup(true);
        // After a fresh period, v20 may run 20 ms of the 100 ms period.
        assert_eq!(s.entry(VmId(0)).params.slice, SimDuration::from_millis(20));
        assert_eq!(s.entry(VmId(1)).params.slice, SimDuration::from_millis(70));
    }

    #[test]
    fn edf_picks_earliest_deadline() {
        let mut s = SedfScheduler::new(true);
        s.on_vm_added(
            VmId(0),
            &VmConfig::new("slow", Credit::percent(10.0)).with_sedf(SedfParams {
                slice: SimDuration::from_millis(20),
                period: SimDuration::from_millis(200),
                extra: true,
            }),
        );
        s.on_vm_added(
            VmId(1),
            &VmConfig::new("fast", Credit::percent(10.0)).with_sedf(SedfParams {
                slice: SimDuration::from_millis(5),
                period: SimDuration::from_millis(50),
                extra: true,
            }),
        );
        // fast's deadline (50 ms) precedes slow's (200 ms).
        assert_eq!(
            s.pick_next(SimTime::ZERO, &[VmId(0), VmId(1)]),
            Some(VmId(1))
        );
    }

    #[test]
    fn extra_time_distributed_when_guarantees_exhausted() {
        let mut s = setup(true);
        // Exhaust both guarantees.
        s.pick_next(SimTime::ZERO, &[VmId(0), VmId(1)]);
        s.charge(VmId(0), SimDuration::from_millis(20));
        s.pick_next(SimTime::ZERO, &[VmId(0), VmId(1)]);
        s.charge(VmId(1), SimDuration::from_millis(70));
        // Both dry: extra time still hands out CPU (work conserving).
        let p = s.pick_next(SimTime::from_millis(90), &[VmId(0), VmId(1)]);
        assert!(p.is_some(), "work conserving");
    }

    #[test]
    fn no_extra_time_when_flag_false() {
        let mut s = setup(false);
        s.pick_next(SimTime::ZERO, &[VmId(0)]);
        s.charge(VmId(0), SimDuration::from_millis(20));
        assert_eq!(
            s.pick_next(SimTime::from_millis(50), &[VmId(0)]),
            None,
            "fix-credit SEDF idles once the slice is gone"
        );
        let cap = s.effective_cap(VmId(0)).expect("capped");
        assert!((cap - 0.2).abs() < 1e-9, "cap {cap}");
    }

    #[test]
    fn deadlines_roll_over() {
        let mut s = setup(true);
        s.pick_next(SimTime::ZERO, &[VmId(0)]);
        s.charge(VmId(0), SimDuration::from_millis(20)); // guarantee gone
                                                         // Next period: guarantee refreshed.
        let p = s.pick_next(SimTime::from_millis(100), &[VmId(0)]);
        assert_eq!(p, Some(VmId(0)));
        assert_eq!(
            s.max_slice(VmId(0), SimTime::from_millis(100)),
            SimDuration::from_millis(20)
        );
    }

    #[test]
    fn long_idle_gap_refreshes_many_periods() {
        let mut s = setup(true);
        let p = s.pick_next(SimTime::from_secs(10), &[VmId(0)]);
        assert_eq!(p, Some(VmId(0)));
        assert!(!s.entry(VmId(0)).remaining.is_zero());
        assert!(s.entry(VmId(0)).deadline > SimTime::from_secs(10));
    }

    #[test]
    fn extra_mode_uses_small_grains() {
        let mut s = setup(true);
        s.pick_next(SimTime::ZERO, &[VmId(0)]);
        s.charge(VmId(0), SimDuration::from_millis(20));
        // Re-pick in extra mode.
        let p = s.pick_next(SimTime::from_millis(95), &[VmId(0)]).unwrap();
        assert_eq!(p, VmId(0));
        let slice = s.max_slice(p, SimTime::from_millis(95));
        assert!(slice <= SimDuration::from_millis(10));
    }

    #[test]
    fn effective_cap_none_for_work_conserving() {
        let s = setup(true);
        assert_eq!(s.effective_cap(VmId(0)), None);
        assert_eq!(s.effective_cap(VmId(1)), None);
    }
}
