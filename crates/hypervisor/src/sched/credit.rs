//! The Xen Credit scheduler (fix-credit configuration).
//!
//! Faithful to `xen/common/sched_credit.c` at the granularity the
//! paper exercises:
//!
//! * a 30 ms accounting period; credits are refilled proportionally to
//!   weight and burned by runtime, giving UNDER/OVER priorities;
//! * an optional **cap**: the hard ceiling on the wall-clock CPU-time
//!   fraction a VM may use per period, *independent of the processor
//!   frequency* — which is precisely the incompatibility of the
//!   paper's Scenario 1;
//! * a zero credit means no cap (the VM consumes idle slices like a
//!   variable-credit scheduler but with no guarantee — Section 3.1's
//!   special case);
//! * Dom0 runs at the highest priority.

use simkernel::{SimDuration, SimTime};

use crate::sched::{SchedCtx, Scheduler};
use crate::vm::{Priority, VmConfig, VmId};

#[derive(Debug, Clone)]
struct VmCredit {
    weight: u32,
    priority: Priority,
    /// Cap as a fraction of wall time per period (`None` = uncapped).
    cap: Option<f64>,
    /// Wall time consumed in the current period.
    used: SimDuration,
    /// Fairness credit in microseconds (refilled by weight, burned by
    /// runtime): positive = UNDER, negative = OVER.
    credit_us: i64,
}

/// The Xen Credit scheduler.
///
/// # Example
///
/// ```
/// use hypervisor::sched::{CreditScheduler, Scheduler};
/// use hypervisor::vm::{VmConfig, VmId};
/// use pas_core::Credit;
/// use simkernel::SimTime;
///
/// let mut s = CreditScheduler::new();
/// s.on_vm_added(VmId(0), &VmConfig::new("v20", Credit::percent(20.0)));
/// let picked = s.pick_next(SimTime::ZERO, &[VmId(0)]);
/// assert_eq!(picked, Some(VmId(0)));
/// // A 20% cap on a 30 ms period allows 6 ms of runtime.
/// assert_eq!(s.max_slice(VmId(0), SimTime::ZERO).as_millis(), 6);
/// ```
#[derive(Debug)]
pub struct CreditScheduler {
    period: SimDuration,
    // Per-VM state indexed by `VmId.0`: the host hands out small
    // dense ids, and `pick_next` runs once per slice, so a flat `Vec`
    // beats hashing on the hot path. `None` marks ids this scheduler
    // was never given (per-core schedulers on a multicore host each
    // see a sparse subset of the global id space).
    vms: Vec<Option<VmCredit>>,
    rr_cursor: usize,
}

impl Default for CreditScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl CreditScheduler {
    /// A Credit scheduler with Xen's 30 ms accounting period.
    #[must_use]
    pub fn new() -> Self {
        Self::with_period(SimDuration::from_millis(30))
    }

    /// A Credit scheduler with a custom accounting period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn with_period(period: SimDuration) -> Self {
        assert!(!period.is_zero(), "accounting period must be non-zero");
        CreditScheduler {
            period,
            vms: Vec::new(),
            rr_cursor: 0,
        }
    }

    /// Overrides a VM's cap at run time — the knob PAS turns.
    /// `None` removes the cap. Fractions above `1.0` are clamped (a
    /// single core cannot give more than 100% of wall time; the paper
    /// notes the computed credit sum may exceed 100% and that the
    /// excess is meaningless for lazy VMs).
    ///
    /// # Panics
    ///
    /// Panics if the VM is unknown or the fraction is negative/NaN.
    pub fn set_cap(&mut self, vm: VmId, cap: Option<f64>) {
        let entry = self
            .vms
            .get_mut(vm.0)
            .and_then(Option::as_mut)
            .expect("set_cap on unknown VM");
        entry.cap = cap.map(|c| {
            assert!(c.is_finite() && c >= 0.0, "invalid cap {c}");
            c.min(1.0)
        });
    }

    /// The accounting period.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.period
    }

    #[inline]
    fn entry(&self, id: VmId) -> &VmCredit {
        self.vms[id.0].as_ref().expect("unknown VM")
    }

    /// Replays the cursor side effect of a `pick_next` whose outcome
    /// is already known to be `vm` as the only eligible candidate:
    /// Dom0 returns before the cursor moves, every other class
    /// advances it by one. The host's fused event-core loop calls
    /// this instead of re-running the scan when the pick cannot
    /// change; it must stay in lockstep with `pick_next`.
    pub(crate) fn repick_commit(&mut self, vm: VmId) {
        if self.entry(vm).priority != Priority::Dom0 {
            self.rr_cursor = self.rr_cursor.wrapping_add(1);
        }
    }

    fn eligible(&self, id: VmId) -> bool {
        let vm = self.entry(id);
        match vm.cap {
            None => true,
            Some(cap) => {
                let allowance = self.period.mul_f64(cap);
                vm.used < allowance
            }
        }
    }

    fn total_weight(&self) -> u64 {
        self.vms.iter().flatten().map(|v| u64::from(v.weight)).sum()
    }
}

impl Scheduler for CreditScheduler {
    fn name(&self) -> &'static str {
        "credit"
    }

    fn accounting_period(&self) -> SimDuration {
        self.period
    }

    fn on_vm_added(&mut self, id: VmId, cfg: &VmConfig) {
        let cap = if cfg.credit.is_uncapped() {
            None
        } else {
            Some(cfg.credit.as_fraction())
        };
        if id.0 >= self.vms.len() {
            self.vms.resize_with(id.0 + 1, || None);
        }
        self.vms[id.0] = Some(VmCredit {
            weight: cfg.weight,
            priority: cfg.priority,
            cap,
            used: SimDuration::ZERO,
            credit_us: 0,
        });
    }

    fn on_accounting(&mut self, _ctx: &mut SchedCtx<'_>) {
        let total_weight = self.total_weight().max(1);
        let period_us = self.period.as_micros() as i64;
        for vm in self.vms.iter_mut().flatten() {
            vm.used = SimDuration::ZERO;
            let share = period_us * i64::from(vm.weight) / total_weight as i64;
            // Refill and clamp, as Xen does, so an idle VM cannot hoard
            // unbounded credit.
            vm.credit_us = (vm.credit_us + share).clamp(-period_us, period_us);
        }
    }

    fn pick_next(&mut self, _now: SimTime, runnable: &[VmId]) -> Option<VmId> {
        // Dom0 first, then UNDER before OVER; round-robin within a
        // class via a rotating cursor for deterministic fairness.
        // Two passes over `runnable` keep this allocation-free: the
        // first classifies every eligible candidate (returning the
        // first Dom0 outright, as before), the second re-walks the
        // winning class to the rotated pick.
        let mut n_under = 0usize;
        let mut n_over = 0usize;
        for &id in runnable {
            if !self.eligible(id) {
                continue;
            }
            let vm = self.entry(id);
            if vm.priority == Priority::Dom0 {
                return Some(id);
            }
            if vm.credit_us > 0 {
                n_under += 1; // UNDER
            } else {
                n_over += 1; // OVER
            }
        }
        let (best_is_under, n_best) = if n_under > 0 {
            (true, n_under)
        } else if n_over > 0 {
            (false, n_over)
        } else {
            return None;
        };
        // Rotate through the class so equal-priority VMs interleave.
        self.rr_cursor = self.rr_cursor.wrapping_add(1);
        let k = self.rr_cursor % n_best;
        let mut seen = 0usize;
        for &id in runnable {
            if !self.eligible(id) || (self.entry(id).credit_us > 0) != best_is_under {
                continue;
            }
            if seen == k {
                return Some(id);
            }
            seen += 1;
        }
        unreachable!("pick_next: candidate counted in the first pass vanished")
    }

    fn max_slice(&self, vm: VmId, _now: SimTime) -> SimDuration {
        let entry = self.entry(vm);
        match entry.cap {
            None => self.period,
            Some(cap) => self.period.mul_f64(cap).saturating_sub(entry.used),
        }
    }

    fn charge(&mut self, vm: VmId, busy: SimDuration) {
        let entry = self
            .vms
            .get_mut(vm.0)
            .and_then(Option::as_mut)
            .expect("charge on unknown VM");
        entry.used += busy;
        entry.credit_us -= busy.as_micros() as i64;
    }

    fn effective_cap(&self, vm: VmId) -> Option<f64> {
        self.entry(vm).cap
    }

    fn set_cap_external(&mut self, vm: VmId, cap: Option<f64>) -> bool {
        if self.vms.get(vm.0).is_some_and(Option::is_some) {
            self.set_cap(vm, cap);
            true
        } else {
            false
        }
    }

    fn credit_core(&mut self) -> Option<&mut CreditScheduler> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpumodel::machines;
    use pas_core::Credit;

    fn ctx_cpu() -> cpumodel::Cpu {
        machines::optiplex_755().build_cpu()
    }

    fn setup() -> CreditScheduler {
        let mut s = CreditScheduler::new();
        s.on_vm_added(VmId(0), &VmConfig::new("v20", Credit::percent(20.0)));
        s.on_vm_added(VmId(1), &VmConfig::new("v70", Credit::percent(70.0)));
        s
    }

    #[test]
    fn cap_limits_slice() {
        let s = setup();
        assert_eq!(
            s.max_slice(VmId(0), SimTime::ZERO),
            SimDuration::from_millis(6)
        );
        assert_eq!(
            s.max_slice(VmId(1), SimTime::ZERO),
            SimDuration::from_millis(21)
        );
    }

    #[test]
    fn exhausted_cap_makes_vm_ineligible() {
        let mut s = setup();
        s.charge(VmId(0), SimDuration::from_millis(6));
        let picked = s.pick_next(SimTime::ZERO, &[VmId(0)]);
        assert_eq!(picked, None, "v20 used its 6 ms");
        // v70 still eligible.
        assert_eq!(
            s.pick_next(SimTime::ZERO, &[VmId(0), VmId(1)]),
            Some(VmId(1))
        );
    }

    #[test]
    fn accounting_resets_usage() {
        let mut s = setup();
        s.charge(VmId(0), SimDuration::from_millis(6));
        let mut cpu = ctx_cpu();
        let mut ctx = SchedCtx {
            now: SimTime::from_millis(30),
            cpu: &mut cpu,
            measured_load_pct: 20.0,
            measured_absolute_pct: 20.0,
        };
        s.on_accounting(&mut ctx);
        assert_eq!(
            s.max_slice(VmId(0), SimTime::ZERO),
            SimDuration::from_millis(6)
        );
        assert!(s.pick_next(SimTime::ZERO, &[VmId(0)]).is_some());
    }

    #[test]
    fn uncapped_vm_unlimited() {
        let mut s = CreditScheduler::new();
        s.on_vm_added(VmId(0), &VmConfig::new("free", Credit::ZERO));
        assert_eq!(s.effective_cap(VmId(0)), None);
        s.charge(VmId(0), SimDuration::from_millis(29));
        assert!(s.pick_next(SimTime::ZERO, &[VmId(0)]).is_some());
        assert_eq!(s.max_slice(VmId(0), SimTime::ZERO), s.period());
    }

    #[test]
    fn dom0_preempts() {
        let mut s = setup();
        s.on_vm_added(VmId(2), &VmConfig::dom0());
        let picked = s.pick_next(SimTime::ZERO, &[VmId(0), VmId(1), VmId(2)]);
        assert_eq!(picked, Some(VmId(2)));
    }

    #[test]
    fn under_beats_over() {
        let mut s = setup();
        let mut cpu = ctx_cpu();
        let mut ctx = SchedCtx {
            now: SimTime::ZERO,
            cpu: &mut cpu,
            measured_load_pct: 0.0,
            measured_absolute_pct: 0.0,
        };
        s.on_accounting(&mut ctx); // gives both positive credit
                                   // Burn v70 into OVER.
        s.charge(VmId(1), SimDuration::from_millis(25));
        // Reset usage so caps don't interfere, keep credit burned.
        for vm in s.vms.iter_mut().flatten() {
            vm.used = SimDuration::ZERO;
        }
        for _ in 0..4 {
            assert_eq!(
                s.pick_next(SimTime::ZERO, &[VmId(0), VmId(1)]),
                Some(VmId(0)),
                "UNDER vm always beats OVER vm"
            );
        }
    }

    #[test]
    fn round_robin_interleaves_equals() {
        let mut s = CreditScheduler::new();
        s.on_vm_added(VmId(0), &VmConfig::new("a", Credit::percent(50.0)));
        s.on_vm_added(VmId(1), &VmConfig::new("b", Credit::percent(50.0)));
        let mut seen = [0u32; 2];
        for _ in 0..10 {
            let p = s.pick_next(SimTime::ZERO, &[VmId(0), VmId(1)]).unwrap();
            seen[p.0] += 1;
        }
        assert_eq!(seen, [5, 5], "perfect interleave for identical VMs");
    }

    #[test]
    fn set_cap_clamps_above_one() {
        let mut s = setup();
        s.set_cap(VmId(0), Some(1.25));
        assert_eq!(s.effective_cap(VmId(0)), Some(1.0));
        s.set_cap(VmId(0), None);
        assert_eq!(s.effective_cap(VmId(0)), None);
    }

    #[test]
    fn credit_clamped_at_period() {
        let mut s = setup();
        let mut cpu = ctx_cpu();
        for i in 0..100 {
            let mut ctx = SchedCtx {
                now: SimTime::from_millis(30 * (i + 1)),
                cpu: &mut cpu,
                measured_load_pct: 0.0,
                measured_absolute_pct: 0.0,
            };
            s.on_accounting(&mut ctx);
        }
        let period_us = s.period().as_micros() as i64;
        for vm in s.vms.iter().flatten() {
            assert!(vm.credit_us <= period_us, "idle credit cannot hoard");
        }
    }

    #[test]
    #[should_panic(expected = "set_cap on unknown VM")]
    fn set_cap_unknown_vm_panics() {
        let mut s = CreditScheduler::new();
        s.set_cap(VmId(9), Some(0.5));
    }
}
