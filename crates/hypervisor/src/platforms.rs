//! Platform archetypes for Table 2.
//!
//! Table 2 measures the execution time of a pi-app in V20 (V70 lazy)
//! on seven configurations spanning the leading 2013 hypervisors:
//!
//! | scheduler class   | platforms                                 |
//! |-------------------|-------------------------------------------|
//! | fix credit        | Hyper-V 2012, VMware ESXi 5, Xen (credit) |
//! | fix credit + PAS  | Xen/PAS                                   |
//! | variable credit   | Xen/SEDF, KVM, VirtualBox                 |
//!
//! We cannot run the proprietary hypervisors; what the table actually
//! distinguishes is (a) the scheduler *class* and (b) how deep each
//! platform's power policy lets the frequency fall when the host looks
//! idle. Each archetype therefore picks a scheduler kind and a
//! **power-policy floor**: the lowest frequency its DVFS policy will
//! select. Floors are fitted so the simulated degradations land near
//! the paper's 50% / 27% / 40% column values; the *structure* (who
//! degrades, who doesn't) is what the experiment verifies. See
//! `EXPERIMENTS.md` for the substitution notes.

use cpumodel::{machines, Frequency, PStateIdx};
use governors::{GovContext, Governor, Performance, StableOndemand};
use simkernel::SimDuration;

use crate::host::{Host, HostConfig, SchedulerKind};

/// Which governor column of Table 2 to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GovernorChoice {
    /// The "Performance" row: frequency pinned at maximum.
    Performance,
    /// The "OnDemand" row: the platform's DVFS policy active.
    OnDemand,
}

/// A virtualization-platform archetype.
#[derive(Debug, Clone)]
pub struct PlatformSpec {
    /// Platform name as Table 2 prints it.
    pub name: &'static str,
    /// The scheduler class this platform uses for CPU limits.
    pub scheduler: SchedulerKind,
    /// Lowest frequency the platform's power policy will pick, in MHz
    /// (`None` = may reach the hardware minimum).
    pub dvfs_floor_mhz: Option<u32>,
}

impl PlatformSpec {
    /// Builds a host for this platform on the Table 2 testbed (HP
    /// Compaq Elite 8300, i7-3770).
    #[must_use]
    pub fn build_host(&self, governor: GovernorChoice) -> Host {
        let machine = machines::intel_core_i7_3770();
        let mut cfg = HostConfig::optiplex_defaults(self.scheduler)
            .with_machine(machine)
            .with_sample_period(SimDuration::from_secs(5));
        if self.scheduler != SchedulerKind::Pas {
            let gov: Box<dyn Governor> = match governor {
                GovernorChoice::Performance => Box::new(Performance),
                GovernorChoice::OnDemand => Box::new(FloorGovernor::new(
                    Box::new(StableOndemand::new()),
                    self.dvfs_floor_mhz,
                )),
            };
            cfg = cfg.with_governor(gov);
        }
        cfg.build()
    }
}

/// Hyper-V Server 2012: fix credit, deep power policy (the paper
/// measured the worst degradation, 50%).
#[must_use]
pub fn hyperv() -> PlatformSpec {
    PlatformSpec {
        name: "Hyper-V",
        scheduler: SchedulerKind::Credit,
        dvfs_floor_mhz: Some(1800),
    }
}

/// VMware ESXi 5: fix credit ("resource limits"), balanced power
/// policy (27% degradation).
#[must_use]
pub fn vmware() -> PlatformSpec {
    PlatformSpec {
        name: "VMware",
        scheduler: SchedulerKind::Credit,
        dvfs_floor_mhz: Some(2600),
    }
}

/// Xen with the Credit scheduler and caps (40% degradation).
#[must_use]
pub fn xen_credit() -> PlatformSpec {
    PlatformSpec {
        name: "Xen/credit",
        scheduler: SchedulerKind::Credit,
        dvfs_floor_mhz: Some(2200),
    }
}

/// Xen with the paper's PAS scheduler (0% degradation).
#[must_use]
pub fn xen_pas() -> PlatformSpec {
    PlatformSpec {
        name: "Xen/PAS",
        scheduler: SchedulerKind::Pas,
        dvfs_floor_mhz: None,
    }
}

/// Xen with SEDF and extra time (variable credit).
#[must_use]
pub fn xen_sedf() -> PlatformSpec {
    PlatformSpec {
        name: "Xen/SEDF",
        scheduler: SchedulerKind::Sedf { extra: true },
        dvfs_floor_mhz: None,
    }
}

/// KVM: Linux CFS shares behave as a variable-credit scheduler.
#[must_use]
pub fn kvm() -> PlatformSpec {
    PlatformSpec {
        name: "KVM",
        scheduler: SchedulerKind::Sedf { extra: true },
        dvfs_floor_mhz: None,
    }
}

/// VirtualBox: variable credit.
#[must_use]
pub fn vbox() -> PlatformSpec {
    PlatformSpec {
        name: "Vbox",
        scheduler: SchedulerKind::Sedf { extra: true },
        dvfs_floor_mhz: None,
    }
}

/// All Table 2 platforms in the paper's column order.
#[must_use]
pub fn all_table2() -> Vec<PlatformSpec> {
    vec![
        hyperv(),
        vmware(),
        xen_credit(),
        xen_pas(),
        xen_sedf(),
        kvm(),
        vbox(),
    ]
}

/// Wraps a governor so it never descends below a platform's
/// power-policy floor.
pub struct FloorGovernor {
    inner: Box<dyn Governor>,
    floor_mhz: Option<u32>,
}

impl FloorGovernor {
    /// Clamps `inner`'s decisions at `floor_mhz` (no clamp if `None`).
    #[must_use]
    pub fn new(inner: Box<dyn Governor>, floor_mhz: Option<u32>) -> Self {
        FloorGovernor { inner, floor_mhz }
    }
}

impl Governor for FloorGovernor {
    fn name(&self) -> &'static str {
        "platform-ondemand"
    }

    fn on_sample(&mut self, ctx: &GovContext<'_>) -> Option<PStateIdx> {
        let decision = self.inner.on_sample(ctx)?;
        let floored = match self.floor_mhz {
            None => decision,
            Some(mhz) => decision.max(ctx.table.lowest_at_least(Frequency::mhz(mhz))),
        };
        Some(floored)
    }

    fn sampling_multiplier(&self) -> u32 {
        self.inner.sampling_multiplier()
    }
}

impl std::fmt::Debug for FloorGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FloorGovernor")
            .field("inner", &self.inner.name())
            .field("floor_mhz", &self.floor_mhz)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::SimTime;

    #[test]
    fn all_platforms_build_hosts() {
        for p in all_table2() {
            for gov in [GovernorChoice::Performance, GovernorChoice::OnDemand] {
                let host = p.build_host(gov);
                assert_eq!(host.now(), SimTime::ZERO, "{} builds", p.name);
            }
        }
    }

    #[test]
    fn floor_clamps_descent() {
        let table = machines::intel_core_i7_3770().pstate_table();
        let mut g = FloorGovernor::new(Box::new(governors::Powersave), Some(2600));
        let ctx = GovContext {
            now: SimTime::ZERO,
            load_pct: 0.0,
            current: table.max_idx(),
            table: &table,
        };
        let got = g.on_sample(&ctx).unwrap();
        assert_eq!(table.state(got).frequency, Frequency::mhz(2600));
    }

    #[test]
    fn no_floor_reaches_hardware_min() {
        let table = machines::intel_core_i7_3770().pstate_table();
        let mut g = FloorGovernor::new(Box::new(governors::Powersave), None);
        let ctx = GovContext {
            now: SimTime::ZERO,
            load_pct: 0.0,
            current: table.max_idx(),
            table: &table,
        };
        assert_eq!(g.on_sample(&ctx), Some(table.min_idx()));
    }

    #[test]
    fn scheduler_classes_match_paper() {
        assert_eq!(hyperv().scheduler, SchedulerKind::Credit);
        assert_eq!(vmware().scheduler, SchedulerKind::Credit);
        assert_eq!(xen_credit().scheduler, SchedulerKind::Credit);
        assert_eq!(xen_pas().scheduler, SchedulerKind::Pas);
        for p in [xen_sedf(), kvm(), vbox()] {
            assert_eq!(
                p.scheduler,
                SchedulerKind::Sedf { extra: true },
                "{}",
                p.name
            );
        }
    }
}
