//! A guest operating system with its own process scheduler.
//!
//! Section 2.1 of the paper stresses that "the execution of an
//! application in a virtualized environment involves different levels
//! of scheduler, but the hypervisor is not conscious of it". This
//! module supplies that second level: a [`GuestOs`] is a
//! [`WorkSource`] containing several *processes* (each itself a
//! [`WorkSource`]), with the CPU time the hypervisor grants the VM
//! shared round-robin among its runnable processes — the classic
//! time-sharing guest kernel.

use simkernel::{SimDuration, SimTime};

use crate::work::WorkSource;

struct Process {
    source: Box<dyn WorkSource>,
    backlog_mcycles: f64,
}

/// A guest OS: a round-robin process scheduler over inner work
/// sources.
///
/// # Example
///
/// ```
/// use hypervisor::guest::GuestOs;
/// use hypervisor::work::{ConstantDemand, FixedWork, WorkSource};
/// use simkernel::{SimDuration, SimTime};
///
/// let mut guest = GuestOs::new();
/// guest.spawn(Box::new(ConstantDemand::new(100.0)));
/// guest.spawn(Box::new(FixedWork::new(50.0)));
/// let demand = guest.generate(SimTime::ZERO, SimDuration::from_secs(1));
/// assert!((demand - 150.0).abs() < 1e-9);
/// ```
#[derive(Default)]
pub struct GuestOs {
    processes: Vec<Process>,
    rr_cursor: usize,
}

impl GuestOs {
    /// An empty guest (no processes).
    #[must_use]
    pub fn new() -> Self {
        GuestOs::default()
    }

    /// Adds a process; returns its index.
    pub fn spawn(&mut self, source: Box<dyn WorkSource>) -> usize {
        self.processes.push(Process {
            source,
            backlog_mcycles: 0.0,
        });
        self.processes.len() - 1
    }

    /// Number of processes.
    #[must_use]
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// The pending demand of one process.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn process_backlog(&self, index: usize) -> f64 {
        self.processes[index].backlog_mcycles
    }

    /// Whether one process's source reports completion.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn process_finished(&self, index: usize) -> bool {
        self.processes[index].source.is_finished()
    }
}

impl WorkSource for GuestOs {
    fn label(&self) -> &str {
        "guest-os"
    }

    fn generate(&mut self, now: SimTime, dt: SimDuration) -> f64 {
        let mut total = 0.0;
        for p in &mut self.processes {
            let got = p.source.generate(now, dt);
            p.backlog_mcycles += got;
            total += got;
        }
        total
    }

    fn on_progress(&mut self, mcycles: f64, now: SimTime) {
        // Round-robin: hand the completed cycles to runnable processes
        // in equal quanta, starting after the last-served process.
        let mut left = mcycles;
        let n = self.processes.len();
        if n == 0 {
            return;
        }
        // A grain small enough to interleave, large enough to finish in
        // few passes.
        let grain = (mcycles / n as f64).max(mcycles / 16.0).max(1e-9);
        let mut guard = 0u32;
        while left > 1e-12 && self.processes.iter().any(|p| p.backlog_mcycles > 1e-12) {
            self.rr_cursor = (self.rr_cursor + 1) % n;
            let p = &mut self.processes[self.rr_cursor];
            if p.backlog_mcycles > 1e-12 {
                let done = p.backlog_mcycles.min(grain).min(left);
                p.backlog_mcycles -= done;
                p.source.on_progress(done, now);
                left -= done;
            }
            guard += 1;
            if guard > 100_000 {
                debug_assert!(false, "guest RR failed to converge");
                break;
            }
        }
    }

    fn on_dropped(&mut self, mcycles: f64, now: SimTime) {
        // Attribute drops proportionally to queued demand.
        let total: f64 = self.processes.iter().map(|p| p.backlog_mcycles).sum();
        if total <= 0.0 {
            return;
        }
        for p in &mut self.processes {
            let share = mcycles * p.backlog_mcycles / total;
            p.backlog_mcycles = (p.backlog_mcycles - share).max(0.0);
            p.source.on_dropped(share, now);
        }
    }

    fn backlog_cap_mcycles(&self) -> f64 {
        self.processes
            .iter()
            .map(|p| p.source.backlog_cap_mcycles())
            .fold(0.0, |acc, c| {
                if c.is_infinite() {
                    f64::INFINITY
                } else {
                    acc + c
                }
            })
    }

    fn is_finished(&self) -> bool {
        self.processes.iter().all(|p| p.source.is_finished())
    }

    fn demand_exhausted(&self) -> bool {
        self.processes.iter().all(|p| p.source.demand_exhausted())
    }
}

impl std::fmt::Debug for GuestOs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuestOs")
            .field("processes", &self.processes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{ConstantDemand, FixedWork};

    #[test]
    fn aggregates_demand() {
        let mut g = GuestOs::new();
        g.spawn(Box::new(ConstantDemand::new(100.0)));
        g.spawn(Box::new(ConstantDemand::new(300.0)));
        let got = g.generate(SimTime::ZERO, SimDuration::from_millis(500));
        assert!((got - 200.0).abs() < 1e-9);
        assert_eq!(g.process_count(), 2);
    }

    #[test]
    fn progress_shared_round_robin() {
        let mut g = GuestOs::new();
        g.spawn(Box::new(FixedWork::new(100.0)));
        g.spawn(Box::new(FixedWork::new(100.0)));
        g.generate(SimTime::ZERO, SimDuration::from_secs(1));
        g.on_progress(100.0, SimTime::from_secs(1));
        // Fair sharing: both advanced roughly equally.
        let b0 = g.process_backlog(0);
        let b1 = g.process_backlog(1);
        assert!((b0 - 50.0).abs() < 15.0, "p0 backlog {b0}");
        assert!((b1 - 50.0).abs() < 15.0, "p1 backlog {b1}");
    }

    #[test]
    fn short_process_exits_first_long_continues() {
        let mut g = GuestOs::new();
        g.spawn(Box::new(FixedWork::new(10.0)));
        g.spawn(Box::new(FixedWork::new(1000.0)));
        g.generate(SimTime::ZERO, SimDuration::from_secs(1));
        g.on_progress(200.0, SimTime::from_secs(1));
        assert!(g.process_finished(0), "short job done");
        assert!(!g.process_finished(1));
        assert!(!g.is_finished());
        g.on_progress(810.0, SimTime::from_secs(2));
        assert!(g.is_finished());
    }

    #[test]
    fn empty_guest_is_finished() {
        let g = GuestOs::new();
        assert!(g.is_finished());
        assert_eq!(g.backlog_cap_mcycles(), 0.0);
    }

    #[test]
    fn infinite_cap_dominates() {
        let mut g = GuestOs::new();
        g.spawn(Box::new(ConstantDemand::new(1.0))); // unbounded cap
        g.spawn(Box::new(FixedWork::new(5.0)));
        assert!(g.backlog_cap_mcycles().is_infinite());
    }
}
