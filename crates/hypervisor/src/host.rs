//! The host simulation loop.
//!
//! [`Host`] ties together one simulated processor ([`cpumodel::Cpu`]),
//! a hypervisor [`Scheduler`], an optional DVFS governor
//! ([`governors::CpuFreq`]), the VMs and the statistics engine.
//!
//! The loop advances in *variable-length slices*: each slice is the
//! minimum of the scheduler quantum (Xen: 10 ms), the picked VM's cap
//! or deadline allowance, its backlog drain time, and the distance to
//! the next period boundary (accounting / governor / snapshot). This
//! gives exact cap enforcement (a 20% cap on a 30 ms period yields
//! precisely 6 ms) without a sub-millisecond fixed step.

use cpumodel::Cpu;
use governors::{CpuFreq, Governor};
use simkernel::{SimDuration, SimTime, WakeHeap, WakeKind};
use trace::{EventKind, FreqCause, Record as _, Tracer};

use crate::sched::{
    Credit2Scheduler, CreditScheduler, PasScheduler, SchedCtx, Scheduler, SedfScheduler,
};
use crate::stats::HostStats;
use crate::vm::{Vm, VmConfig, VmId, MIN_RUNNABLE_MCYCLES};
use crate::work::WorkSource;

/// Which hypervisor scheduler the host runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Xen Credit with caps (fix credit).
    Credit,
    /// Xen Credit2 (beta in the paper's Xen): weighted fair, no caps
    /// — behaves as a variable-credit scheduler.
    Credit2,
    /// Xen SEDF; `extra = true` is the paper's variable-credit
    /// configuration.
    Sedf {
        /// The extra-time (`b`) flag applied to VMs without an
        /// explicit triplet.
        extra: bool,
    },
    /// The paper's PAS scheduler (Credit + DVFS + credit
    /// compensation). The host must not also install a governor.
    Pas,
}

/// Host configuration; see [`HostConfig::optiplex_defaults`].
pub struct HostConfig {
    /// The simulated machine.
    pub machine: cpumodel::MachineSpec,
    /// Scheduler choice.
    pub scheduler: SchedulerKind,
    /// Optional DVFS governor (`None` keeps the boot frequency, i.e.
    /// maximum — equivalent to the performance governor).
    pub governor: Option<Box<dyn Governor>>,
    /// Scheduler quantum (Xen: 10 ms).
    pub quantum: SimDuration,
    /// Base governor sampling period; each governor stretches it by
    /// its own `sampling_multiplier`.
    pub governor_base_period: SimDuration,
    /// Telemetry snapshot period (the spacing of figure points).
    pub sample_period: SimDuration,
    /// PAS smoothing-window override (ablation; the paper uses 3).
    /// Ignored for other schedulers.
    pub pas_smoothing_window: Option<usize>,
    /// PAS planner headroom override, percent (ablation; the paper's
    /// Listing 1.1 uses none). Ignored for other schedulers.
    pub pas_headroom_pct: Option<f64>,
    /// Whether [`Host::run_until`] may jump quiescent hosts straight
    /// to the next period boundary (see [`Host::is_quiescent`]). The
    /// jump is bit-identical to the slice-exact path; the switch
    /// exists so tests and benchmarks can compare the two.
    pub idle_fast_path: bool,
    /// Whether the host advances boundary windows through the
    /// event-driven core: the window loop hoists the per-slice
    /// quiescence scan and, when the scheduler exposes a Credit core
    /// and the pick provably cannot change, replays repeated identical
    /// quantum slices without re-running the scan
    /// (see `Host::run_fused`). Bit-identical to the per-slice path by
    /// construction; the switch exists for the A/B benchmarks and
    /// equivalence tests.
    pub event_core: bool,
}

impl HostConfig {
    /// The paper's testbed defaults: Optiplex 755 ladder, 10 ms
    /// quantum, 50 ms base governor period, 10 s snapshots, no
    /// governor installed.
    #[must_use]
    pub fn optiplex_defaults(scheduler: SchedulerKind) -> Self {
        HostConfig {
            machine: cpumodel::machines::optiplex_755(),
            scheduler,
            governor: None,
            quantum: SimDuration::from_millis(10),
            governor_base_period: SimDuration::from_millis(50),
            sample_period: SimDuration::from_secs(10),
            pas_smoothing_window: None,
            pas_headroom_pct: None,
            idle_fast_path: true,
            event_core: true,
        }
    }

    /// Enables or disables the idle-skip fast path (on by default).
    #[must_use]
    pub fn with_idle_fast_path(mut self, on: bool) -> Self {
        self.idle_fast_path = on;
        self
    }

    /// Enables or disables the event-driven core (on by default).
    #[must_use]
    pub fn with_event_core(mut self, on: bool) -> Self {
        self.event_core = on;
        self
    }

    /// Overrides PAS's load-smoothing window (the paper's footnote 5
    /// uses 3 samples). Only meaningful with [`SchedulerKind::Pas`].
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_pas_smoothing_window(mut self, window: usize) -> Self {
        assert!(window > 0, "smoothing window must be at least 1");
        self.pas_smoothing_window = Some(window);
        self
    }

    /// Gives PAS's frequency planner headroom: the chosen state must
    /// have `headroom_pct` spare capacity above the absolute load.
    /// Only meaningful with [`SchedulerKind::Pas`].
    #[must_use]
    pub fn with_pas_headroom(mut self, headroom_pct: f64) -> Self {
        self.pas_headroom_pct = Some(headroom_pct);
        self
    }

    /// Sets the machine.
    #[must_use]
    pub fn with_machine(mut self, machine: cpumodel::MachineSpec) -> Self {
        self.machine = machine;
        self
    }

    /// Installs a governor.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler is [`SchedulerKind::Pas`]: PAS manages
    /// DVFS itself; running a second frequency owner would fight it
    /// (the paper runs Xen's governor as userspace under PAS).
    #[must_use]
    pub fn with_governor(mut self, governor: Box<dyn Governor>) -> Self {
        assert!(
            self.scheduler != SchedulerKind::Pas,
            "PAS manages DVFS itself; do not install a governor"
        );
        self.governor = Some(governor);
        self
    }

    /// Sets the snapshot period.
    #[must_use]
    pub fn with_sample_period(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "sample period must be non-zero");
        self.sample_period = period;
        self
    }

    /// Builds the host.
    #[must_use]
    pub fn build(self) -> Host {
        let cpu = self.machine.build_cpu();
        let sched: Box<dyn Scheduler> = match self.scheduler {
            SchedulerKind::Credit => Box::new(CreditScheduler::new()),
            SchedulerKind::Credit2 => Box::new(Credit2Scheduler::new()),
            SchedulerKind::Sedf { extra } => Box::new(SedfScheduler::new(extra)),
            SchedulerKind::Pas => {
                let mut pas = PasScheduler::new(&cpu);
                if let Some(w) = self.pas_smoothing_window {
                    pas = pas.with_smoothing_window(w);
                }
                if let Some(h) = self.pas_headroom_pct {
                    pas = pas.with_headroom(h);
                }
                Box::new(pas)
            }
        };
        let gov_period = match &self.governor {
            Some(g) => self.governor_base_period * u64::from(g.sampling_multiplier().max(1)),
            None => self.governor_base_period,
        };
        let acct_period = sched.accounting_period();
        Host {
            now: SimTime::ZERO,
            cpu,
            sched,
            cpufreq: self.governor.map(CpuFreq::new),
            vms: Vec::new(),
            stats: HostStats::new(),
            quantum: self.quantum,
            acct_period,
            gov_period,
            sample_period: self.sample_period,
            next_acct: SimTime::ZERO + acct_period,
            next_gov: SimTime::ZERO + gov_period,
            next_sample: SimTime::ZERO + self.sample_period,
            idle_fast_path: self.idle_fast_path,
            event_core: self.event_core,
            tracer: None,
            trace_ids: Vec::new(),
            last_pick: None,
            runnable_scratch: Vec::new(),
            hot: HotVms::default(),
            wakes: WakeHeap::new(),
            fused_slices: 0,
            fuse_backoff: 0,
            profiling: false,
            perf: HostPerf::default(),
        }
    }
}

impl std::fmt::Debug for HostConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostConfig")
            .field("machine", &self.machine.name)
            .field("scheduler", &self.scheduler)
            .field("governor", &self.governor.as_ref().map(|g| g.name()))
            .finish()
    }
}

/// A VM in flight between two hosts: everything
/// [`Host::extract_vm`] hands over and [`Host::admit_vm`] restores.
pub struct MigratedVm {
    /// The VM's static configuration (name, credit, weight, …).
    pub config: VmConfig,
    /// The live workload, moved out of the source host.
    pub work: Box<dyn WorkSource>,
    /// Demand that was queued but not yet executed at extraction time,
    /// in mega-cycles; re-admission restores it so no work is lost.
    pub backlog_mcycles: f64,
}

impl std::fmt::Debug for MigratedVm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigratedVm")
            .field("name", &self.config.name)
            .field("credit", &self.config.credit)
            .field("backlog_mcycles", &self.backlog_mcycles)
            .finish()
    }
}

/// One simulated virtualized host.
pub struct Host {
    now: SimTime,
    cpu: Cpu,
    sched: Box<dyn Scheduler>,
    cpufreq: Option<CpuFreq>,
    vms: Vec<Vm>,
    stats: HostStats,
    quantum: SimDuration,
    acct_period: SimDuration,
    gov_period: SimDuration,
    sample_period: SimDuration,
    next_acct: SimTime,
    next_gov: SimTime,
    next_sample: SimTime,
    idle_fast_path: bool,
    // Tracing is opt-in: `None` (the default) keeps the hot path to a
    // single branch per site, pinned by the `trace_overhead` bench.
    tracer: Option<Box<Tracer>>,
    // Interned tracer name id per VM, indexed by `VmId` — a dense
    // sidecar so the hot pick-record path reads 4 bytes instead of
    // paging in the whole `Vm` struct. Populated while a tracer is
    // installed, empty otherwise.
    trace_ids: Vec<trace::NameId>,
    last_pick: Option<VmId>,
    // Reusable runnable-scan buffer: `advance_one_slice` runs a few
    // hundred thousand times per simulated fleet-minute, so the
    // per-slice `Vec<VmId>` collect was a heap allocation on the
    // hottest path in the workspace. Capacity is retained across
    // slices; contents are rebuilt each slice.
    runnable_scratch: Vec<VmId>,
    event_core: bool,
    // Per-window flattened demand model (see `HotVms`); rebuilt at
    // each boundary window, allocation retained across windows.
    hot: HotVms,
    // Per-forecast wake heap (see `Host::next_event`); rebuilt on
    // demand, allocation retained across rebuilds.
    wakes: WakeHeap,
    // Slices committed by the fused replay loop, cumulative. Purely
    // observational (tests prove the fast path engages; profiling
    // reports coverage) — never consulted by the simulation.
    fused_slices: u64,
    // Windows left before the fused loop probes again after a probe
    // that committed nothing (see `FUSE_PROBE_BACKOFF`). Pure pacing
    // state: it decides when the fast path is *attempted*, never what
    // any slice computes, so results are unaffected.
    fuse_backoff: u16,
    // Wall-clock self-profiling (see `HostPerf`). Off by default so
    // the hot path pays one branch, never a clock read.
    profiling: bool,
    perf: HostPerf,
}

/// Wall-clock time spent in each host hot-path phase, in nanoseconds.
/// Collected only while [`Host::set_profiling`] is on; purely
/// observational and **not** deterministic — it must stay out of every
/// artefact that is compared byte-for-byte (the campaign layer writes
/// it to the separate `<name>-profile.json`).
///
/// The hypervisor crate deliberately has no dependency on the metrics
/// crate, so these are raw counters; callers convert to profile spans.
#[derive(Debug, Default, Clone, Copy)]
pub struct HostPerf {
    /// Time advancing VM slices (both the fused window replay and the
    /// exact slice loop). Timed per boundary window on the event core,
    /// per slice on the legacy loop.
    pub host_slice_ns: u64,
    /// Time in the scheduler's accounting boundary (credit refill, PAS
    /// cap/frequency decisions).
    pub sched_acct_ns: u64,
    /// Time in the DVFS governor boundary.
    pub governor_ns: u64,
    /// Time taking statistics snapshots.
    pub snapshot_ns: u64,
}

impl HostPerf {
    /// Adds another host's counters into this one (fleet totals).
    pub fn absorb(&mut self, other: HostPerf) {
        self.host_slice_ns += other.host_slice_ns;
        self.sched_acct_ns += other.sched_acct_ns;
        self.governor_ns += other.governor_ns;
        self.snapshot_ns += other.snapshot_ns;
    }
}

/// How many boundary windows the fused loop sits out after a probe
/// that committed no slices. Hosts where fusing cannot apply (several
/// concurrently runnable VMs, caps below the quantum) would otherwise
/// pay an extra runnable scan per slice for nothing; with backoff the
/// probe cost is amortised to ~one scan per this many windows, while
/// hosts that do fuse keep probing every window (a successful probe
/// resets the pacing).
const FUSE_PROBE_BACKOFF: u16 = 8;

/// Struct-of-arrays sidecar for the fused window loop: the per-VM
/// demand model flattened into plain floats for one boundary window.
/// Valid for a whole window because every input is pinned between
/// boundaries: steady rates are constant by the
/// [`WorkSource::steady_rate_mcps`] contract, and exhaustion is
/// absorbing by the [`WorkSource::demand_exhausted`] contract.
/// Backlogs deliberately stay authoritative in the [`Vm`] structs —
/// the fused loop reads and writes `Vm::backlog_mcycles` directly, so
/// there is no state to re-synchronise on fallback.
#[derive(Default)]
struct HotVms {
    /// Per VM: demand added per quantum (`rate · quantum`), `0.0` for
    /// exhausted sources.
    add: Vec<f64>,
    /// Per VM: `demand_exhausted()` at window start — selects which
    /// runnability threshold `Vm::is_runnable` applies.
    exhausted: Vec<bool>,
    /// Indices of VMs with `add > 0`: the only VMs whose backlog (and
    /// hence runnability) can change during a window without running.
    growers: Vec<u32>,
    /// `false` if any VM is neither steady nor exhausted — its
    /// `generate` must be called per slice, so the window cannot be
    /// replayed.
    fusable: bool,
    /// `work_capacity(quantum)` at the window's P-state.
    cap_mc: f64,
    /// Effective mega-cycles per second at the window's P-state.
    mcps: f64,
    /// The quantum in seconds.
    qs: f64,
    /// The quantum re-rounded through `from_secs_f64`, as `charge`
    /// receives it on the exact path.
    busy_q: SimDuration,
    /// Absolute-load contribution of one fully-busy quantum.
    abs_q: f64,
}

impl Host {
    /// Adds a VM with its workload; returns its id.
    pub fn add_vm(&mut self, config: VmConfig, work: Box<dyn WorkSource>) -> VmId {
        let id = VmId(self.vms.len());
        self.sched.on_vm_added(id, &config);
        self.stats.register_vm(&config.name);
        let vm = Vm::new(id, config, work);
        if let Some(t) = self.tracer.as_mut() {
            self.trace_ids.push(t.intern(&vm.name_tag));
        }
        self.vms.push(vm);
        id
    }

    /// The current simulated instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The simulated processor.
    #[must_use]
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The statistics engine (loads, snapshots, energy).
    #[must_use]
    pub fn stats(&self) -> &HostStats {
        &self.stats
    }

    /// Cumulative count of scheduling slices committed by the fused
    /// replay loop (see `HostConfig::event_core`). Observational only:
    /// tests use it to prove the fast path engages, and profiling
    /// reports it as coverage. Zero when the event core is off.
    #[must_use]
    pub fn fused_slices(&self) -> u64 {
        self.fused_slices
    }

    /// Turns wall-clock phase profiling on or off (see [`HostPerf`]).
    /// Profiling only reads the clock around already-scheduled work —
    /// it cannot change any simulation result, only how long the
    /// simulation takes to run.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// The accumulated phase timings (zeros unless
    /// [`Host::set_profiling`] was turned on).
    #[must_use]
    pub fn perf(&self) -> HostPerf {
        self.perf
    }

    /// The scheduler's name ("credit", "sedf", "pas").
    #[must_use]
    pub fn scheduler_name(&self) -> &'static str {
        self.sched.name()
    }

    /// The machine's capacity at maximum frequency, in mega-cycles per
    /// second — the reference for "a VM with credit c demands
    /// `c · fmax_mcps`".
    #[must_use]
    pub fn fmax_mcps(&self) -> f64 {
        self.cpu.pstates().max().effective_mcps()
    }

    /// Immutable access to a VM.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    #[must_use]
    pub fn vm(&self, id: VmId) -> &Vm {
        &self.vms[id.0]
    }

    /// The scheduler's current cap for a VM (percent of wall time).
    #[must_use]
    pub fn effective_cap_pct(&self, id: VmId) -> Option<f64> {
        self.sched.effective_cap(id).map(|c| c * 100.0)
    }

    /// Number of VMs on this host.
    #[must_use]
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Externally overrides a VM's cap (fraction of wall time; `None`
    /// = uncapped). Returns `false` if the scheduler does not support
    /// external cap changes. This is the control surface the
    /// user-level PAS controllers of Section 4.1 use.
    pub fn set_vm_cap(&mut self, id: VmId, cap: Option<f64>) -> bool {
        self.sched.set_cap_external(id, cap)
    }

    /// Directly sets the processor P-state (the `userspace` governor
    /// path used by the user-level full controller).
    ///
    /// # Errors
    ///
    /// Returns [`cpumodel::CpuError`] for an out-of-range index.
    pub fn set_pstate(&mut self, idx: cpumodel::PStateIdx) -> Result<(), cpumodel::CpuError> {
        self.cpu.set_pstate(idx)
    }

    /// Reads and resets the external measurement window: `(load_pct,
    /// absolute_pct)` accumulated since the previous call.
    pub fn take_external_load(&mut self) -> (f64, f64) {
        self.stats.take_ext_window(self.now)
    }

    /// Retires a VM: its workload is replaced by [`crate::work::Idle`]
    /// and any queued demand is discarded, so it never runs again. The
    /// id stays valid (statistics are preserved); scheduler-side state
    /// is inert since the VM is never runnable.
    ///
    /// This models a guest shutdown in churn scenarios; Xen would
    /// additionally reclaim memory, which this CPU-focused model does
    /// not track per-host.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn retire_vm(&mut self, id: VmId) {
        let vm = &mut self.vms[id.0];
        vm.work = Box::new(crate::work::Idle);
        vm.backlog_mcycles = 0.0;
    }

    /// Extracts a VM for live migration: the workload and any queued
    /// backlog move out with the configuration, and the local slot is
    /// retired (replaced by [`crate::work::Idle`], never runnable
    /// again) so existing [`VmId`]s stay valid. Feed the returned
    /// [`MigratedVm`] to [`Host::admit_vm`] on the destination host.
    ///
    /// Statistics accumulated so far stay on the source host — exactly
    /// like a real migration, where the destination starts with fresh
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn extract_vm(&mut self, id: VmId) -> MigratedVm {
        let vm = &mut self.vms[id.0];
        let work = std::mem::replace(&mut vm.work, Box::new(crate::work::Idle));
        let backlog_mcycles = std::mem::replace(&mut vm.backlog_mcycles, 0.0);
        MigratedVm {
            config: vm.config.clone(),
            work,
            backlog_mcycles,
        }
    }

    /// Re-admits a migrated VM (the counterpart of
    /// [`Host::extract_vm`]): registers it with the scheduler and
    /// restores the in-flight backlog it carried over. Returns the
    /// VM's id *on this host*.
    pub fn admit_vm(&mut self, migrated: MigratedVm) -> VmId {
        let id = self.add_vm(migrated.config, migrated.work);
        self.vms[id.0].backlog_mcycles = migrated.backlog_mcycles;
        id
    }

    /// The QoS summary a VM's workload tracks, if any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    #[must_use]
    pub fn vm_qos(&self, id: VmId) -> Option<crate::work::QosSummary> {
        self.vms[id.0].work.qos_summary()
    }

    /// Installs a simulation-event tracer: from here on, scheduler
    /// pick changes, frequency transitions, cap rewrites and VM
    /// completions are recorded into its bounded ring. Also switches
    /// the scheduler's own event recording on. Replaces any previous
    /// tracer.
    ///
    /// Events are a pure function of simulation state, so a traced
    /// run records the identical stream regardless of worker threads
    /// or shard counts — and tracing never changes the simulation
    /// itself.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        let mut tracer = tracer;
        self.trace_ids = self
            .vms
            .iter()
            .map(|vm| tracer.intern(&vm.name_tag))
            .collect();
        self.sched.set_event_recording(true);
        self.last_pick = None;
        self.tracer = Some(Box::new(tracer));
    }

    /// Removes the tracer (switching scheduler event recording back
    /// off) and returns it with everything recorded so far.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.sched.set_event_recording(false);
        self.trace_ids.clear();
        self.tracer.take().map(|t| *t)
    }

    /// Whether a tracer is currently installed.
    #[must_use]
    pub fn is_tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Runs the simulation for `duration`.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.now + duration;
        self.run_until(end);
    }

    /// `true` when no VM can ever execute work again: none is runnable
    /// and every demand source is exhausted (see
    /// [`WorkSource::demand_exhausted`]). Quiescence is absorbing —
    /// only [`Host::add_vm`] / [`Host::admit_vm`] can end it.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.vms
            .iter()
            .all(|vm| !vm.is_runnable() && vm.work.demand_exhausted())
    }

    /// Runs the simulation until the absolute instant `t_end`.
    pub fn run_until(&mut self, t_end: SimTime) {
        while self.now < t_end {
            self.handle_boundaries();
            let boundary = self.next_boundary(t_end);
            // A real assert, not a debug_assert: a non-advancing
            // boundary (a zero-length period, say) would otherwise be
            // an infinite loop in exactly the --release builds the
            // benchmarks run.
            assert!(boundary > self.now, "boundary must advance");
            if self.idle_fast_path && self.is_quiescent() {
                // Idle-skip fast path: a quiescent host produces no VM
                // activity before the next boundary, so the per-slice
                // machinery (runnable scan, scheduler pick, per-VM
                // refill) is all no-ops. The only observable effect of
                // the gap is idle energy accounting — and the exact
                // path covers an empty gap with a single slice, so one
                // `account` call here is bit-identical, not just
                // approximately equal. Boundaries (accounting,
                // governor, snapshots) still fire one by one above.
                self.cpu.account(0.0, boundary - self.now);
                self.now = boundary;
            } else {
                let t0 = self.profiling.then(std::time::Instant::now);
                if self.event_core {
                    self.advance_window(boundary);
                } else {
                    self.advance_one_slice(boundary);
                }
                if let Some(t0) = t0 {
                    self.perf.host_slice_ns += t0.elapsed().as_nanos() as u64;
                }
            }
        }
        self.handle_boundaries();
        self.stats.set_elapsed(self.now);
    }

    /// Runs until the given VM's workload reports completion, up to
    /// `limit`. Returns the completion instant if reached.
    ///
    /// Completion is detected at *slice* granularity: a slice ends
    /// exactly when the backlog drains, so the returned instant is the
    /// true completion time, not rounded up to the next accounting
    /// boundary. The host stops at that instant.
    pub fn run_until_vm_finished(&mut self, id: VmId, limit: SimTime) -> Option<SimTime> {
        loop {
            if self.vms[id.0].work.is_finished() && !self.vms[id.0].is_runnable() {
                self.handle_boundaries();
                self.stats.set_elapsed(self.now);
                return Some(self.now);
            }
            if self.now >= limit {
                self.handle_boundaries();
                self.stats.set_elapsed(self.now);
                return None;
            }
            self.handle_boundaries();
            let boundary = self.next_boundary(limit);
            assert!(boundary > self.now, "boundary must advance");
            self.advance_one_slice(boundary);
        }
    }

    fn next_boundary(&self, t_end: SimTime) -> SimTime {
        let mut b = t_end.min(self.next_acct).min(self.next_sample);
        if self.cpufreq.is_some() {
            b = b.min(self.next_gov);
        }
        b
    }

    fn handle_boundaries(&mut self) {
        if self.now >= self.next_acct {
            let t0 = self.profiling.then(std::time::Instant::now);
            let prev_pstate = self.tracer.as_ref().map(|_| self.cpu.pstate());
            let (load, abs) = self.stats.take_acct_window(self.now);
            let mut ctx = SchedCtx {
                now: self.now,
                cpu: &mut self.cpu,
                measured_load_pct: load,
                measured_absolute_pct: abs,
            };
            self.sched.on_accounting(&mut ctx);
            if let Some(prev) = prev_pstate {
                self.note_freq_change(prev, FreqCause::Scheduler);
                self.drain_sched_events();
            }
            self.next_acct += self.acct_period;
            if let Some(t0) = t0 {
                self.perf.sched_acct_ns += t0.elapsed().as_nanos() as u64;
            }
        }
        if self.cpufreq.is_some() && self.now >= self.next_gov {
            let t0 = self.profiling.then(std::time::Instant::now);
            let prev_pstate = self.tracer.as_ref().map(|_| self.cpu.pstate());
            let load = self.stats.take_gov_window(self.now);
            if let Some(cpufreq) = self.cpufreq.as_mut() {
                cpufreq.sample(&mut self.cpu, self.now, load);
            }
            if let Some(prev) = prev_pstate {
                self.note_freq_change(prev, FreqCause::Governor);
            }
            self.next_gov += self.gov_period;
            if let Some(t0) = t0 {
                self.perf.governor_ns += t0.elapsed().as_nanos() as u64;
            }
        }
        if self.now >= self.next_sample {
            let t0 = self.profiling.then(std::time::Instant::now);
            let caps: Vec<Option<f64>> = (0..self.vms.len())
                .map(|i| self.sched.effective_cap(VmId(i)))
                .collect();
            let backlogs: Vec<f64> = self.vms.iter().map(|v| v.backlog_mcycles).collect();
            self.stats.set_elapsed(self.now);
            self.stats
                .take_snapshot(self.now, &self.cpu, &caps, &backlogs);
            self.next_sample += self.sample_period;
            if let Some(t0) = t0 {
                self.perf.snapshot_ns += t0.elapsed().as_nanos() as u64;
            }
        }
    }

    /// Records a `freq_change` event if the P-state moved away from
    /// `prev`. Only called on the traced path.
    fn note_freq_change(&mut self, prev: cpumodel::PStateIdx, cause: FreqCause) {
        let cur = self.cpu.pstate();
        if cur == prev {
            return;
        }
        let table = self.cpu.pstates();
        let from_mhz = table.state(prev).frequency.as_mhz();
        let to_mhz = table.state(cur).frequency.as_mhz();
        let at_s = self.now.as_secs_f64();
        if let Some(t) = self.tracer.as_mut() {
            t.record(
                at_s,
                EventKind::FreqChange {
                    cause,
                    from_mhz,
                    to_mhz,
                },
            );
        }
    }

    /// Drains the scheduler's recorded cap rewrites into the tracer.
    /// Only called on the traced path.
    fn drain_sched_events(&mut self) {
        let events = self.sched.take_sched_events();
        if events.is_empty() {
            return;
        }
        let at_s = self.now.as_secs_f64();
        if let Some(t) = self.tracer.as_mut() {
            for e in events {
                t.record_cap(at_s, self.trace_ids[e.vm.0], e.cap_pct);
            }
        }
    }

    fn advance_one_slice(&mut self, boundary: SimTime) {
        let horizon = boundary - self.now;
        let mut runnable = std::mem::take(&mut self.runnable_scratch);
        runnable.clear();
        runnable.extend(
            self.vms
                .iter()
                .filter(|vm| vm.is_runnable())
                .map(|vm| vm.id),
        );
        let pick = self.sched.pick_next(self.now, &runnable);
        if self.tracer.is_some() && pick != self.last_pick {
            // A pick *change* is the event; re-picking the same VM
            // slice after slice is not. `preempt` marks the case where
            // the displaced VM was still runnable — it lost the CPU
            // rather than going idle.
            let preempt = match (self.last_pick, pick) {
                (Some(prev), Some(_)) => runnable.contains(&prev),
                _ => false,
            };
            let vm = pick.map(|v| self.trace_ids[v.0]);
            let at_s = self.now.as_secs_f64();
            if let Some(t) = self.tracer.as_mut() {
                t.record_pick(at_s, vm, preempt);
            }
            self.last_pick = pick;
        }
        self.runnable_scratch = runnable;

        let slice = match pick {
            None => horizon,
            Some(vm) => {
                let cap_slice = self.sched.max_slice(vm, self.now);
                let mcps = self.cpu.pstates().state(self.cpu.pstate()).effective_mcps();
                let drain_secs = self.vms[vm.0].backlog_seconds_at(mcps);
                let drain = if drain_secs.is_finite() {
                    SimDuration::from_secs_f64(drain_secs.min(horizon.as_secs_f64()))
                } else {
                    horizon
                };
                let mut s = horizon.min(self.quantum).min(cap_slice).min(drain);
                if s.is_zero() {
                    // Sub-microsecond residue (cap or backlog): round up
                    // to the clock resolution so time always advances.
                    s = SimDuration::from_micros(1).min(horizon);
                }
                s
            }
        };
        debug_assert!(!slice.is_zero());

        let slice_end = self.now + slice;
        // Demand arrives continuously during the slice.
        for vm in &mut self.vms {
            vm.refill(slice_end, slice);
        }

        match pick {
            Some(vm) => {
                let capacity = self.cpu.work_capacity(slice);
                let done = self.vms[vm.0].execute(capacity, slice_end);
                let busy_frac = if capacity > 0.0 {
                    (done / capacity).min(1.0)
                } else {
                    0.0
                };
                let busy_secs = slice.as_secs_f64() * busy_frac;
                let busy = SimDuration::from_secs_f64(busy_secs);
                self.sched.charge(vm, busy);
                self.cpu.account(busy_frac, slice);
                let abs_secs = busy_secs * self.cpu.ratio() * self.cpu.cf();
                self.stats.on_slice(Some((vm, busy_secs, abs_secs)));
                if self.tracer.is_some() && done > 0.0 && self.vms[vm.0].is_complete() {
                    let name = self.vms[vm.0].name_tag.clone();
                    let at_s = slice_end.as_secs_f64();
                    if let Some(t) = self.tracer.as_mut() {
                        t.record(at_s, EventKind::VmComplete { vm: name });
                    }
                }
            }
            None => {
                self.cpu.account(0.0, slice);
                self.stats.on_slice(None);
            }
        }
        self.now = slice_end;
    }

    /// Rebuilds the [`HotVms`] sidecar for the window starting at
    /// `self.now`. One pass of virtual calls per window instead of
    /// several per slice.
    fn refresh_hot(&mut self) {
        let hot = &mut self.hot;
        hot.add.clear();
        hot.exhausted.clear();
        hot.growers.clear();
        hot.fusable = true;
        let qs = self.quantum.as_secs_f64();
        hot.cap_mc = self.cpu.work_capacity(self.quantum);
        hot.mcps = self.cpu.pstates().state(self.cpu.pstate()).effective_mcps();
        hot.qs = qs;
        hot.busy_q = SimDuration::from_secs_f64(qs);
        hot.abs_q = qs * self.cpu.ratio() * self.cpu.cf();
        for (i, vm) in self.vms.iter().enumerate() {
            if let Some(rate) = vm.work.steady_rate_mcps() {
                let add = rate * qs;
                hot.add.push(add);
                hot.exhausted.push(vm.work.demand_exhausted());
                if add > 0.0 {
                    hot.growers.push(i as u32);
                }
            } else if vm.work.demand_exhausted() {
                hot.add.push(0.0);
                hot.exhausted.push(true);
            } else {
                // A source whose generate() must run every slice
                // (stepped demand, open-loop injectors): the window
                // cannot be replayed. Stop classifying — the sidecar
                // is not consulted on the unfusable path.
                hot.fusable = false;
                return;
            }
        }
    }

    /// Advances one whole boundary window `[self.now, boundary)`
    /// through the event-driven core: replay fused steady stretches
    /// where provably equivalent, fall back to the exact per-slice
    /// loop the moment equivalence cannot be shown. Every observable
    /// effect is bit-identical to calling [`Host::advance_one_slice`]
    /// in a loop.
    fn advance_window(&mut self, boundary: SimTime) {
        // Probe pacing: attempting to fuse costs a sidecar rebuild and
        // a runnable scan, so the probe runs once per window — at the
        // window's start, where a steady stretch begins with fresh
        // credit — and a host whose probe found nothing to fuse sits
        // out a few windows before trying again. Purely a matter of
        // *when* the fast path is attempted — per-host and
        // deterministic, so results stay invariant across jobs and
        // shards.
        if self.sched.credit_core().is_some() {
            if self.fuse_backoff == 0 {
                self.refresh_hot();
                if self.hot.fusable {
                    let before = self.fused_slices;
                    self.run_fused(boundary);
                    if self.fused_slices == before {
                        self.fuse_backoff = FUSE_PROBE_BACKOFF;
                    }
                }
            } else {
                self.fuse_backoff -= 1;
            }
        }
        // Whatever the probe could not cover runs through the exact
        // per-slice loop below, replicating `run_until`'s legacy body.
        loop {
            if self.now >= boundary {
                return;
            }
            // Replicate `run_until`'s between-slice idle skip: a host
            // that turns quiescent mid-window (a batch completing)
            // must cover the gap without the per-slice machinery —
            // crucially, without the traced pick-change record a
            // `None` pick would emit.
            if self.idle_fast_path && self.is_quiescent() {
                self.cpu.account(0.0, boundary - self.now);
                self.now = boundary;
                return;
            }
            // Exact slice for anything the fused loop could not prove:
            // pick changes, partial slices, cap exhaustion, drains.
            // State may be steady again afterwards, so re-try fusing.
            self.advance_one_slice(boundary);
        }
    }

    /// Replays consecutive *identical* quantum slices without
    /// re-running the runnable scan, the scheduler pick or the per-VM
    /// refill calls. Commits zero or more slices and returns as soon
    /// as any precondition fails.
    ///
    /// Bit-exactness argument: a committed iteration performs exactly
    /// the operations `advance_one_slice` would, in the same order, on
    /// the same values:
    /// * the pick is forced — exactly one VM is runnable, its
    ///   `max_slice ≥ quantum > 0` implies cap eligibility, so
    ///   Credit's `pick_next` must return it; `repick_commit` replays
    ///   the cursor advance;
    /// * the slice is *computed* per iteration with the legacy
    ///   expression (horizon / quantum / cap / drain minimum, including
    ///   `from_secs_f64` rounding) and required to equal the quantum —
    ///   equality is checked, never derived;
    /// * refills are replayed as `backlog += rate · quantum`, the
    ///   bit-exact value `generate` must return for steady sources;
    ///   exhausted sources add exactly `0.0`, and `x + 0.0` preserves
    ///   bits for the non-negative backlogs the host maintains, so
    ///   zero-add refills are skipped outright;
    /// * the picked VM executes through the real [`Vm::execute`] with
    ///   `capacity = work_capacity(quantum)`; requiring
    ///   `backlog ≥ capacity` beforehand makes `done == capacity`
    ///   bitwise, hence `busy_frac == 1.0` exactly and the hoisted
    ///   charge/energy/stats values equal the per-slice computation;
    /// * with a tracer installed, fusing additionally requires the
    ///   recorded pick to already be this VM, so the steady stretch
    ///   emits the same (empty) record stream as the exact path; the
    ///   completion edge is re-checked per iteration.
    fn run_fused(&mut self, boundary: SimTime) {
        debug_assert!(self.hot.fusable);
        let cap_mc = self.hot.cap_mc;
        if cap_mc <= 0.0 {
            return;
        }
        let mcps = self.hot.mcps;
        let qs = self.hot.qs;
        let busy_q = self.hot.busy_q;
        let abs_q = self.hot.abs_q;
        // Exactly one runnable VM; the comparisons are bit-equivalent
        // to `Vm::is_runnable` via the per-window exhaustion flags.
        let mut pick = None;
        for (i, vm) in self.vms.iter().enumerate() {
            let runnable = if self.hot.exhausted[i] {
                vm.backlog_mcycles > 1e-9
            } else {
                vm.backlog_mcycles >= MIN_RUNNABLE_MCYCLES
            };
            if runnable {
                if pick.is_some() {
                    return; // two runnable VMs: the pick can alternate
                }
                pick = Some(i);
            }
        }
        let Some(p) = pick else { return };
        let p_id = VmId(p);
        if self.tracer.is_some() && self.last_pick != Some(p_id) {
            return; // the exact path emits a pick record first
        }
        // Borrows split per field: the leased core only holds
        // `self.sched`, leaving vms/cpu/stats/tracer/now free.
        let Some(core) = self.sched.credit_core() else {
            return;
        };
        loop {
            let horizon = boundary - self.now;
            if self.quantum > horizon {
                return; // the window tail is shorter than a quantum
            }
            // Growers must stay below the runnable threshold through
            // this slice's scan; every other VM's backlog is unchanged
            // since the entry scan.
            for &g in &self.hot.growers {
                let g = g as usize;
                if g != p && self.vms[g].backlog_mcycles >= MIN_RUNNABLE_MCYCLES {
                    return;
                }
            }
            let b_p = self.vms[p].backlog_mcycles;
            let p_runnable = if self.hot.exhausted[p] {
                b_p > 1e-9
            } else {
                b_p >= MIN_RUNNABLE_MCYCLES
            };
            if !p_runnable {
                return;
            }
            // The slice the exact path would take, computed with its
            // exact float operations, must be one full quantum.
            let cap_slice = core.max_slice(p_id, self.now);
            let drain_secs = b_p / mcps;
            let drain = if drain_secs.is_finite() {
                SimDuration::from_secs_f64(drain_secs.min(horizon.as_secs_f64()))
            } else {
                horizon
            };
            if horizon.min(self.quantum).min(cap_slice).min(drain) != self.quantum {
                return;
            }
            // The refilled backlog must cover the quantum's capacity
            // so `execute` runs the VM fully busy.
            let b_new = b_p + self.hot.add[p];
            if b_new < cap_mc {
                return;
            }

            // Commit: the legacy slice's operations in its order.
            self.fused_slices += 1;
            let slice_end = self.now + self.quantum;
            core.repick_commit(p_id);
            for &g in &self.hot.growers {
                let g = g as usize;
                if g != p {
                    self.vms[g].backlog_mcycles += self.hot.add[g];
                }
            }
            self.vms[p].backlog_mcycles = b_new;
            let done = self.vms[p].execute(cap_mc, slice_end);
            debug_assert_eq!(done.to_bits(), cap_mc.to_bits());
            core.charge(p_id, busy_q);
            self.cpu.account(1.0, self.quantum);
            self.stats.on_slice(Some((p_id, qs, abs_q)));
            if self.tracer.is_some() && self.vms[p].is_complete() {
                let name = self.vms[p].name_tag.clone();
                let at_s = slice_end.as_secs_f64();
                if let Some(t) = self.tracer.as_mut() {
                    t.record(at_s, EventKind::VmComplete { vm: name });
                }
            }
            self.now = slice_end;
        }
    }

    /// Rebuilds the wake heap with one entry per pending wake —
    /// optionally the control boundaries (accounting, governor,
    /// snapshot), plus per VM the instant it can next hold the CPU:
    /// a runnable VM drains from now; a dormant steady source becomes
    /// runnable once `(threshold − backlog) / rate` elapses; an
    /// exhausted source never wakes again; an unpredictable source
    /// wakes conservatively now. Returns the earliest wake, capped at
    /// `horizon`.
    fn rebuild_wakes(&mut self, horizon: SimTime, with_boundaries: bool) -> SimTime {
        self.wakes.clear();
        if with_boundaries {
            self.wakes.push(self.next_acct, WakeKind::Acct);
            if self.cpufreq.is_some() {
                self.wakes.push(self.next_gov, WakeKind::Governor);
            }
            self.wakes.push(self.next_sample, WakeKind::Sample);
        }
        let span_s = (horizon - self.now.min(horizon)).as_secs_f64();
        for (i, vm) in self.vms.iter().enumerate() {
            let idx = i as u32;
            if vm.is_runnable() {
                self.wakes.push(self.now, WakeKind::VmDrain(idx));
            } else if vm.work.demand_exhausted() {
                // Exhaustion is absorbing and the backlog is below the
                // runnable threshold: this VM never wakes again.
            } else {
                match vm.work.steady_rate_mcps() {
                    Some(rate) if rate > 0.0 => {
                        let deficit = (MIN_RUNNABLE_MCYCLES - vm.backlog_mcycles).max(0.0);
                        let dt = SimDuration::from_secs_f64((deficit / rate).min(span_s));
                        self.wakes.push(self.now + dt, WakeKind::VmArrival(idx));
                    }
                    Some(_) => {} // zero rate: never generates demand
                    None => self.wakes.push(self.now, WakeKind::VmArrival(idx)),
                }
            }
        }
        self.wakes.peek_time().map_or(horizon, |t| t.min(horizon))
    }

    /// The earliest instant at which anything can happen on this host
    /// — a control boundary or VM activity — capped at `horizon`.
    /// A deterministic forecast over current state; computing it does
    /// not advance or otherwise change the simulation.
    pub fn next_event(&mut self, horizon: SimTime) -> SimTime {
        self.rebuild_wakes(horizon, true)
    }

    /// The earliest instant at which any VM can execute work, capped
    /// at `horizon`; `horizon` itself means "no VM activity before
    /// then". Control boundaries are excluded — they fire regardless
    /// but are cheap to process. The fleet's next-event epoch runner
    /// uses this to keep dormant hosts off the worker pool; the
    /// forecast only routes *where* a host simulates, never what it
    /// computes, so a conservative estimate cannot change results.
    pub fn next_vm_wake(&mut self, horizon: SimTime) -> SimTime {
        self.rebuild_wakes(horizon, false)
    }
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("now", &self.now)
            .field("scheduler", &self.sched.name())
            .field("vms", &self.vms.len())
            .field("pstate", &self.cpu.pstate())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::ConstantDemand;
    use governors::{Performance, StableOndemand};
    use pas_core::Credit;

    fn demand(host: &Host, frac: f64) -> Box<ConstantDemand> {
        Box::new(ConstantDemand::new(frac * host.fmax_mcps()))
    }

    #[test]
    fn cap_enforced_under_credit() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        let d = demand(&host, 0.5);
        host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d);
        host.run_for(SimDuration::from_secs(30));
        let busy = host.stats().vm_busy_fraction(VmId(0));
        assert!((busy - 0.20).abs() < 0.01, "busy {busy} != 20%");
    }

    #[test]
    fn idle_host_consumes_no_cpu() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        host.add_vm(
            VmConfig::new("idle", Credit::percent(50.0)),
            Box::new(crate::work::Idle),
        );
        host.run_for(SimDuration::from_secs(10));
        assert_eq!(host.stats().global_busy_fraction(), 0.0);
        assert_eq!(host.now(), SimTime::from_secs(10));
    }

    #[test]
    fn two_vms_respect_their_caps() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        let d1 = demand(&host, 1.0);
        let d2 = demand(&host, 1.0);
        host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d1);
        host.add_vm(VmConfig::new("v70", Credit::percent(70.0)), d2);
        host.run_for(SimDuration::from_secs(30));
        let b0 = host.stats().vm_busy_fraction(VmId(0));
        let b1 = host.stats().vm_busy_fraction(VmId(1));
        assert!((b0 - 0.20).abs() < 0.01, "v20 busy {b0}");
        assert!((b1 - 0.70).abs() < 0.01, "v70 busy {b1}");
    }

    #[test]
    fn sedf_redistributes_idle_time() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Sedf { extra: true }).build();
        let d = demand(&host, 1.0);
        host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d);
        host.add_vm(
            VmConfig::new("v70", Credit::percent(70.0)),
            Box::new(crate::work::Idle),
        );
        host.run_for(SimDuration::from_secs(30));
        let b0 = host.stats().vm_busy_fraction(VmId(0));
        assert!(b0 > 0.9, "work conserving: v20 got {b0}");
    }

    #[test]
    fn governor_scales_down_on_low_load() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit)
            .with_governor(Box::new(StableOndemand::new()))
            .build();
        let d = demand(&host, 0.20);
        host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d);
        host.run_for(SimDuration::from_secs(60));
        assert_eq!(host.cpu().pstate(), host.cpu().pstates().min_idx());
    }

    #[test]
    fn performance_governor_stays_at_max() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit)
            .with_governor(Box::new(Performance))
            .build();
        let d = demand(&host, 0.05);
        host.add_vm(VmConfig::new("v", Credit::percent(20.0)), d);
        host.run_for(SimDuration::from_secs(20));
        assert_eq!(host.cpu().pstate(), host.cpu().pstates().max_idx());
    }

    #[test]
    fn pas_self_manages_dvfs() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Pas).build();
        let d = demand(&host, 1.0); // thrashing V20
        host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d);
        host.add_vm(
            VmConfig::new("v70", Credit::percent(70.0)),
            Box::new(crate::work::Idle),
        );
        host.run_for(SimDuration::from_secs(60));
        // Host underloaded → PAS parks the frequency at the bottom...
        assert_eq!(host.cpu().pstate(), host.cpu().pstates().min_idx());
        // ...while preserving V20's absolute capacity at ~20%.
        let abs = host.stats().vm_absolute_fraction(VmId(0));
        assert!((abs - 0.20).abs() < 0.02, "absolute {abs} != 20%");
        // And its cap was raised to ~33% (Figure 9).
        let cap = host.effective_cap_pct(VmId(0)).unwrap();
        assert!((cap - 33.0).abs() < 2.0, "cap {cap}");
    }

    #[test]
    #[should_panic(expected = "PAS manages DVFS itself")]
    fn pas_plus_governor_rejected() {
        let _ =
            HostConfig::optiplex_defaults(SchedulerKind::Pas).with_governor(Box::new(Performance));
    }

    #[test]
    fn snapshots_are_emitted() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit)
            .with_sample_period(SimDuration::from_secs(5))
            .build();
        let d = demand(&host, 0.3);
        host.add_vm(VmConfig::new("v", Credit::percent(30.0)), d);
        host.run_for(SimDuration::from_secs(30));
        let n = host.stats().snapshots().len();
        assert!((5..=7).contains(&n), "snapshots {n}");
    }

    #[test]
    fn extract_then_admit_preserves_backlog_and_retires_source() {
        let mut src = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        let total = 5.0 * src.fmax_mcps();
        let id = src.add_vm(
            VmConfig::new("mover", Credit::percent(50.0)),
            Box::new(crate::work::test_batch(total)),
        );
        src.run_for(SimDuration::from_secs(2));
        let moved = src.extract_vm(id);
        assert!(moved.backlog_mcycles >= 0.0);
        assert_eq!(moved.config.name, "mover");

        // The source slot is inert: more simulated time does no work.
        let done_before = src.vm(id).total_done_mcycles;
        src.run_for(SimDuration::from_secs(2));
        assert_eq!(src.vm(id).total_done_mcycles, done_before);

        // The destination finishes the batch exactly.
        let mut dst = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        let new_id = dst.admit_vm(moved);
        let done = dst.run_until_vm_finished(new_id, SimTime::from_secs(100));
        assert!(done.is_some(), "migrated batch completes on destination");
        let total_done = src.vm(id).total_done_mcycles + dst.vm(new_id).total_done_mcycles;
        assert!(
            (total_done - total).abs() < 1e-6,
            "no work lost in migration: {total_done} vs {total}"
        );
    }

    #[test]
    fn run_until_vm_finished_reports_completion() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        // A batch job of exactly 10 seconds of fmax work in a 50% VM:
        // should take ~20 s of wall time.
        let total = 10.0 * host.fmax_mcps();
        host.add_vm(
            VmConfig::new("batch", Credit::percent(50.0)),
            Box::new(crate::work::test_batch(total)),
        );
        let done = host.run_until_vm_finished(VmId(0), SimTime::from_secs(100));
        let t = done.expect("finished").as_secs_f64();
        assert!((t - 20.0).abs() < 0.5, "finished at {t}");
    }

    #[test]
    fn completion_instant_is_slice_exact_not_acct_quantized() {
        // 0.5 s of fmax work in a 50% VM: 15 ms of service per 30 ms
        // accounting period, starting one period late (credit arrives
        // at the first accounting boundary), so the drain finishes
        // mid-period at t = 0.03 + 33 × 0.03 + 0.005 = 1.025 s —
        // strictly between the 1.02 and 1.05 boundaries. The
        // acct-granularity poll this regression pins down used to
        // round completion up to the next boundary.
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        let total = 0.5 * host.fmax_mcps();
        host.add_vm(
            VmConfig::new("batch", Credit::percent(50.0)),
            Box::new(crate::work::test_batch(total)),
        );
        let done = host.run_until_vm_finished(VmId(0), SimTime::from_secs(10));
        let t = done.expect("finished").as_secs_f64();
        assert!(
            (t - 1.025).abs() < 1e-4,
            "exact completion instant, got {t}"
        );
        assert_eq!(host.now().as_secs_f64(), t, "host stops at completion");
    }

    #[test]
    fn traced_pas_host_records_picks_caps_freq_and_completion() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Pas).build();
        let total = 2.0 * host.fmax_mcps();
        host.add_vm(
            VmConfig::new("batch", Credit::percent(20.0)),
            Box::new(crate::work::test_batch(total)),
        );
        host.add_vm(
            VmConfig::new("lazy", Credit::percent(70.0)),
            Box::new(crate::work::Idle),
        );
        host.set_tracer(trace::Tracer::new(1, trace::DEFAULT_CAPACITY).with_host(0));
        assert!(host.is_tracing());
        host.run_for(SimDuration::from_secs(30));
        let tracer = host.take_tracer().expect("tracer installed");
        assert!(!host.is_tracing());
        let trace = trace::Trace::merge(vec![tracer]);
        let kind_count = |name: &str| {
            trace
                .events()
                .iter()
                .filter(|e| e.kind.name() == name)
                .count()
        };
        assert!(kind_count("sched_pick") >= 2, "batch runs, then idles");
        assert!(kind_count("cap_change") >= 2, "PAS rewrote caps");
        assert!(
            kind_count("freq_change") >= 1,
            "underload drops the frequency"
        );
        assert_eq!(kind_count("vm_complete"), 1, "the batch finished once");
        // Host tag flows through to every event.
        assert!(trace.events().iter().all(|e| e.host == Some(0)));
        // Events are in simulation-time order.
        let times: Vec<f64> = trace.events().iter().map(|e| e.at_s).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn tracing_never_changes_the_simulation() {
        let run = |traced: bool| {
            let mut host = HostConfig::optiplex_defaults(SchedulerKind::Pas).build();
            let d = demand(&host, 1.0);
            host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d);
            host.add_vm(
                VmConfig::new("v70", Credit::percent(70.0)),
                Box::new(crate::work::Idle),
            );
            if traced {
                host.set_tracer(trace::Tracer::new(1, 64));
            }
            host.run_for(SimDuration::from_secs(30));
            (
                host.cpu().energy().joules().to_bits(),
                host.stats().global_busy_fraction().to_bits(),
                host.cpu().pstate(),
            )
        };
        assert_eq!(run(true), run(false), "tracing must be observation-only");
    }

    /// The idle-skip fast path must be *bit-identical* to the
    /// slice-exact path, not merely close: energy accounting, loads
    /// and snapshots all agree to the last bit on a host that turns
    /// quiescent mid-run.
    #[test]
    fn idle_fast_path_is_bit_exact() {
        let run = |fast: bool| {
            let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit)
                .with_governor(Box::new(StableOndemand::new()))
                .with_idle_fast_path(fast)
                .build();
            let total = 5.0 * host.fmax_mcps();
            host.add_vm(
                VmConfig::new("batch", Credit::percent(50.0)),
                Box::new(crate::work::test_batch(total)),
            );
            host.add_vm(
                VmConfig::new("spare", Credit::percent(20.0)),
                Box::new(crate::work::Idle),
            );
            // ~10 s busy, then ~50 s quiescent.
            host.run_for(SimDuration::from_secs(60));
            host
        };
        let fast = run(true);
        let exact = run(false);
        assert!(fast.is_quiescent() && exact.is_quiescent());
        assert_eq!(
            fast.cpu().energy().joules().to_bits(),
            exact.cpu().energy().joules().to_bits(),
            "energy must agree bit-for-bit"
        );
        assert_eq!(
            fast.stats().global_busy_fraction().to_bits(),
            exact.stats().global_busy_fraction().to_bits()
        );
        assert_eq!(fast.stats().snapshots(), exact.stats().snapshots());
    }

    /// Everything externally observable about a finished run, with the
    /// floats as raw bits: equality here means *bit*-identity, not
    /// tolerance.
    fn fingerprint(host: &Host) -> (u64, u64, usize, SimTime, Vec<(u64, u64)>, usize) {
        let per_vm: Vec<(u64, u64)> = (0..host.vm_count())
            .map(|i| {
                let id = VmId(i);
                (
                    host.stats().vm_busy_fraction(id).to_bits(),
                    host.vm(id).total_done_mcycles.to_bits(),
                )
            })
            .collect();
        (
            host.cpu().energy().joules().to_bits(),
            host.stats().global_busy_fraction().to_bits(),
            host.cpu().pstate().0,
            host.now(),
            per_vm,
            host.stats().snapshots().len(),
        )
    }

    /// The fused replay's sweet spot — one saturating uncapped VM
    /// under Credit (a capped VM's per-period allowance sits below the
    /// quantum, so caps force partial slices) — must be bit-identical
    /// to the slice-exact path, and the fast path must actually
    /// engage.
    #[test]
    fn event_core_is_bit_exact_for_thrashing_credit_vm() {
        let run = |on: bool| {
            let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit)
                .with_event_core(on)
                .build();
            let d = demand(&host, 1.0);
            host.add_vm(VmConfig::new("hog", Credit::ZERO), d);
            host.run_for(SimDuration::from_secs(60));
            host
        };
        let on = run(true);
        let off = run(false);
        assert!(on.fused_slices() > 0, "fused path never engaged");
        assert_eq!(off.fused_slices(), 0);
        assert_eq!(fingerprint(&on), fingerprint(&off));
        assert_eq!(on.stats().snapshots(), off.stats().snapshots());
    }

    /// Profiling only reads the clock around already-scheduled work:
    /// a profiled run must be bit-identical to an unprofiled one, and
    /// the phase counters must actually accumulate.
    #[test]
    fn profiling_is_bit_exact_and_counters_accumulate() {
        let run = |profiled: bool| {
            let mut host = HostConfig::optiplex_defaults(SchedulerKind::Pas)
                .with_event_core(true)
                .build();
            host.set_profiling(profiled);
            let d = demand(&host, 1.0);
            host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d);
            host.run_for(SimDuration::from_secs(60));
            host
        };
        let profiled = run(true);
        let plain = run(false);
        assert_eq!(fingerprint(&profiled), fingerprint(&plain));
        assert_eq!(profiled.stats().snapshots(), plain.stats().snapshots());
        let perf = profiled.perf();
        assert!(perf.host_slice_ns > 0, "slice phase was timed");
        assert!(perf.sched_acct_ns > 0, "accounting phase was timed");
        assert!(perf.snapshot_ns > 0, "snapshot phase was timed");
        let off = plain.perf();
        assert_eq!(
            (
                off.host_slice_ns,
                off.sched_acct_ns,
                off.governor_ns,
                off.snapshot_ns
            ),
            (0, 0, 0, 0),
            "profiling off must not read the clock"
        );
    }

    /// PAS rewrites caps and the frequency at every accounting
    /// boundary; the fused loop must replay identically between those
    /// boundaries. The trickle VM stays dormant for ~12 windows at a
    /// time, then crosses the runnable threshold *mid-window* — the
    /// grower re-check must bail the fused loop out at exactly the
    /// slice where the exact path would schedule it.
    #[test]
    fn event_core_is_bit_exact_under_pas_with_mixed_vms() {
        let run = |on: bool| {
            let mut host = HostConfig::optiplex_defaults(SchedulerKind::Pas)
                .with_event_core(on)
                .build();
            let d1 = demand(&host, 1.0);
            let d2 = Box::new(ConstantDemand::new(0.008));
            host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d1);
            host.add_vm(VmConfig::new("trickle", Credit::percent(30.0)), d2);
            host.add_vm(
                VmConfig::new("lazy", Credit::percent(70.0)),
                Box::new(crate::work::Idle),
            );
            host.run_for(SimDuration::from_secs(60));
            host
        };
        let on = run(true);
        let off = run(false);
        assert!(on.fused_slices() > 0, "fused path never engaged");
        assert_eq!(fingerprint(&on), fingerprint(&off));
        assert_eq!(on.stats().snapshots(), off.stats().snapshots());
    }

    /// A batch source is unfusable until its work is released (its
    /// `generate` has state), then fuses as an exhausted drain; the
    /// host later turns quiescent under a downscaling governor. All
    /// three regimes must agree with the exact path bit-for-bit.
    #[test]
    fn event_core_is_bit_exact_for_batch_drain() {
        let run = |on: bool| {
            let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit)
                .with_governor(Box::new(StableOndemand::new()))
                .with_event_core(on)
                .build();
            let total = 5.0 * host.fmax_mcps();
            host.add_vm(
                VmConfig::new("batch", Credit::percent(50.0)),
                Box::new(crate::work::test_batch(total)),
            );
            host.add_vm(
                VmConfig::new("spare", Credit::percent(20.0)),
                Box::new(crate::work::Idle),
            );
            host.run_for(SimDuration::from_secs(60));
            host
        };
        let on = run(true);
        let off = run(false);
        assert!(on.fused_slices() > 0, "fused path never engaged");
        assert_eq!(fingerprint(&on), fingerprint(&off));
        assert_eq!(on.stats().snapshots(), off.stats().snapshots());
    }

    /// With a tracer installed the event core must emit the *same
    /// event stream*, not merely the same aggregates — fusing is only
    /// allowed on stretches that provably record nothing.
    #[test]
    fn event_core_is_bit_exact_when_traced() {
        let run = |on: bool| {
            let mut host = HostConfig::optiplex_defaults(SchedulerKind::Pas)
                .with_event_core(on)
                .build();
            let total = 8.0 * host.fmax_mcps();
            host.add_vm(
                VmConfig::new("batch", Credit::percent(20.0)),
                Box::new(crate::work::test_batch(total)),
            );
            host.add_vm(
                VmConfig::new("lazy", Credit::percent(70.0)),
                Box::new(crate::work::Idle),
            );
            host.set_tracer(trace::Tracer::new(1, trace::DEFAULT_CAPACITY).with_host(0));
            host.run_for(SimDuration::from_secs(60));
            let tracer = host.take_tracer().expect("tracer installed");
            (fingerprint(&host), trace::Trace::merge(vec![tracer]))
        };
        let (fp_on, trace_on) = run(true);
        let (fp_off, trace_off) = run(false);
        assert_eq!(fp_on, fp_off);
        assert!(!trace_on.events().is_empty());
        assert_eq!(trace_on.events(), trace_off.events());
    }

    /// SEDF has no Credit core to lease, so the event core must fall
    /// back to the exact loop throughout — and still match.
    #[test]
    fn event_core_is_inert_for_sedf() {
        let run = |on: bool| {
            let mut host = HostConfig::optiplex_defaults(SchedulerKind::Sedf { extra: true })
                .with_event_core(on)
                .build();
            let d1 = demand(&host, 1.0);
            host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d1);
            host.add_vm(
                VmConfig::new("v70", Credit::percent(70.0)),
                Box::new(crate::work::Idle),
            );
            host.run_for(SimDuration::from_secs(30));
            host
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.fused_slices(), 0, "no Credit core, nothing fuses");
        assert_eq!(fingerprint(&on), fingerprint(&off));
    }

    /// The wake forecast: runnable VMs wake now, dormant fluid sources
    /// wake when their backlog reaches the runnable threshold, and
    /// exhausted VMs never wake.
    #[test]
    fn next_vm_wake_forecasts_arrivals() {
        let horizon = SimTime::from_secs(100);

        // Idle-only host: no VM ever wakes.
        let mut idle = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        idle.add_vm(
            VmConfig::new("idle", Credit::percent(50.0)),
            Box::new(crate::work::Idle),
        );
        assert_eq!(idle.next_vm_wake(horizon), horizon);
        // Control boundaries still fire: the first accounting tick.
        assert_eq!(idle.next_event(horizon), SimTime::from_millis(30));

        // A dormant trickle source crosses the runnable threshold
        // after threshold / rate seconds.
        let mut slow = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        slow.add_vm(
            VmConfig::new("trickle", Credit::percent(50.0)),
            Box::new(ConstantDemand::new(MIN_RUNNABLE_MCYCLES)),
        );
        let wake = slow.next_vm_wake(horizon).as_secs_f64();
        assert!((wake - 1.0).abs() < 1e-9, "wake at {wake}, expected 1 s");

        // A runnable VM wakes immediately.
        let mut busy = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        let d = demand(&busy, 0.5);
        busy.add_vm(VmConfig::new("busy", Credit::percent(50.0)), d);
        busy.run_for(SimDuration::from_millis(90));
        assert_eq!(busy.next_vm_wake(horizon), busy.now());
    }
}
