//! The host simulation loop.
//!
//! [`Host`] ties together one simulated processor ([`cpumodel::Cpu`]),
//! a hypervisor [`Scheduler`], an optional DVFS governor
//! ([`governors::CpuFreq`]), the VMs and the statistics engine.
//!
//! The loop advances in *variable-length slices*: each slice is the
//! minimum of the scheduler quantum (Xen: 10 ms), the picked VM's cap
//! or deadline allowance, its backlog drain time, and the distance to
//! the next period boundary (accounting / governor / snapshot). This
//! gives exact cap enforcement (a 20% cap on a 30 ms period yields
//! precisely 6 ms) without a sub-millisecond fixed step.

use cpumodel::Cpu;
use governors::{CpuFreq, Governor};
use simkernel::{SimDuration, SimTime};
use trace::{EventKind, FreqCause, Record as _, Tracer};

use crate::sched::{
    Credit2Scheduler, CreditScheduler, PasScheduler, SchedCtx, Scheduler, SedfScheduler,
};
use crate::stats::HostStats;
use crate::vm::{Vm, VmConfig, VmId};
use crate::work::WorkSource;

/// Which hypervisor scheduler the host runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Xen Credit with caps (fix credit).
    Credit,
    /// Xen Credit2 (beta in the paper's Xen): weighted fair, no caps
    /// — behaves as a variable-credit scheduler.
    Credit2,
    /// Xen SEDF; `extra = true` is the paper's variable-credit
    /// configuration.
    Sedf {
        /// The extra-time (`b`) flag applied to VMs without an
        /// explicit triplet.
        extra: bool,
    },
    /// The paper's PAS scheduler (Credit + DVFS + credit
    /// compensation). The host must not also install a governor.
    Pas,
}

/// Host configuration; see [`HostConfig::optiplex_defaults`].
pub struct HostConfig {
    /// The simulated machine.
    pub machine: cpumodel::MachineSpec,
    /// Scheduler choice.
    pub scheduler: SchedulerKind,
    /// Optional DVFS governor (`None` keeps the boot frequency, i.e.
    /// maximum — equivalent to the performance governor).
    pub governor: Option<Box<dyn Governor>>,
    /// Scheduler quantum (Xen: 10 ms).
    pub quantum: SimDuration,
    /// Base governor sampling period; each governor stretches it by
    /// its own `sampling_multiplier`.
    pub governor_base_period: SimDuration,
    /// Telemetry snapshot period (the spacing of figure points).
    pub sample_period: SimDuration,
    /// PAS smoothing-window override (ablation; the paper uses 3).
    /// Ignored for other schedulers.
    pub pas_smoothing_window: Option<usize>,
    /// PAS planner headroom override, percent (ablation; the paper's
    /// Listing 1.1 uses none). Ignored for other schedulers.
    pub pas_headroom_pct: Option<f64>,
    /// Whether [`Host::run_until`] may jump quiescent hosts straight
    /// to the next period boundary (see [`Host::is_quiescent`]). The
    /// jump is bit-identical to the slice-exact path; the switch
    /// exists so tests and benchmarks can compare the two.
    pub idle_fast_path: bool,
}

impl HostConfig {
    /// The paper's testbed defaults: Optiplex 755 ladder, 10 ms
    /// quantum, 50 ms base governor period, 10 s snapshots, no
    /// governor installed.
    #[must_use]
    pub fn optiplex_defaults(scheduler: SchedulerKind) -> Self {
        HostConfig {
            machine: cpumodel::machines::optiplex_755(),
            scheduler,
            governor: None,
            quantum: SimDuration::from_millis(10),
            governor_base_period: SimDuration::from_millis(50),
            sample_period: SimDuration::from_secs(10),
            pas_smoothing_window: None,
            pas_headroom_pct: None,
            idle_fast_path: true,
        }
    }

    /// Enables or disables the idle-skip fast path (on by default).
    #[must_use]
    pub fn with_idle_fast_path(mut self, on: bool) -> Self {
        self.idle_fast_path = on;
        self
    }

    /// Overrides PAS's load-smoothing window (the paper's footnote 5
    /// uses 3 samples). Only meaningful with [`SchedulerKind::Pas`].
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_pas_smoothing_window(mut self, window: usize) -> Self {
        assert!(window > 0, "smoothing window must be at least 1");
        self.pas_smoothing_window = Some(window);
        self
    }

    /// Gives PAS's frequency planner headroom: the chosen state must
    /// have `headroom_pct` spare capacity above the absolute load.
    /// Only meaningful with [`SchedulerKind::Pas`].
    #[must_use]
    pub fn with_pas_headroom(mut self, headroom_pct: f64) -> Self {
        self.pas_headroom_pct = Some(headroom_pct);
        self
    }

    /// Sets the machine.
    #[must_use]
    pub fn with_machine(mut self, machine: cpumodel::MachineSpec) -> Self {
        self.machine = machine;
        self
    }

    /// Installs a governor.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler is [`SchedulerKind::Pas`]: PAS manages
    /// DVFS itself; running a second frequency owner would fight it
    /// (the paper runs Xen's governor as userspace under PAS).
    #[must_use]
    pub fn with_governor(mut self, governor: Box<dyn Governor>) -> Self {
        assert!(
            self.scheduler != SchedulerKind::Pas,
            "PAS manages DVFS itself; do not install a governor"
        );
        self.governor = Some(governor);
        self
    }

    /// Sets the snapshot period.
    #[must_use]
    pub fn with_sample_period(mut self, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "sample period must be non-zero");
        self.sample_period = period;
        self
    }

    /// Builds the host.
    #[must_use]
    pub fn build(self) -> Host {
        let cpu = self.machine.build_cpu();
        let sched: Box<dyn Scheduler> = match self.scheduler {
            SchedulerKind::Credit => Box::new(CreditScheduler::new()),
            SchedulerKind::Credit2 => Box::new(Credit2Scheduler::new()),
            SchedulerKind::Sedf { extra } => Box::new(SedfScheduler::new(extra)),
            SchedulerKind::Pas => {
                let mut pas = PasScheduler::new(&cpu);
                if let Some(w) = self.pas_smoothing_window {
                    pas = pas.with_smoothing_window(w);
                }
                if let Some(h) = self.pas_headroom_pct {
                    pas = pas.with_headroom(h);
                }
                Box::new(pas)
            }
        };
        let gov_period = match &self.governor {
            Some(g) => self.governor_base_period * u64::from(g.sampling_multiplier().max(1)),
            None => self.governor_base_period,
        };
        let acct_period = sched.accounting_period();
        Host {
            now: SimTime::ZERO,
            cpu,
            sched,
            cpufreq: self.governor.map(CpuFreq::new),
            vms: Vec::new(),
            stats: HostStats::new(),
            quantum: self.quantum,
            acct_period,
            gov_period,
            sample_period: self.sample_period,
            next_acct: SimTime::ZERO + acct_period,
            next_gov: SimTime::ZERO + gov_period,
            next_sample: SimTime::ZERO + self.sample_period,
            idle_fast_path: self.idle_fast_path,
            tracer: None,
            trace_ids: Vec::new(),
            last_pick: None,
            runnable_scratch: Vec::new(),
        }
    }
}

impl std::fmt::Debug for HostConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostConfig")
            .field("machine", &self.machine.name)
            .field("scheduler", &self.scheduler)
            .field("governor", &self.governor.as_ref().map(|g| g.name()))
            .finish()
    }
}

/// A VM in flight between two hosts: everything
/// [`Host::extract_vm`] hands over and [`Host::admit_vm`] restores.
pub struct MigratedVm {
    /// The VM's static configuration (name, credit, weight, …).
    pub config: VmConfig,
    /// The live workload, moved out of the source host.
    pub work: Box<dyn WorkSource>,
    /// Demand that was queued but not yet executed at extraction time,
    /// in mega-cycles; re-admission restores it so no work is lost.
    pub backlog_mcycles: f64,
}

impl std::fmt::Debug for MigratedVm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigratedVm")
            .field("name", &self.config.name)
            .field("credit", &self.config.credit)
            .field("backlog_mcycles", &self.backlog_mcycles)
            .finish()
    }
}

/// One simulated virtualized host.
pub struct Host {
    now: SimTime,
    cpu: Cpu,
    sched: Box<dyn Scheduler>,
    cpufreq: Option<CpuFreq>,
    vms: Vec<Vm>,
    stats: HostStats,
    quantum: SimDuration,
    acct_period: SimDuration,
    gov_period: SimDuration,
    sample_period: SimDuration,
    next_acct: SimTime,
    next_gov: SimTime,
    next_sample: SimTime,
    idle_fast_path: bool,
    // Tracing is opt-in: `None` (the default) keeps the hot path to a
    // single branch per site, pinned by the `trace_overhead` bench.
    tracer: Option<Box<Tracer>>,
    // Interned tracer name id per VM, indexed by `VmId` — a dense
    // sidecar so the hot pick-record path reads 4 bytes instead of
    // paging in the whole `Vm` struct. Populated while a tracer is
    // installed, empty otherwise.
    trace_ids: Vec<trace::NameId>,
    last_pick: Option<VmId>,
    // Reusable runnable-scan buffer: `advance_one_slice` runs a few
    // hundred thousand times per simulated fleet-minute, so the
    // per-slice `Vec<VmId>` collect was a heap allocation on the
    // hottest path in the workspace. Capacity is retained across
    // slices; contents are rebuilt each slice.
    runnable_scratch: Vec<VmId>,
}

impl Host {
    /// Adds a VM with its workload; returns its id.
    pub fn add_vm(&mut self, config: VmConfig, work: Box<dyn WorkSource>) -> VmId {
        let id = VmId(self.vms.len());
        self.sched.on_vm_added(id, &config);
        self.stats.register_vm(&config.name);
        let vm = Vm::new(id, config, work);
        if let Some(t) = self.tracer.as_mut() {
            self.trace_ids.push(t.intern(&vm.name_tag));
        }
        self.vms.push(vm);
        id
    }

    /// The current simulated instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The simulated processor.
    #[must_use]
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The statistics engine (loads, snapshots, energy).
    #[must_use]
    pub fn stats(&self) -> &HostStats {
        &self.stats
    }

    /// The scheduler's name ("credit", "sedf", "pas").
    #[must_use]
    pub fn scheduler_name(&self) -> &'static str {
        self.sched.name()
    }

    /// The machine's capacity at maximum frequency, in mega-cycles per
    /// second — the reference for "a VM with credit c demands
    /// `c · fmax_mcps`".
    #[must_use]
    pub fn fmax_mcps(&self) -> f64 {
        self.cpu.pstates().max().effective_mcps()
    }

    /// Immutable access to a VM.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    #[must_use]
    pub fn vm(&self, id: VmId) -> &Vm {
        &self.vms[id.0]
    }

    /// The scheduler's current cap for a VM (percent of wall time).
    #[must_use]
    pub fn effective_cap_pct(&self, id: VmId) -> Option<f64> {
        self.sched.effective_cap(id).map(|c| c * 100.0)
    }

    /// Number of VMs on this host.
    #[must_use]
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Externally overrides a VM's cap (fraction of wall time; `None`
    /// = uncapped). Returns `false` if the scheduler does not support
    /// external cap changes. This is the control surface the
    /// user-level PAS controllers of Section 4.1 use.
    pub fn set_vm_cap(&mut self, id: VmId, cap: Option<f64>) -> bool {
        self.sched.set_cap_external(id, cap)
    }

    /// Directly sets the processor P-state (the `userspace` governor
    /// path used by the user-level full controller).
    ///
    /// # Errors
    ///
    /// Returns [`cpumodel::CpuError`] for an out-of-range index.
    pub fn set_pstate(&mut self, idx: cpumodel::PStateIdx) -> Result<(), cpumodel::CpuError> {
        self.cpu.set_pstate(idx)
    }

    /// Reads and resets the external measurement window: `(load_pct,
    /// absolute_pct)` accumulated since the previous call.
    pub fn take_external_load(&mut self) -> (f64, f64) {
        self.stats.take_ext_window(self.now)
    }

    /// Retires a VM: its workload is replaced by [`crate::work::Idle`]
    /// and any queued demand is discarded, so it never runs again. The
    /// id stays valid (statistics are preserved); scheduler-side state
    /// is inert since the VM is never runnable.
    ///
    /// This models a guest shutdown in churn scenarios; Xen would
    /// additionally reclaim memory, which this CPU-focused model does
    /// not track per-host.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn retire_vm(&mut self, id: VmId) {
        let vm = &mut self.vms[id.0];
        vm.work = Box::new(crate::work::Idle);
        vm.backlog_mcycles = 0.0;
    }

    /// Extracts a VM for live migration: the workload and any queued
    /// backlog move out with the configuration, and the local slot is
    /// retired (replaced by [`crate::work::Idle`], never runnable
    /// again) so existing [`VmId`]s stay valid. Feed the returned
    /// [`MigratedVm`] to [`Host::admit_vm`] on the destination host.
    ///
    /// Statistics accumulated so far stay on the source host — exactly
    /// like a real migration, where the destination starts with fresh
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn extract_vm(&mut self, id: VmId) -> MigratedVm {
        let vm = &mut self.vms[id.0];
        let work = std::mem::replace(&mut vm.work, Box::new(crate::work::Idle));
        let backlog_mcycles = std::mem::replace(&mut vm.backlog_mcycles, 0.0);
        MigratedVm {
            config: vm.config.clone(),
            work,
            backlog_mcycles,
        }
    }

    /// Re-admits a migrated VM (the counterpart of
    /// [`Host::extract_vm`]): registers it with the scheduler and
    /// restores the in-flight backlog it carried over. Returns the
    /// VM's id *on this host*.
    pub fn admit_vm(&mut self, migrated: MigratedVm) -> VmId {
        let id = self.add_vm(migrated.config, migrated.work);
        self.vms[id.0].backlog_mcycles = migrated.backlog_mcycles;
        id
    }

    /// The QoS summary a VM's workload tracks, if any.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    #[must_use]
    pub fn vm_qos(&self, id: VmId) -> Option<crate::work::QosSummary> {
        self.vms[id.0].work.qos_summary()
    }

    /// Installs a simulation-event tracer: from here on, scheduler
    /// pick changes, frequency transitions, cap rewrites and VM
    /// completions are recorded into its bounded ring. Also switches
    /// the scheduler's own event recording on. Replaces any previous
    /// tracer.
    ///
    /// Events are a pure function of simulation state, so a traced
    /// run records the identical stream regardless of worker threads
    /// or shard counts — and tracing never changes the simulation
    /// itself.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        let mut tracer = tracer;
        self.trace_ids = self
            .vms
            .iter()
            .map(|vm| tracer.intern(&vm.name_tag))
            .collect();
        self.sched.set_event_recording(true);
        self.last_pick = None;
        self.tracer = Some(Box::new(tracer));
    }

    /// Removes the tracer (switching scheduler event recording back
    /// off) and returns it with everything recorded so far.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.sched.set_event_recording(false);
        self.trace_ids.clear();
        self.tracer.take().map(|t| *t)
    }

    /// Whether a tracer is currently installed.
    #[must_use]
    pub fn is_tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Runs the simulation for `duration`.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.now + duration;
        self.run_until(end);
    }

    /// `true` when no VM can ever execute work again: none is runnable
    /// and every demand source is exhausted (see
    /// [`WorkSource::demand_exhausted`]). Quiescence is absorbing —
    /// only [`Host::add_vm`] / [`Host::admit_vm`] can end it.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.vms
            .iter()
            .all(|vm| !vm.is_runnable() && vm.work.demand_exhausted())
    }

    /// Runs the simulation until the absolute instant `t_end`.
    pub fn run_until(&mut self, t_end: SimTime) {
        while self.now < t_end {
            self.handle_boundaries();
            let boundary = self.next_boundary(t_end);
            // A real assert, not a debug_assert: a non-advancing
            // boundary (a zero-length period, say) would otherwise be
            // an infinite loop in exactly the --release builds the
            // benchmarks run.
            assert!(boundary > self.now, "boundary must advance");
            if self.idle_fast_path && self.is_quiescent() {
                // Idle-skip fast path: a quiescent host produces no VM
                // activity before the next boundary, so the per-slice
                // machinery (runnable scan, scheduler pick, per-VM
                // refill) is all no-ops. The only observable effect of
                // the gap is idle energy accounting — and the exact
                // path covers an empty gap with a single slice, so one
                // `account` call here is bit-identical, not just
                // approximately equal. Boundaries (accounting,
                // governor, snapshots) still fire one by one above.
                self.cpu.account(0.0, boundary - self.now);
                self.now = boundary;
            } else {
                self.advance_one_slice(boundary);
            }
        }
        self.handle_boundaries();
        self.stats.set_elapsed(self.now);
    }

    /// Runs until the given VM's workload reports completion, up to
    /// `limit`. Returns the completion instant if reached.
    ///
    /// Completion is detected at *slice* granularity: a slice ends
    /// exactly when the backlog drains, so the returned instant is the
    /// true completion time, not rounded up to the next accounting
    /// boundary. The host stops at that instant.
    pub fn run_until_vm_finished(&mut self, id: VmId, limit: SimTime) -> Option<SimTime> {
        loop {
            if self.vms[id.0].work.is_finished() && !self.vms[id.0].is_runnable() {
                self.handle_boundaries();
                self.stats.set_elapsed(self.now);
                return Some(self.now);
            }
            if self.now >= limit {
                self.handle_boundaries();
                self.stats.set_elapsed(self.now);
                return None;
            }
            self.handle_boundaries();
            let boundary = self.next_boundary(limit);
            assert!(boundary > self.now, "boundary must advance");
            self.advance_one_slice(boundary);
        }
    }

    fn next_boundary(&self, t_end: SimTime) -> SimTime {
        let mut b = t_end.min(self.next_acct).min(self.next_sample);
        if self.cpufreq.is_some() {
            b = b.min(self.next_gov);
        }
        b
    }

    fn handle_boundaries(&mut self) {
        if self.now >= self.next_acct {
            let prev_pstate = self.tracer.as_ref().map(|_| self.cpu.pstate());
            let (load, abs) = self.stats.take_acct_window(self.now);
            let mut ctx = SchedCtx {
                now: self.now,
                cpu: &mut self.cpu,
                measured_load_pct: load,
                measured_absolute_pct: abs,
            };
            self.sched.on_accounting(&mut ctx);
            if let Some(prev) = prev_pstate {
                self.note_freq_change(prev, FreqCause::Scheduler);
                self.drain_sched_events();
            }
            self.next_acct += self.acct_period;
        }
        if self.cpufreq.is_some() && self.now >= self.next_gov {
            let prev_pstate = self.tracer.as_ref().map(|_| self.cpu.pstate());
            let load = self.stats.take_gov_window(self.now);
            if let Some(cpufreq) = self.cpufreq.as_mut() {
                cpufreq.sample(&mut self.cpu, self.now, load);
            }
            if let Some(prev) = prev_pstate {
                self.note_freq_change(prev, FreqCause::Governor);
            }
            self.next_gov += self.gov_period;
        }
        if self.now >= self.next_sample {
            let caps: Vec<Option<f64>> = (0..self.vms.len())
                .map(|i| self.sched.effective_cap(VmId(i)))
                .collect();
            let backlogs: Vec<f64> = self.vms.iter().map(|v| v.backlog_mcycles).collect();
            self.stats.set_elapsed(self.now);
            self.stats
                .take_snapshot(self.now, &self.cpu, &caps, &backlogs);
            self.next_sample += self.sample_period;
        }
    }

    /// Records a `freq_change` event if the P-state moved away from
    /// `prev`. Only called on the traced path.
    fn note_freq_change(&mut self, prev: cpumodel::PStateIdx, cause: FreqCause) {
        let cur = self.cpu.pstate();
        if cur == prev {
            return;
        }
        let table = self.cpu.pstates();
        let from_mhz = table.state(prev).frequency.as_mhz();
        let to_mhz = table.state(cur).frequency.as_mhz();
        let at_s = self.now.as_secs_f64();
        if let Some(t) = self.tracer.as_mut() {
            t.record(
                at_s,
                EventKind::FreqChange {
                    cause,
                    from_mhz,
                    to_mhz,
                },
            );
        }
    }

    /// Drains the scheduler's recorded cap rewrites into the tracer.
    /// Only called on the traced path.
    fn drain_sched_events(&mut self) {
        let events = self.sched.take_sched_events();
        if events.is_empty() {
            return;
        }
        let at_s = self.now.as_secs_f64();
        if let Some(t) = self.tracer.as_mut() {
            for e in events {
                t.record_cap(at_s, self.trace_ids[e.vm.0], e.cap_pct);
            }
        }
    }

    fn advance_one_slice(&mut self, boundary: SimTime) {
        let horizon = boundary - self.now;
        let mut runnable = std::mem::take(&mut self.runnable_scratch);
        runnable.clear();
        runnable.extend(
            self.vms
                .iter()
                .filter(|vm| vm.is_runnable())
                .map(|vm| vm.id),
        );
        let pick = self.sched.pick_next(self.now, &runnable);
        if self.tracer.is_some() && pick != self.last_pick {
            // A pick *change* is the event; re-picking the same VM
            // slice after slice is not. `preempt` marks the case where
            // the displaced VM was still runnable — it lost the CPU
            // rather than going idle.
            let preempt = match (self.last_pick, pick) {
                (Some(prev), Some(_)) => runnable.contains(&prev),
                _ => false,
            };
            let vm = pick.map(|v| self.trace_ids[v.0]);
            let at_s = self.now.as_secs_f64();
            if let Some(t) = self.tracer.as_mut() {
                t.record_pick(at_s, vm, preempt);
            }
            self.last_pick = pick;
        }
        self.runnable_scratch = runnable;

        let slice = match pick {
            None => horizon,
            Some(vm) => {
                let cap_slice = self.sched.max_slice(vm, self.now);
                let mcps = self.cpu.pstates().state(self.cpu.pstate()).effective_mcps();
                let drain_secs = self.vms[vm.0].backlog_seconds_at(mcps);
                let drain = if drain_secs.is_finite() {
                    SimDuration::from_secs_f64(drain_secs.min(horizon.as_secs_f64()))
                } else {
                    horizon
                };
                let mut s = horizon.min(self.quantum).min(cap_slice).min(drain);
                if s.is_zero() {
                    // Sub-microsecond residue (cap or backlog): round up
                    // to the clock resolution so time always advances.
                    s = SimDuration::from_micros(1).min(horizon);
                }
                s
            }
        };
        debug_assert!(!slice.is_zero());

        let slice_end = self.now + slice;
        // Demand arrives continuously during the slice.
        for vm in &mut self.vms {
            vm.refill(slice_end, slice);
        }

        match pick {
            Some(vm) => {
                let capacity = self.cpu.work_capacity(slice);
                let done = self.vms[vm.0].execute(capacity, slice_end);
                let busy_frac = if capacity > 0.0 {
                    (done / capacity).min(1.0)
                } else {
                    0.0
                };
                let busy_secs = slice.as_secs_f64() * busy_frac;
                let busy = SimDuration::from_secs_f64(busy_secs);
                self.sched.charge(vm, busy);
                self.cpu.account(busy_frac, slice);
                let abs_secs = busy_secs * self.cpu.ratio() * self.cpu.cf();
                self.stats.on_slice(Some((vm, busy_secs, abs_secs)));
                if self.tracer.is_some() && done > 0.0 && self.vms[vm.0].is_complete() {
                    let name = self.vms[vm.0].name_tag.clone();
                    let at_s = slice_end.as_secs_f64();
                    if let Some(t) = self.tracer.as_mut() {
                        t.record(at_s, EventKind::VmComplete { vm: name });
                    }
                }
            }
            None => {
                self.cpu.account(0.0, slice);
                self.stats.on_slice(None);
            }
        }
        self.now = slice_end;
    }
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("now", &self.now)
            .field("scheduler", &self.sched.name())
            .field("vms", &self.vms.len())
            .field("pstate", &self.cpu.pstate())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::ConstantDemand;
    use governors::{Performance, StableOndemand};
    use pas_core::Credit;

    fn demand(host: &Host, frac: f64) -> Box<ConstantDemand> {
        Box::new(ConstantDemand::new(frac * host.fmax_mcps()))
    }

    #[test]
    fn cap_enforced_under_credit() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        let d = demand(&host, 0.5);
        host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d);
        host.run_for(SimDuration::from_secs(30));
        let busy = host.stats().vm_busy_fraction(VmId(0));
        assert!((busy - 0.20).abs() < 0.01, "busy {busy} != 20%");
    }

    #[test]
    fn idle_host_consumes_no_cpu() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        host.add_vm(
            VmConfig::new("idle", Credit::percent(50.0)),
            Box::new(crate::work::Idle),
        );
        host.run_for(SimDuration::from_secs(10));
        assert_eq!(host.stats().global_busy_fraction(), 0.0);
        assert_eq!(host.now(), SimTime::from_secs(10));
    }

    #[test]
    fn two_vms_respect_their_caps() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        let d1 = demand(&host, 1.0);
        let d2 = demand(&host, 1.0);
        host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d1);
        host.add_vm(VmConfig::new("v70", Credit::percent(70.0)), d2);
        host.run_for(SimDuration::from_secs(30));
        let b0 = host.stats().vm_busy_fraction(VmId(0));
        let b1 = host.stats().vm_busy_fraction(VmId(1));
        assert!((b0 - 0.20).abs() < 0.01, "v20 busy {b0}");
        assert!((b1 - 0.70).abs() < 0.01, "v70 busy {b1}");
    }

    #[test]
    fn sedf_redistributes_idle_time() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Sedf { extra: true }).build();
        let d = demand(&host, 1.0);
        host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d);
        host.add_vm(
            VmConfig::new("v70", Credit::percent(70.0)),
            Box::new(crate::work::Idle),
        );
        host.run_for(SimDuration::from_secs(30));
        let b0 = host.stats().vm_busy_fraction(VmId(0));
        assert!(b0 > 0.9, "work conserving: v20 got {b0}");
    }

    #[test]
    fn governor_scales_down_on_low_load() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit)
            .with_governor(Box::new(StableOndemand::new()))
            .build();
        let d = demand(&host, 0.20);
        host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d);
        host.run_for(SimDuration::from_secs(60));
        assert_eq!(host.cpu().pstate(), host.cpu().pstates().min_idx());
    }

    #[test]
    fn performance_governor_stays_at_max() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit)
            .with_governor(Box::new(Performance))
            .build();
        let d = demand(&host, 0.05);
        host.add_vm(VmConfig::new("v", Credit::percent(20.0)), d);
        host.run_for(SimDuration::from_secs(20));
        assert_eq!(host.cpu().pstate(), host.cpu().pstates().max_idx());
    }

    #[test]
    fn pas_self_manages_dvfs() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Pas).build();
        let d = demand(&host, 1.0); // thrashing V20
        host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d);
        host.add_vm(
            VmConfig::new("v70", Credit::percent(70.0)),
            Box::new(crate::work::Idle),
        );
        host.run_for(SimDuration::from_secs(60));
        // Host underloaded → PAS parks the frequency at the bottom...
        assert_eq!(host.cpu().pstate(), host.cpu().pstates().min_idx());
        // ...while preserving V20's absolute capacity at ~20%.
        let abs = host.stats().vm_absolute_fraction(VmId(0));
        assert!((abs - 0.20).abs() < 0.02, "absolute {abs} != 20%");
        // And its cap was raised to ~33% (Figure 9).
        let cap = host.effective_cap_pct(VmId(0)).unwrap();
        assert!((cap - 33.0).abs() < 2.0, "cap {cap}");
    }

    #[test]
    #[should_panic(expected = "PAS manages DVFS itself")]
    fn pas_plus_governor_rejected() {
        let _ =
            HostConfig::optiplex_defaults(SchedulerKind::Pas).with_governor(Box::new(Performance));
    }

    #[test]
    fn snapshots_are_emitted() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit)
            .with_sample_period(SimDuration::from_secs(5))
            .build();
        let d = demand(&host, 0.3);
        host.add_vm(VmConfig::new("v", Credit::percent(30.0)), d);
        host.run_for(SimDuration::from_secs(30));
        let n = host.stats().snapshots().len();
        assert!((5..=7).contains(&n), "snapshots {n}");
    }

    #[test]
    fn extract_then_admit_preserves_backlog_and_retires_source() {
        let mut src = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        let total = 5.0 * src.fmax_mcps();
        let id = src.add_vm(
            VmConfig::new("mover", Credit::percent(50.0)),
            Box::new(crate::work::test_batch(total)),
        );
        src.run_for(SimDuration::from_secs(2));
        let moved = src.extract_vm(id);
        assert!(moved.backlog_mcycles >= 0.0);
        assert_eq!(moved.config.name, "mover");

        // The source slot is inert: more simulated time does no work.
        let done_before = src.vm(id).total_done_mcycles;
        src.run_for(SimDuration::from_secs(2));
        assert_eq!(src.vm(id).total_done_mcycles, done_before);

        // The destination finishes the batch exactly.
        let mut dst = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        let new_id = dst.admit_vm(moved);
        let done = dst.run_until_vm_finished(new_id, SimTime::from_secs(100));
        assert!(done.is_some(), "migrated batch completes on destination");
        let total_done = src.vm(id).total_done_mcycles + dst.vm(new_id).total_done_mcycles;
        assert!(
            (total_done - total).abs() < 1e-6,
            "no work lost in migration: {total_done} vs {total}"
        );
    }

    #[test]
    fn run_until_vm_finished_reports_completion() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        // A batch job of exactly 10 seconds of fmax work in a 50% VM:
        // should take ~20 s of wall time.
        let total = 10.0 * host.fmax_mcps();
        host.add_vm(
            VmConfig::new("batch", Credit::percent(50.0)),
            Box::new(crate::work::test_batch(total)),
        );
        let done = host.run_until_vm_finished(VmId(0), SimTime::from_secs(100));
        let t = done.expect("finished").as_secs_f64();
        assert!((t - 20.0).abs() < 0.5, "finished at {t}");
    }

    #[test]
    fn completion_instant_is_slice_exact_not_acct_quantized() {
        // 0.5 s of fmax work in a 50% VM: 15 ms of service per 30 ms
        // accounting period, starting one period late (credit arrives
        // at the first accounting boundary), so the drain finishes
        // mid-period at t = 0.03 + 33 × 0.03 + 0.005 = 1.025 s —
        // strictly between the 1.02 and 1.05 boundaries. The
        // acct-granularity poll this regression pins down used to
        // round completion up to the next boundary.
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        let total = 0.5 * host.fmax_mcps();
        host.add_vm(
            VmConfig::new("batch", Credit::percent(50.0)),
            Box::new(crate::work::test_batch(total)),
        );
        let done = host.run_until_vm_finished(VmId(0), SimTime::from_secs(10));
        let t = done.expect("finished").as_secs_f64();
        assert!(
            (t - 1.025).abs() < 1e-4,
            "exact completion instant, got {t}"
        );
        assert_eq!(host.now().as_secs_f64(), t, "host stops at completion");
    }

    #[test]
    fn traced_pas_host_records_picks_caps_freq_and_completion() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Pas).build();
        let total = 2.0 * host.fmax_mcps();
        host.add_vm(
            VmConfig::new("batch", Credit::percent(20.0)),
            Box::new(crate::work::test_batch(total)),
        );
        host.add_vm(
            VmConfig::new("lazy", Credit::percent(70.0)),
            Box::new(crate::work::Idle),
        );
        host.set_tracer(trace::Tracer::new(1, trace::DEFAULT_CAPACITY).with_host(0));
        assert!(host.is_tracing());
        host.run_for(SimDuration::from_secs(30));
        let tracer = host.take_tracer().expect("tracer installed");
        assert!(!host.is_tracing());
        let trace = trace::Trace::merge(vec![tracer]);
        let kind_count = |name: &str| {
            trace
                .events()
                .iter()
                .filter(|e| e.kind.name() == name)
                .count()
        };
        assert!(kind_count("sched_pick") >= 2, "batch runs, then idles");
        assert!(kind_count("cap_change") >= 2, "PAS rewrote caps");
        assert!(
            kind_count("freq_change") >= 1,
            "underload drops the frequency"
        );
        assert_eq!(kind_count("vm_complete"), 1, "the batch finished once");
        // Host tag flows through to every event.
        assert!(trace.events().iter().all(|e| e.host == Some(0)));
        // Events are in simulation-time order.
        let times: Vec<f64> = trace.events().iter().map(|e| e.at_s).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn tracing_never_changes_the_simulation() {
        let run = |traced: bool| {
            let mut host = HostConfig::optiplex_defaults(SchedulerKind::Pas).build();
            let d = demand(&host, 1.0);
            host.add_vm(VmConfig::new("v20", Credit::percent(20.0)), d);
            host.add_vm(
                VmConfig::new("v70", Credit::percent(70.0)),
                Box::new(crate::work::Idle),
            );
            if traced {
                host.set_tracer(trace::Tracer::new(1, 64));
            }
            host.run_for(SimDuration::from_secs(30));
            (
                host.cpu().energy().joules().to_bits(),
                host.stats().global_busy_fraction().to_bits(),
                host.cpu().pstate(),
            )
        };
        assert_eq!(run(true), run(false), "tracing must be observation-only");
    }

    /// The idle-skip fast path must be *bit-identical* to the
    /// slice-exact path, not merely close: energy accounting, loads
    /// and snapshots all agree to the last bit on a host that turns
    /// quiescent mid-run.
    #[test]
    fn idle_fast_path_is_bit_exact() {
        let run = |fast: bool| {
            let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit)
                .with_governor(Box::new(StableOndemand::new()))
                .with_idle_fast_path(fast)
                .build();
            let total = 5.0 * host.fmax_mcps();
            host.add_vm(
                VmConfig::new("batch", Credit::percent(50.0)),
                Box::new(crate::work::test_batch(total)),
            );
            host.add_vm(
                VmConfig::new("spare", Credit::percent(20.0)),
                Box::new(crate::work::Idle),
            );
            // ~10 s busy, then ~50 s quiescent.
            host.run_for(SimDuration::from_secs(60));
            host
        };
        let fast = run(true);
        let exact = run(false);
        assert!(fast.is_quiescent() && exact.is_quiescent());
        assert_eq!(
            fast.cpu().energy().joules().to_bits(),
            exact.cpu().energy().joules().to_bits(),
            "energy must agree bit-for-bit"
        );
        assert_eq!(
            fast.stats().global_busy_fraction().to_bits(),
            exact.stats().global_busy_fraction().to_bits()
        );
        assert_eq!(fast.stats().snapshots(), exact.stats().snapshots());
    }
}
