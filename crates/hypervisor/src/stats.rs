//! Load accounting and periodic snapshots.
//!
//! The host integrates, per scheduling slice, each VM's busy time and
//! its *absolute* busy time (`busy · ratio · cf`, i.e. the equivalent
//! busy time at maximum frequency). Three rolling windows feed the
//! three consumers:
//!
//! * the **accounting window** feeds the scheduler tick (PAS),
//! * the **governor window** feeds the DVFS governor,
//! * the **sample window** feeds the figure snapshots (the paper
//!   plots "VM global load" and "Absolute load" exactly as defined in
//!   Section 4).

use cpumodel::{Cpu, PStateIdx};
use simkernel::SimTime;

use crate::vm::VmId;

/// One rolling accumulation window.
#[derive(Debug, Clone, Default)]
struct Window {
    start_secs: f64,
    busy_secs: f64,
    abs_busy_secs: f64,
}

impl Window {
    fn span(&self, now_secs: f64) -> f64 {
        (now_secs - self.start_secs).max(0.0)
    }

    fn load_pct(&self, now_secs: f64) -> f64 {
        let span = self.span(now_secs);
        if span <= 0.0 {
            0.0
        } else {
            100.0 * self.busy_secs / span
        }
    }

    fn absolute_pct(&self, now_secs: f64) -> f64 {
        let span = self.span(now_secs);
        if span <= 0.0 {
            0.0
        } else {
            100.0 * self.abs_busy_secs / span
        }
    }

    fn reset(&mut self, now_secs: f64) {
        self.start_secs = now_secs;
        self.busy_secs = 0.0;
        self.abs_busy_secs = 0.0;
    }
}

/// Per-VM state in one periodic snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSnap {
    /// The VM.
    pub id: VmId,
    /// The VM's contribution to the processor load over the sample
    /// window, in percent (the paper's *VM global load*).
    pub global_load_pct: f64,
    /// The same contribution at maximum-frequency equivalence (the
    /// paper's *absolute load* attributed to this VM).
    pub absolute_load_pct: f64,
    /// The scheduler's current cap for this VM, percent of wall time
    /// (`None` = uncapped). Under PAS this is the compensated credit.
    pub cap_pct: Option<f64>,
    /// Pending demand at snapshot time.
    pub backlog_mcycles: f64,
}

/// One periodic snapshot — a point on every curve of Figures 2–10.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Snapshot time in seconds.
    pub t_secs: f64,
    /// Processor frequency in MHz at snapshot time.
    pub freq_mhz: u32,
    /// Processor P-state at snapshot time.
    pub pstate: PStateIdx,
    /// Global processor load over the sample window, percent.
    pub global_load_pct: f64,
    /// Absolute (fmax-equivalent) load over the sample window,
    /// percent.
    pub absolute_load_pct: f64,
    /// Cumulative energy in joules.
    pub energy_j: f64,
    /// Per-VM breakdown.
    pub vms: Vec<VmSnap>,
}

/// The host's statistics engine.
#[derive(Debug, Default)]
pub struct HostStats {
    vm_names: Vec<String>,
    acct: Window,
    gov: Window,
    ext: Window,
    sample: Window,
    total: Window,
    per_vm_sample: Vec<(f64, f64)>,
    per_vm_total: Vec<(f64, f64)>,
    snapshots: Vec<Snapshot>,
    elapsed_secs: f64,
}

impl HostStats {
    /// An empty stats engine.
    #[must_use]
    pub fn new() -> Self {
        HostStats::default()
    }

    /// Registers a VM (called by the host in id order).
    pub fn register_vm(&mut self, name: &str) {
        self.vm_names.push(name.to_owned());
        self.per_vm_sample.push((0.0, 0.0));
        self.per_vm_total.push((0.0, 0.0));
    }

    /// Accounts one scheduling slice ending at `now`.
    ///
    /// `running` carries `(vm, busy_secs, abs_busy_secs)` when a VM
    /// executed during the slice.
    pub fn on_slice(&mut self, running: Option<(VmId, f64, f64)>) {
        if let Some((vm, busy, abs)) = running {
            self.acct.busy_secs += busy;
            self.acct.abs_busy_secs += abs;
            self.gov.busy_secs += busy;
            self.gov.abs_busy_secs += abs;
            self.ext.busy_secs += busy;
            self.ext.abs_busy_secs += abs;
            self.sample.busy_secs += busy;
            self.sample.abs_busy_secs += abs;
            self.total.busy_secs += busy;
            self.total.abs_busy_secs += abs;
            let (b, a) = &mut self.per_vm_sample[vm.0];
            *b += busy;
            *a += abs;
            let (tb, ta) = &mut self.per_vm_total[vm.0];
            *tb += busy;
            *ta += abs;
        }
    }

    /// Reads and resets the accounting window; returns `(load_pct,
    /// absolute_pct)`.
    pub fn take_acct_window(&mut self, now: SimTime) -> (f64, f64) {
        let s = now.as_secs_f64();
        let out = (self.acct.load_pct(s), self.acct.absolute_pct(s));
        self.acct.reset(s);
        out
    }

    /// Reads and resets the *external* window (used by user-level
    /// controllers that poll the host); returns `(load_pct,
    /// absolute_pct)` since the previous call.
    pub fn take_ext_window(&mut self, now: SimTime) -> (f64, f64) {
        let s = now.as_secs_f64();
        let out = (self.ext.load_pct(s), self.ext.absolute_pct(s));
        self.ext.reset(s);
        out
    }

    /// Reads and resets the governor window; returns the load percent.
    pub fn take_gov_window(&mut self, now: SimTime) -> f64 {
        let s = now.as_secs_f64();
        let out = self.gov.load_pct(s);
        self.gov.reset(s);
        out
    }

    /// Emits a snapshot for the elapsed sample window and resets it.
    pub fn take_snapshot(
        &mut self,
        now: SimTime,
        cpu: &Cpu,
        caps: &[Option<f64>],
        backlogs: &[f64],
    ) {
        let s = now.as_secs_f64();
        let span = self.sample.span(s);
        let vms = (0..self.vm_names.len())
            .map(|i| {
                let (busy, abs) = self.per_vm_sample[i];
                VmSnap {
                    id: VmId(i),
                    global_load_pct: if span > 0.0 { 100.0 * busy / span } else { 0.0 },
                    absolute_load_pct: if span > 0.0 { 100.0 * abs / span } else { 0.0 },
                    cap_pct: caps.get(i).copied().flatten().map(|c| c * 100.0),
                    backlog_mcycles: backlogs.get(i).copied().unwrap_or(0.0),
                }
            })
            .collect();
        self.snapshots.push(Snapshot {
            t_secs: s,
            freq_mhz: cpu.pstates().state(cpu.pstate()).frequency.as_mhz(),
            pstate: cpu.pstate(),
            global_load_pct: self.sample.load_pct(s),
            absolute_load_pct: self.sample.absolute_pct(s),
            energy_j: cpu.energy().joules(),
            vms,
        });
        self.sample.reset(s);
        for acc in &mut self.per_vm_sample {
            *acc = (0.0, 0.0);
        }
    }

    /// All snapshots taken so far.
    #[must_use]
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// A VM's busy fraction over the whole run (wall-time share).
    ///
    /// # Panics
    ///
    /// Panics if the VM was never registered.
    #[must_use]
    pub fn vm_busy_fraction(&self, vm: VmId) -> f64 {
        let span = self.total_span_hint();
        if span <= 0.0 {
            0.0
        } else {
            self.per_vm_total[vm.0].0 / span
        }
    }

    /// A VM's absolute-capacity fraction over the whole run.
    ///
    /// # Panics
    ///
    /// Panics if the VM was never registered.
    #[must_use]
    pub fn vm_absolute_fraction(&self, vm: VmId) -> f64 {
        let span = self.total_span_hint();
        if span <= 0.0 {
            0.0
        } else {
            self.per_vm_total[vm.0].1 / span
        }
    }

    /// Global busy fraction over the whole run.
    #[must_use]
    pub fn global_busy_fraction(&self) -> f64 {
        let span = self.total_span_hint();
        if span <= 0.0 {
            0.0
        } else {
            self.total.busy_secs / span
        }
    }

    /// Names of registered VMs, in id order.
    #[must_use]
    pub fn vm_names(&self) -> &[String] {
        &self.vm_names
    }

    /// Tells the stats engine how far the clock has advanced (the
    /// total window never resets, so the host reports the horizon).
    pub fn set_elapsed(&mut self, now: SimTime) {
        self.elapsed_secs = now.as_secs_f64();
    }

    fn total_span_hint(&self) -> f64 {
        self.elapsed_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpumodel::machines;

    #[test]
    fn windows_compute_loads() {
        let mut st = HostStats::new();
        st.register_vm("v20");
        // 2 s of slices, VM busy 0.4 s, at ratio·cf = 0.6.
        st.on_slice(Some((VmId(0), 0.4, 0.24)));
        st.set_elapsed(SimTime::from_secs(2));
        let (load, abs) = st.take_acct_window(SimTime::from_secs(2));
        assert!((load - 20.0).abs() < 1e-9);
        assert!((abs - 12.0).abs() < 1e-9);
        // Window reset: next read over the following second is zero.
        st.set_elapsed(SimTime::from_secs(3));
        let (load2, _) = st.take_acct_window(SimTime::from_secs(3));
        assert_eq!(load2, 0.0);
    }

    #[test]
    fn snapshot_breaks_down_per_vm() {
        let mut st = HostStats::new();
        st.register_vm("v20");
        st.register_vm("v70");
        st.on_slice(Some((VmId(0), 1.0, 0.6)));
        st.on_slice(Some((VmId(1), 2.0, 1.2)));
        st.set_elapsed(SimTime::from_secs(10));
        let cpu = machines::optiplex_755().build_cpu();
        st.take_snapshot(
            SimTime::from_secs(10),
            &cpu,
            &[Some(0.2), None],
            &[5.0, 0.0],
        );
        let snap = &st.snapshots()[0];
        assert!((snap.vms[0].global_load_pct - 10.0).abs() < 1e-9);
        assert!((snap.vms[1].global_load_pct - 20.0).abs() < 1e-9);
        assert!((snap.global_load_pct - 30.0).abs() < 1e-9);
        assert_eq!(snap.vms[0].cap_pct, Some(20.0));
        assert_eq!(snap.vms[1].cap_pct, None);
        assert_eq!(snap.freq_mhz, 2667);
        assert!((snap.vms[0].backlog_mcycles - 5.0).abs() < 1e-12);
    }

    #[test]
    fn totals_accumulate_across_windows() {
        let mut st = HostStats::new();
        st.register_vm("v");
        st.on_slice(Some((VmId(0), 1.0, 1.0)));
        st.take_acct_window(SimTime::from_secs(1));
        st.on_slice(Some((VmId(0), 1.0, 1.0)));
        st.set_elapsed(SimTime::from_secs(10));
        assert!((st.vm_busy_fraction(VmId(0)) - 0.2).abs() < 1e-9);
        assert!((st.global_busy_fraction() - 0.2).abs() < 1e-9);
        assert!((st.vm_absolute_fraction(VmId(0)) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_report_zero() {
        let st = HostStats::new();
        assert_eq!(st.global_busy_fraction(), 0.0);
        assert!(st.snapshots().is_empty());
    }
}
