//! Virtual machines: identity, configuration and runtime state.

use std::fmt;

use pas_core::Credit;
use simkernel::{SimDuration, SimTime};

use crate::work::WorkSource;

/// Identifies a VM on its host (dense index, assigned by the host in
/// creation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VmId(pub usize);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Scheduling priority. The paper configures Dom0 "with the highest
/// priority in the VM scheduler" and gives customer VMs equal
/// priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Customer VM.
    #[default]
    Normal,
    /// Management domain; always scheduled first when runnable.
    Dom0,
}

/// SEDF parameters: the `(s, p, b)` triplet of Section 3.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SedfParams {
    /// Guaranteed slice per period.
    pub slice: SimDuration,
    /// Period length.
    pub period: SimDuration,
    /// Extra-time flag: eligible for unused CPU slices.
    pub extra: bool,
}

impl SedfParams {
    /// Derives the triplet from a credit: `s = credit · p`, the
    /// mapping the paper uses ("the credit allocated to a VM can be
    /// defined with the s and p parameters").
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn from_credit(credit: Credit, period: SimDuration, extra: bool) -> Self {
        assert!(!period.is_zero(), "SEDF period must be non-zero");
        SedfParams {
            slice: period.mul_f64(credit.as_fraction()),
            period,
            extra,
        }
    }
}

/// Static configuration of a VM.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Human-readable name ("v20", "v70", "dom0", …).
    pub name: String,
    /// The booked credit: a share of the processor **at maximum
    /// frequency** (the SLA of Section 3.1). [`Credit::ZERO`] means
    /// uncapped (Xen's null-credit special case).
    pub credit: Credit,
    /// Relative weight for proportional sharing under contention.
    /// Defaults to the credit percentage.
    pub weight: u32,
    /// Scheduling priority.
    pub priority: Priority,
    /// SEDF triplet; derived from the credit by the SEDF scheduler if
    /// absent.
    pub sedf: Option<SedfParams>,
}

impl VmConfig {
    /// A customer VM with the given name and credit; weight follows
    /// the credit.
    #[must_use]
    pub fn new(name: impl Into<String>, credit: Credit) -> Self {
        let weight = (credit.as_percent().round() as u32).max(1);
        VmConfig {
            name: name.into(),
            credit,
            weight,
            priority: Priority::Normal,
            sedf: None,
        }
    }

    /// The paper's management domain: 10% credit, highest priority.
    #[must_use]
    pub fn dom0() -> Self {
        let mut cfg = VmConfig::new("dom0", Credit::percent(10.0));
        cfg.priority = Priority::Dom0;
        cfg
    }

    /// Overrides the weight.
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Overrides the SEDF triplet.
    #[must_use]
    pub fn with_sedf(mut self, sedf: SedfParams) -> Self {
        self.sedf = Some(sedf);
        self
    }

    /// Marks this VM as Dom0-priority.
    #[must_use]
    pub fn with_dom0_priority(mut self) -> Self {
        self.priority = Priority::Dom0;
        self
    }
}

/// A VM at run time: its configuration, its workload, and the demand
/// backlog mediating between them.
pub struct Vm {
    /// The VM's id on its host.
    pub id: VmId,
    /// Static configuration.
    pub config: VmConfig,
    /// The workload running inside the guest.
    pub work: Box<dyn WorkSource>,
    /// The config name interned for trace recording: cloning this is
    /// a reference-count bump, so hot scheduling paths can stamp
    /// events without allocating (see [`trace::VmName`]).
    pub name_tag: trace::VmName,
    /// Pending demand in mega-cycles (fmax-equivalent work).
    pub backlog_mcycles: f64,
    /// Total mega-cycles completed.
    pub total_done_mcycles: f64,
}

/// The minimum backlog (mega-cycles) that makes a VM with an *ongoing*
/// workload runnable — roughly one microsecond of work at 3 GHz.
///
/// Real guests block between requests; they do not stay runnable with
/// an infinitesimal residue of fluid demand. Without this floor, a
/// lightly-loaded VM is runnable at every scheduling decision and, in
/// the Credit scheduler's UNDER class, it preempts uncapped (OVER)
/// VMs at microsecond granularity — starving them in a way real Xen
/// never does (there, the light guest blocks and the greedy vCPU
/// soaks the idle time). A VM whose workload has *finished* generating
/// demand runs its remaining backlog regardless, so batch jobs
/// complete exactly.
pub const MIN_RUNNABLE_MCYCLES: f64 = 0.003;

impl Vm {
    /// Creates a VM with an empty backlog.
    #[must_use]
    pub fn new(id: VmId, config: VmConfig, work: Box<dyn WorkSource>) -> Self {
        let name_tag = trace::VmName::from(config.name.as_str());
        Vm {
            id,
            config,
            work,
            name_tag,
            backlog_mcycles: 0.0,
            total_done_mcycles: 0.0,
        }
    }

    /// `true` if the VM has enough pending work to be scheduled (see
    /// [`MIN_RUNNABLE_MCYCLES`]); once the workload has generated all
    /// its demand, any remaining backlog tail counts so batch jobs
    /// complete exactly.
    #[must_use]
    pub fn is_runnable(&self) -> bool {
        if self.work.demand_exhausted() {
            self.backlog_mcycles > 1e-9
        } else {
            self.backlog_mcycles >= MIN_RUNNABLE_MCYCLES
        }
    }

    /// Pulls new demand from the workload for the elapsed span.
    pub fn refill(&mut self, now: SimTime, dt: SimDuration) {
        let generated = self.work.generate(now, dt);
        debug_assert!(generated >= 0.0, "workload generated negative demand");
        self.backlog_mcycles += generated;
        let cap = self.work.backlog_cap_mcycles();
        if self.backlog_mcycles > cap {
            let dropped = self.backlog_mcycles - cap;
            self.work.on_dropped(dropped, now);
            self.backlog_mcycles = cap;
        }
    }

    /// Executes up to `capacity_mcycles` of backlog; returns the work
    /// actually done.
    pub fn execute(&mut self, capacity_mcycles: f64, now: SimTime) -> f64 {
        let done = self.backlog_mcycles.min(capacity_mcycles);
        self.backlog_mcycles -= done;
        self.total_done_mcycles += done;
        if done > 0.0 {
            self.work.on_progress(done, now);
        }
        done
    }

    /// `true` once the VM has nothing left to do, ever: the workload
    /// has finished generating demand and the backlog has drained.
    /// This is the completion edge the tracer reports as
    /// `vm_complete` (batch jobs only; open-ended workloads never
    /// reach it).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.work.is_finished() && !self.is_runnable()
    }

    /// Seconds needed to drain the current backlog at `mcps`
    /// mega-cycles per second (`f64::INFINITY` when `mcps` is zero).
    #[must_use]
    pub fn backlog_seconds_at(&self, mcps: f64) -> f64 {
        if mcps <= 0.0 {
            f64::INFINITY
        } else {
            self.backlog_mcycles / mcps
        }
    }
}

impl fmt::Debug for Vm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm")
            .field("id", &self.id)
            .field("name", &self.config.name)
            .field("credit", &self.config.credit)
            .field("backlog_mcycles", &self.backlog_mcycles)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::ConstantDemand;

    #[test]
    fn config_defaults() {
        let cfg = VmConfig::new("v20", Credit::percent(20.0));
        assert_eq!(cfg.weight, 20);
        assert_eq!(cfg.priority, Priority::Normal);
        assert!(cfg.sedf.is_none());
    }

    #[test]
    fn dom0_has_priority() {
        let cfg = VmConfig::dom0();
        assert_eq!(cfg.priority, Priority::Dom0);
        assert_eq!(cfg.credit, Credit::percent(10.0));
        assert!(Priority::Dom0 > Priority::Normal);
    }

    #[test]
    fn sedf_from_credit() {
        let p = SedfParams::from_credit(Credit::percent(20.0), SimDuration::from_millis(100), true);
        assert_eq!(p.slice, SimDuration::from_millis(20));
        assert!(p.extra);
    }

    #[test]
    fn uncapped_weight_floor() {
        let cfg = VmConfig::new("free", Credit::ZERO);
        assert_eq!(cfg.weight, 1, "weight never zero");
    }

    #[test]
    fn backlog_lifecycle() {
        let mut vm = Vm::new(
            VmId(0),
            VmConfig::new("v", Credit::percent(50.0)),
            Box::new(ConstantDemand::new(1000.0)), // 1000 mcycles/s
        );
        assert!(!vm.is_runnable());
        vm.refill(SimTime::ZERO, SimDuration::from_millis(100));
        assert!((vm.backlog_mcycles - 100.0).abs() < 1e-9);
        assert!(vm.is_runnable());
        let done = vm.execute(40.0, SimTime::ZERO);
        assert!((done - 40.0).abs() < 1e-9);
        assert!((vm.backlog_mcycles - 60.0).abs() < 1e-9);
        let done2 = vm.execute(1000.0, SimTime::ZERO);
        assert!(
            (done2 - 60.0).abs() < 1e-9,
            "cannot execute more than backlog"
        );
        assert!(!vm.is_runnable());
        assert!((vm.total_done_mcycles - 100.0).abs() < 1e-9);
    }

    #[test]
    fn completion_edge_needs_finished_work_and_drained_backlog() {
        let mut vm = Vm::new(
            VmId(0),
            VmConfig::new("batch", Credit::percent(50.0)),
            Box::new(crate::work::test_batch(100.0)),
        );
        assert!(!vm.is_complete(), "nothing released yet");
        vm.refill(SimTime::ZERO, SimDuration::from_secs(1));
        vm.execute(40.0, SimTime::ZERO);
        assert!(!vm.is_complete(), "backlog remains");
        vm.execute(60.0, SimTime::from_secs(1));
        assert!(vm.is_complete(), "work finished and backlog drained");
        // An open-ended workload never completes.
        let mut open = Vm::new(
            VmId(1),
            VmConfig::new("open", Credit::percent(50.0)),
            Box::new(ConstantDemand::new(1000.0)),
        );
        open.refill(SimTime::ZERO, SimDuration::from_millis(10));
        assert!(!open.is_complete());
    }

    #[test]
    fn backlog_seconds() {
        let mut vm = Vm::new(
            VmId(1),
            VmConfig::new("v", Credit::percent(50.0)),
            Box::new(ConstantDemand::new(500.0)),
        );
        vm.refill(SimTime::ZERO, SimDuration::from_secs(1));
        assert!((vm.backlog_seconds_at(1000.0) - 0.5).abs() < 1e-9);
        assert!(vm.backlog_seconds_at(0.0).is_infinite());
    }
}
