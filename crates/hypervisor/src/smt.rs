//! A hyper-threaded virtualized host — the paper's other §7
//! perspective ("hyper-threading"), as a running simulation.
//!
//! Model:
//!
//! * one physical core exposes [`SmtSpec::threads`] logical CPUs that
//!   share its execution resources and its frequency;
//! * each logical CPU runs its own Credit scheduler with pinned
//!   single-vCPU VMs (Xen with SMT presents logical CPUs exactly like
//!   this);
//! * within a quantum, a busy logical CPU delivers
//!   `f · cf · per_thread_factor(busy siblings)` mega-cycles/sec — the
//!   SMT contention penalty of [`cpumodel::smt`];
//! * PAS plans the shared frequency from the core's *aggregate*
//!   delivered absolute load and compensates credits per Equation 4 —
//!   either **naively** (frequency only, the paper's Listing 1.2
//!   verbatim) or **SMT-aware** (additionally dividing by the observed
//!   per-thread [contention factor](SmtSpec::contention_factor)).
//!
//! The experiment built on this host (`experiments::smt`) shows the
//! gap the paper predicts: the verbatim PAS under-delivers booked
//! capacity as soon as siblings contend, and the contention-extended
//! Equation 4 closes it.

use cpumodel::smt::SmtSpec;
use cpumodel::{Cpu, MachineSpec};
use pas_core::{Credit, FreqPlanner, MovingAverage};
use simkernel::{SimDuration, SimTime};

use crate::sched::{CreditScheduler, SchedCtx, Scheduler};
use crate::vm::{Vm, VmConfig, VmId};
use crate::work::WorkSource;

/// A logical CPU (hardware thread) on the SMT host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub usize);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

/// How PAS accounts for sibling contention when rewriting credits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmtAwareness {
    /// Listing 1.2 verbatim: compensate for frequency only. Under
    /// contention a VM's delivered capacity silently falls below its
    /// booking — the SMT analogue of the paper's Scenario 1.
    Naive,
    /// Extended Equation 4: also divide by the observed contention
    /// factor of the VM's thread, restoring the booked capacity
    /// (up to the wall-clock limit of the thread).
    Aware,
}

struct ThreadState {
    sched: CreditScheduler,
    vms: Vec<VmId>,
    /// Busy seconds in the current accounting window.
    window_busy: f64,
    /// Of those, seconds during which every sibling was also busy.
    window_contended: f64,
    /// Delivered mega-cycles in the window.
    window_mcycles: f64,
    /// Smoothed contended-fraction of busy time.
    overlap: MovingAverage,
}

/// The hyper-threaded single-core host.
pub struct SmtHost {
    smt: SmtSpec,
    cpu: Cpu,
    threads: Vec<ThreadState>,
    vms: Vec<Vm>,
    placement: Vec<ThreadId>,
    initial_credits: Vec<Credit>,
    vm_mcycles: Vec<f64>,
    awareness: SmtAwareness,
    planner: FreqPlanner,
    smoother: MovingAverage,
    now: SimTime,
    quantum: SimDuration,
    acct_period: SimDuration,
    next_acct: SimTime,
    window_start: SimTime,
}

impl SmtHost {
    /// Builds an SMT host from a machine preset, an SMT model and the
    /// PAS awareness mode.
    #[must_use]
    pub fn new(machine: &MachineSpec, smt: SmtSpec, awareness: SmtAwareness) -> Self {
        let acct_period = SimDuration::from_millis(100);
        SmtHost {
            smt,
            cpu: machine.build_cpu(),
            threads: (0..smt.threads())
                .map(|_| ThreadState {
                    sched: CreditScheduler::with_period(acct_period),
                    vms: Vec::new(),
                    window_busy: 0.0,
                    window_contended: 0.0,
                    window_mcycles: 0.0,
                    overlap: MovingAverage::paper_default(),
                })
                .collect(),
            vms: Vec::new(),
            placement: Vec::new(),
            initial_credits: Vec::new(),
            vm_mcycles: Vec::new(),
            awareness,
            planner: FreqPlanner::new(machine.pstate_table()),
            smoother: MovingAverage::paper_default(),
            now: SimTime::ZERO,
            quantum: SimDuration::from_millis(1),
            acct_period,
            next_acct: SimTime::ZERO + acct_period,
            window_start: SimTime::ZERO,
        }
    }

    /// Adds a VM pinned to logical CPU `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range for the SMT spec.
    pub fn add_vm(
        &mut self,
        config: VmConfig,
        work: Box<dyn WorkSource>,
        thread: ThreadId,
    ) -> VmId {
        assert!(thread.0 < self.threads.len(), "{thread} out of range");
        let id = VmId(self.vms.len());
        self.threads[thread.0].sched.on_vm_added(id, &config);
        self.threads[thread.0].vms.push(id);
        self.initial_credits.push(config.credit);
        self.vm_mcycles.push(0.0);
        self.placement.push(thread);
        self.vms.push(Vm::new(id, config, work));
        id
    }

    /// The SMT model in force.
    #[must_use]
    pub fn smt(&self) -> SmtSpec {
        self.smt
    }

    /// The current instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The shared physical core.
    #[must_use]
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Capacity of one non-contended thread at maximum frequency,
    /// mega-cycles/sec.
    #[must_use]
    pub fn fmax_mcps(&self) -> f64 {
        self.cpu.pstates().max().effective_mcps()
    }

    /// Total core energy so far, joules.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.cpu.energy().joules()
    }

    /// A VM's delivered capacity over the whole run as a fraction of
    /// one non-contended thread at maximum frequency — the quantity a
    /// customer books.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is unknown.
    #[must_use]
    pub fn vm_absolute_fraction(&self, vm: VmId) -> f64 {
        let span = self.now.as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.vm_mcycles[vm.0] / (self.fmax_mcps() * span)
        }
    }

    /// The thread a VM is pinned to.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is unknown.
    #[must_use]
    pub fn thread_of(&self, vm: VmId) -> ThreadId {
        self.placement[vm.0]
    }

    /// The current cap of a VM on its thread's scheduler, as a
    /// fraction, or `None` when uncapped.
    #[must_use]
    pub fn effective_cap(&self, vm: VmId) -> Option<f64> {
        self.threads[self.placement[vm.0].0].sched.effective_cap(vm)
    }

    /// Runs the host for `duration`.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.now + duration;
        while self.now < end {
            if self.now >= self.next_acct {
                self.accounting_tick();
                self.next_acct += self.acct_period;
            }
            let step = self
                .quantum
                .min(end - self.now)
                .min(self.next_acct - self.now);
            self.advance(step);
        }
    }

    fn advance(&mut self, dt: SimDuration) {
        let slice_end = self.now + dt;
        for vm in &mut self.vms {
            vm.refill(slice_end, dt);
        }
        // First pass: each thread picks, so contention for this
        // quantum is known before any work is executed.
        let mut picks: Vec<Option<(VmId, SimDuration)>> = Vec::with_capacity(self.threads.len());
        for t in &mut self.threads {
            let runnable: Vec<VmId> = t
                .vms
                .iter()
                .copied()
                .filter(|id| self.vms[id.0].is_runnable())
                .collect();
            let pick = t.sched.pick_next(self.now, &runnable);
            picks.push(pick.map(|vm| (vm, t.sched.max_slice(vm, self.now).min(dt))));
        }
        let busy_threads = picks.iter().filter(|p| p.is_some()).count();
        let factor = self.smt.per_thread_factor(busy_threads);
        let contended = busy_threads >= self.threads.len() && self.threads.len() > 1;

        let mcps = self.cpu.pstates().state(self.cpu.pstate()).effective_mcps();
        let mut core_busy_secs: f64 = 0.0;
        for (idx, pick) in picks.into_iter().enumerate() {
            let Some((vm, allowed)) = pick else { continue };
            let capacity = mcps * factor * allowed.as_secs_f64();
            let done = self.vms[vm.0].execute(capacity, slice_end);
            let busy_frac = if capacity > 0.0 {
                (done / capacity).min(1.0)
            } else {
                0.0
            };
            let busy_secs = allowed.as_secs_f64() * busy_frac;
            let t = &mut self.threads[idx];
            t.sched.charge(vm, SimDuration::from_secs_f64(busy_secs));
            t.window_busy += busy_secs;
            if contended {
                t.window_contended += busy_secs;
            }
            t.window_mcycles += done;
            self.vm_mcycles[vm.0] += done;
            core_busy_secs = core_busy_secs.max(busy_secs);
        }
        self.cpu
            .account(core_busy_secs / dt.as_secs_f64().max(1e-12), dt);
        self.now = slice_end;
    }

    fn accounting_tick(&mut self) {
        let window = self.now.duration_since(self.window_start).as_secs_f64();
        if window > 0.0 {
            // Aggregate absolute load of the core: delivered work
            // relative to one non-contended thread at fmax. The SMT
            // factor is already inside the delivered mega-cycles.
            let total_mcycles: f64 = self.threads.iter().map(|t| t.window_mcycles).sum();
            let absolute_pct = 100.0 * total_mcycles / (self.fmax_mcps() * window);
            let smoothed = self.smoother.push(absolute_pct);
            let mut target = self.planner.compute_new_freq(smoothed);

            // Saturation rescue, as in `PasScheduler`: a pegged thread
            // measures a load bounded by the current capacity, so
            // climb one state while any thread is saturated.
            let busiest = self
                .threads
                .iter()
                .map(|t| t.window_busy / window)
                .fold(0.0_f64, f64::max);
            let current = self.cpu.pstate();
            if busiest >= 0.99 && target <= current {
                let table = self.planner.table();
                target = cpumodel::PStateIdx((current.0 + 1).min(table.max_idx().0));
            }

            // Per-thread smoothed contention, then credit rewrite.
            for t_idx in 0..self.threads.len() {
                let overlap_sample = {
                    let t = &self.threads[t_idx];
                    if t.window_busy > 0.0 {
                        t.window_contended / t.window_busy
                    } else {
                        0.0
                    }
                };
                let overlap = self.threads[t_idx].overlap.push(overlap_sample);
                let contention = match self.awareness {
                    SmtAwareness::Naive => 1.0,
                    SmtAwareness::Aware => self.smt.contention_factor(overlap),
                };
                let vm_ids = self.threads[t_idx].vms.clone();
                for vm in vm_ids {
                    let freq_comp = self.planner.compensate(self.initial_credits[vm.0], target);
                    let cap = if freq_comp.is_uncapped() {
                        None
                    } else {
                        Some((freq_comp.as_fraction() / contention).min(1.0))
                    };
                    self.threads[t_idx].sched.set_cap(vm, cap);
                }
            }
            self.cpu
                .set_pstate(target)
                .expect("planner uses the cpu's own ladder");
        }
        for t in &mut self.threads {
            let mut ctx = SchedCtx {
                now: self.now,
                cpu: &mut self.cpu,
                measured_load_pct: 0.0,
                measured_absolute_pct: 0.0,
            };
            t.sched.on_accounting(&mut ctx);
            t.window_busy = 0.0;
            t.window_contended = 0.0;
            t.window_mcycles = 0.0;
        }
        self.window_start = self.now;
    }
}

impl std::fmt::Debug for SmtHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmtHost")
            .field("smt", &self.smt)
            .field("awareness", &self.awareness)
            .field("vms", &self.vms.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{ConstantDemand, Idle};
    use cpumodel::machines;

    fn host(awareness: SmtAwareness) -> SmtHost {
        SmtHost::new(
            &machines::optiplex_755(),
            SmtSpec::intel_typical(),
            awareness,
        )
    }

    fn add_thrasher(h: &mut SmtHost, name: &str, pct: f64, thread: usize) -> VmId {
        let demand = h.fmax_mcps(); // more than any cap allows
        h.add_vm(
            VmConfig::new(name, Credit::percent(pct)),
            Box::new(ConstantDemand::new(demand)),
            ThreadId(thread),
        )
    }

    #[test]
    fn solo_vm_gets_booking_regardless_of_awareness() {
        for awareness in [SmtAwareness::Naive, SmtAwareness::Aware] {
            let mut h = host(awareness);
            let v = add_thrasher(&mut h, "v40", 40.0, 0);
            h.add_vm(
                VmConfig::new("idle", Credit::percent(40.0)),
                Box::new(Idle),
                ThreadId(1),
            );
            h.run_for(SimDuration::from_secs(60));
            let abs = h.vm_absolute_fraction(v);
            assert!((abs - 0.40).abs() < 0.02, "{awareness:?}: {abs}");
        }
    }

    #[test]
    fn naive_pas_underdelivers_under_contention() {
        let mut h = host(SmtAwareness::Naive);
        let a = add_thrasher(&mut h, "a", 40.0, 0);
        let b = add_thrasher(&mut h, "b", 40.0, 1);
        h.run_for(SimDuration::from_secs(60));
        // Both threads busy 40% of the time, overlapping: delivered
        // capacity is cut by ~the per-thread factor (0.625).
        for (vm, name) in [(a, "a"), (b, "b")] {
            let abs = h.vm_absolute_fraction(vm);
            assert!(abs < 0.35, "{name} should miss its 40% booking, got {abs}");
            assert!(abs > 0.20, "{name} still runs, got {abs}");
        }
    }

    #[test]
    fn aware_pas_restores_booking_under_contention() {
        let mut h = host(SmtAwareness::Aware);
        let a = add_thrasher(&mut h, "a", 40.0, 0);
        let b = add_thrasher(&mut h, "b", 40.0, 1);
        h.run_for(SimDuration::from_secs(120));
        for (vm, name) in [(a, "a"), (b, "b")] {
            let abs = h.vm_absolute_fraction(vm);
            assert!(
                (abs - 0.40).abs() < 0.04,
                "{name} should be compensated back to 40%, got {abs}"
            );
        }
    }

    #[test]
    fn aware_beats_naive_on_delivered_capacity() {
        let run = |awareness| {
            let mut h = host(awareness);
            let a = add_thrasher(&mut h, "a", 40.0, 0);
            add_thrasher(&mut h, "b", 40.0, 1);
            h.run_for(SimDuration::from_secs(60));
            h.vm_absolute_fraction(a)
        };
        assert!(run(SmtAwareness::Aware) > run(SmtAwareness::Naive) + 0.03);
    }

    #[test]
    fn infeasible_bookings_clamp_at_wall_clock() {
        // Two 80% bookings on sibling threads cannot both be honoured
        // (a fully contended thread tops out at 62.5% absolute); the
        // aware host must clamp caps at 100% and survive.
        let mut h = host(SmtAwareness::Aware);
        let a = add_thrasher(&mut h, "a", 80.0, 0);
        let b = add_thrasher(&mut h, "b", 80.0, 1);
        h.run_for(SimDuration::from_secs(60));
        for vm in [a, b] {
            let cap = h.effective_cap(vm);
            if let Some(c) = cap {
                assert!(c <= 1.0 + 1e-9, "cap {c} exceeds wall clock");
            }
            let abs = h.vm_absolute_fraction(vm);
            assert!(
                abs <= 0.65,
                "cannot exceed the contended thread limit, got {abs}"
            );
            assert!(abs > 0.50, "should still get most of the thread, got {abs}");
        }
    }

    #[test]
    fn aggregate_throughput_bounded_by_smt_speedup() {
        let mut h = host(SmtAwareness::Aware);
        let a = add_thrasher(&mut h, "a", 100.0, 0);
        let b = add_thrasher(&mut h, "b", 100.0, 1);
        h.run_for(SimDuration::from_secs(60));
        let total = h.vm_absolute_fraction(a) + h.vm_absolute_fraction(b);
        assert!(
            total <= 1.25 + 0.01,
            "aggregate {total} exceeds the 1.25x envelope"
        );
        assert!(
            total > 1.10,
            "both siblings busy should beat one thread, got {total}"
        );
    }

    #[test]
    fn idle_host_descends_to_floor_frequency() {
        let mut h = host(SmtAwareness::Aware);
        h.add_vm(
            VmConfig::new("idle", Credit::percent(50.0)),
            Box::new(Idle),
            ThreadId(0),
        );
        h.run_for(SimDuration::from_secs(10));
        assert_eq!(h.cpu().pstate(), h.cpu().pstates().min_idx());
    }

    #[test]
    fn saturated_host_climbs_to_max_frequency() {
        let mut h = host(SmtAwareness::Aware);
        add_thrasher(&mut h, "a", 100.0, 0);
        add_thrasher(&mut h, "b", 100.0, 1);
        h.run_for(SimDuration::from_secs(30));
        assert_eq!(h.cpu().pstate(), h.cpu().pstates().max_idx());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pinning_to_missing_thread_panics() {
        let mut h = host(SmtAwareness::Naive);
        h.add_vm(
            VmConfig::new("x", Credit::percent(10.0)),
            Box::new(Idle),
            ThreadId(2),
        );
    }
}
