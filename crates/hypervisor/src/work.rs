//! The workload interface between the hypervisor and the guest.
//!
//! Demand is expressed in **mega-cycles of maximum-frequency-equivalent
//! work** (see `cpumodel`): a demand of `0.2 · fmax_mcps` per second is
//! "an exact load for a 20%-credit VM" in the paper's terms.

use simkernel::{SimDuration, SimTime};

/// Quality-of-service summary a workload can expose (served volume,
/// losses, response times). All fields optional-by-zero: sources that
/// do not track a metric leave it at the default.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QosSummary {
    /// Total demand served, mega-cycles.
    pub served_mcycles: f64,
    /// Total demand dropped (full queue), mega-cycles.
    pub dropped_mcycles: f64,
    /// Mean response time, seconds (0 if untracked).
    pub mean_latency_s: f64,
    /// 95th-percentile response time, seconds (0 if untracked).
    pub p95_latency_s: f64,
}

/// A source of CPU demand running inside a VM.
///
/// The host calls [`generate`](Self::generate) once per scheduling
/// step with the elapsed span, and [`on_progress`](Self::on_progress)
/// whenever the VM executed work. The `workloads` crate provides the
/// paper's pi-app and web-app implementations; [`ConstantDemand`] here
/// is the trivial building block used in unit tests and doctests.
///
/// Sources are `Send` so a whole host (including the workloads inside
/// its VMs) can be simulated on a worker thread; all implementations
/// are plain data plus a seeded [`simkernel::SimRng`].
pub trait WorkSource: Send {
    /// A short label for traces ("pi-app", "web-app", …).
    fn label(&self) -> &str;

    /// New demand (mega-cycles) produced during the `dt` ending at
    /// `now`.
    fn generate(&mut self, now: SimTime, dt: SimDuration) -> f64;

    /// Notification that `mcycles` of this source's demand completed.
    fn on_progress(&mut self, mcycles: f64, now: SimTime) {
        let _ = (mcycles, now);
    }

    /// Notification that `mcycles` of demand were dropped because the
    /// backlog cap was hit (a full accept queue, in web-server terms).
    fn on_dropped(&mut self, mcycles: f64, now: SimTime) {
        let _ = (mcycles, now);
    }

    /// Upper bound on queued demand, in mega-cycles. Defaults to
    /// unbounded. The web-app sets this to about a second of demand so
    /// that, as on a real server, stopping the load injector empties
    /// the system quickly.
    fn backlog_cap_mcycles(&self) -> f64 {
        f64::INFINITY
    }

    /// `true` once the source will never produce demand again (lets
    /// batch experiments stop early).
    fn is_finished(&self) -> bool {
        false
    }

    /// `true` once all of this source's demand has already been
    /// *generated* (even if not yet executed). A batch job that has
    /// released its work reports `true` while an open-loop injector
    /// reports `false` for as long as load keeps arriving.
    ///
    /// The host uses this to decide whether a sub-microsecond backlog
    /// tail still deserves the CPU: ongoing fluid sources wait until a
    /// request's worth of demand accumulates, but an exhausted batch
    /// source must drain its tail exactly or it would never complete.
    ///
    /// **Contract:** exhaustion is *absorbing and pure*. Once this
    /// returns `true`, every later [`generate`](Self::generate) call
    /// must return `0.0` with no observable state change, and
    /// `demand_exhausted` must keep returning `true`. The host's
    /// idle-skip fast path relies on this to elide `generate` calls on
    /// quiescent hosts without changing results (see
    /// `Host::is_quiescent`).
    fn demand_exhausted(&self) -> bool {
        self.is_finished()
    }

    /// Quality-of-service summary, if this source tracks one (the
    /// web-app reports served/dropped volume and response times).
    fn qos_summary(&self) -> Option<QosSummary> {
        None
    }

    /// `Some(rate)` if this source is a *pure fluid* producing exactly
    /// `rate · dt` mega-cycles for every call, independent of `now`.
    ///
    /// **Contract:** a source returning `Some(r)` must guarantee that
    /// [`generate`](Self::generate) returns the bit-exact value
    /// `r * dt.as_secs_f64()` with no observable state change, that
    /// [`on_progress`](Self::on_progress) and
    /// [`on_dropped`](Self::on_dropped) are no-ops, that
    /// [`backlog_cap_mcycles`](Self::backlog_cap_mcycles) is infinite,
    /// and that [`demand_exhausted`](Self::demand_exhausted) is
    /// constant over time (`false` whenever `r > 0`). The host's
    /// event-driven core uses this to replay steady scheduling windows
    /// without calling back into the source; any source with history-
    /// or time-dependent behaviour must return `None` (the default).
    fn steady_rate_mcps(&self) -> Option<f64> {
        None
    }
}

/// A fluid constant-rate demand source (mega-cycles per second).
///
/// # Example
///
/// ```
/// use hypervisor::work::{ConstantDemand, WorkSource};
/// use simkernel::{SimDuration, SimTime};
///
/// let mut d = ConstantDemand::new(200.0);
/// let got = d.generate(SimTime::ZERO, SimDuration::from_millis(500));
/// assert!((got - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ConstantDemand {
    rate_mcps: f64,
}

impl ConstantDemand {
    /// A source producing `rate_mcps` mega-cycles per second forever.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative or not finite.
    #[must_use]
    pub fn new(rate_mcps: f64) -> Self {
        assert!(
            rate_mcps.is_finite() && rate_mcps >= 0.0,
            "invalid rate {rate_mcps}"
        );
        ConstantDemand { rate_mcps }
    }

    /// The configured rate.
    #[must_use]
    pub fn rate_mcps(&self) -> f64 {
        self.rate_mcps
    }
}

impl WorkSource for ConstantDemand {
    fn label(&self) -> &str {
        "constant"
    }

    fn generate(&mut self, _now: SimTime, dt: SimDuration) -> f64 {
        self.rate_mcps * dt.as_secs_f64()
    }

    fn demand_exhausted(&self) -> bool {
        // A zero-rate source will never produce demand, so a host
        // carrying only such VMs counts as quiescent.
        self.rate_mcps == 0.0
    }

    fn steady_rate_mcps(&self) -> Option<f64> {
        Some(self.rate_mcps)
    }
}

/// A batch job: a fixed amount of work released at time zero, then
/// nothing. The building block of the paper's pi-app (see the
/// `workloads` crate for the full version with completion timing).
#[derive(Debug, Clone)]
pub struct FixedWork {
    total_mcycles: f64,
    released: bool,
    remaining: f64,
    finished_at: Option<SimTime>,
}

impl FixedWork {
    /// A job of `total_mcycles` mega-cycles (fmax-equivalent work).
    ///
    /// # Panics
    ///
    /// Panics if `total_mcycles` is not strictly positive and finite.
    #[must_use]
    pub fn new(total_mcycles: f64) -> Self {
        assert!(
            total_mcycles.is_finite() && total_mcycles > 0.0,
            "invalid job size {total_mcycles}"
        );
        FixedWork {
            total_mcycles,
            released: false,
            remaining: total_mcycles,
            finished_at: None,
        }
    }

    /// Total size of the job.
    #[must_use]
    pub fn total_mcycles(&self) -> f64 {
        self.total_mcycles
    }

    /// When the job completed, if it has.
    #[must_use]
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }
}

impl WorkSource for FixedWork {
    fn label(&self) -> &str {
        "fixed-work"
    }

    fn generate(&mut self, _now: SimTime, _dt: SimDuration) -> f64 {
        if self.released {
            0.0
        } else {
            self.released = true;
            self.total_mcycles
        }
    }

    fn on_progress(&mut self, mcycles: f64, now: SimTime) {
        self.remaining -= mcycles;
        if self.remaining <= 1e-9 && self.finished_at.is_none() {
            self.finished_at = Some(now);
        }
    }

    fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }

    fn demand_exhausted(&self) -> bool {
        self.released
    }
}

/// Convenience constructor used by host unit tests.
#[doc(hidden)]
#[must_use]
pub fn test_batch(total_mcycles: f64) -> FixedWork {
    FixedWork::new(total_mcycles)
}

/// A source that never produces demand (an idle VM).
#[derive(Debug, Clone, Copy, Default)]
pub struct Idle;

impl WorkSource for Idle {
    fn label(&self) -> &str {
        "idle"
    }

    fn generate(&mut self, _now: SimTime, _dt: SimDuration) -> f64 {
        0.0
    }

    fn is_finished(&self) -> bool {
        true
    }

    fn steady_rate_mcps(&self) -> Option<f64> {
        Some(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_demand_accumulates_linearly() {
        let mut d = ConstantDemand::new(1000.0);
        let a = d.generate(SimTime::ZERO, SimDuration::from_millis(10));
        let b = d.generate(SimTime::from_millis(10), SimDuration::from_millis(30));
        assert!((a - 10.0).abs() < 1e-9);
        assert!((b - 30.0).abs() < 1e-9);
        assert!(!d.is_finished());
    }

    #[test]
    fn zero_rate_is_idle_like() {
        let mut d = ConstantDemand::new(0.0);
        assert_eq!(d.generate(SimTime::ZERO, SimDuration::from_secs(10)), 0.0);
        assert!(d.demand_exhausted(), "zero rate counts as exhausted");
        assert!(!ConstantDemand::new(5.0).demand_exhausted());
    }

    #[test]
    fn idle_never_generates() {
        let mut i = Idle;
        assert_eq!(i.generate(SimTime::ZERO, SimDuration::from_secs(1)), 0.0);
        assert!(i.is_finished());
        assert_eq!(i.label(), "idle");
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn negative_rate_rejected() {
        let _ = ConstantDemand::new(-1.0);
    }
}
