//! A multi-core virtualized host with per-domain DVFS — the paper's
//! closing perspective ("multi-core, per-socket DVFS, and per-core
//! DVFS"), as a running simulation rather than a thought experiment.
//!
//! Model:
//!
//! * every core runs its own Credit scheduler (caps are per-core, as
//!   in Xen with pinned vCPUs);
//! * VMs are single-vCPU and pinned to a core at creation;
//! * frequency is set per [DVFS domain](cpumodel::topology): PAS plans
//!   each domain independently, using the *busiest core* in the domain
//!   as its absolute load (a domain must satisfy its most loaded
//!   core), and compensates the credits of every VM in that domain for
//!   the domain's frequency.
//!
//! The loop uses a fixed 1 ms quantum against a 100 ms accounting
//! period (1% cap granularity) — coarser than the single-core host's
//! exact variable slicing, but the multi-core questions are about
//! domain coupling, not sub-millisecond cap precision.

use cpumodel::topology::{CoreId, CpuPackage, DomainId, Topology};
use cpumodel::MachineSpec;
use pas_core::{Credit, FreqPlanner, MovingAverage};
use simkernel::{SimDuration, SimTime};

use crate::sched::{CreditScheduler, SchedCtx, Scheduler};
use crate::vm::{Vm, VmConfig, VmId};
use crate::work::WorkSource;

/// Frequency management for the multi-core host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiDvfs {
    /// All cores pinned at maximum frequency (the no-DVFS baseline).
    MaxFrequency,
    /// PAS per DVFS domain: plan frequency and compensate credits.
    Pas,
}

/// One periodic snapshot of the multi-core host.
#[derive(Debug, Clone)]
pub struct MultiSnapshot {
    /// Snapshot time, seconds.
    pub t_secs: f64,
    /// Frequency per core, MHz.
    pub core_freq_mhz: Vec<u32>,
    /// Absolute load per VM over the window, percent of one core's
    /// fmax capacity.
    pub vm_absolute_pct: Vec<f64>,
}

struct CoreState {
    sched: CreditScheduler,
    vms: Vec<VmId>,
    window_busy: f64,
    window_abs: f64,
    total_busy: f64,
}

/// The multi-core host.
pub struct MultiHost {
    topo: Topology,
    pkg: CpuPackage,
    cores: Vec<CoreState>,
    vms: Vec<Vm>,
    placement: Vec<CoreId>,
    initial_credits: Vec<Credit>,
    vm_total_abs: Vec<f64>,
    dvfs: MultiDvfs,
    planner: FreqPlanner,
    domain_smooth: Vec<MovingAverage>,
    now: SimTime,
    quantum: SimDuration,
    acct_period: SimDuration,
    next_acct: SimTime,
    sample_period: SimDuration,
    next_sample: SimTime,
    snapshots: Vec<MultiSnapshot>,
    window_start: SimTime,
}

impl MultiHost {
    /// Builds a host of identical cores.
    #[must_use]
    pub fn new(machine: &MachineSpec, topo: Topology, dvfs: MultiDvfs) -> Self {
        let pkg = CpuPackage::new(machine, topo);
        let planner = FreqPlanner::new(machine.pstate_table());
        let acct_period = SimDuration::from_millis(100);
        let sample_period = SimDuration::from_secs(10);
        MultiHost {
            topo,
            pkg,
            cores: (0..topo.n_cores())
                .map(|_| CoreState {
                    sched: CreditScheduler::with_period(acct_period),
                    vms: Vec::new(),
                    window_busy: 0.0,
                    window_abs: 0.0,
                    total_busy: 0.0,
                })
                .collect(),
            vms: Vec::new(),
            placement: Vec::new(),
            initial_credits: Vec::new(),
            vm_total_abs: Vec::new(),
            dvfs,
            planner,
            domain_smooth: (0..topo.n_domains())
                .map(|_| MovingAverage::paper_default())
                .collect(),
            now: SimTime::ZERO,
            quantum: SimDuration::from_millis(1),
            acct_period,
            next_acct: SimTime::ZERO + acct_period,
            sample_period,
            next_sample: SimTime::ZERO + sample_period,
            snapshots: Vec::new(),
            window_start: SimTime::ZERO,
        }
    }

    /// Adds a VM pinned to `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range for the topology.
    pub fn add_vm(&mut self, config: VmConfig, work: Box<dyn WorkSource>, core: CoreId) -> VmId {
        assert!(core.0 < self.topo.n_cores(), "core {core} out of range");
        let id = VmId(self.vms.len());
        self.cores[core.0].sched.on_vm_added(id, &config);
        self.cores[core.0].vms.push(id);
        self.initial_credits.push(config.credit);
        self.vm_total_abs.push(0.0);
        self.placement.push(core);
        self.vms.push(Vm::new(id, config, work));
        id
    }

    /// The topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Capacity of one core at maximum frequency (mega-cycles/sec).
    #[must_use]
    pub fn fmax_mcps(&self) -> f64 {
        self.pkg.core(CoreId(0)).pstates().max().effective_mcps()
    }

    /// The current instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total energy across cores, joules.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.pkg.total_joules()
    }

    /// A VM's delivered absolute capacity over the whole run, as a
    /// fraction of one core's fmax capacity.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is unknown.
    #[must_use]
    pub fn vm_absolute_fraction(&self, vm: VmId) -> f64 {
        let span = self.now.as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.vm_total_abs[vm.0] / span
        }
    }

    /// A core's busy fraction over the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_busy_fraction(&self, core: CoreId) -> f64 {
        let span = self.now.as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.cores[core.0].total_busy / span
        }
    }

    /// The current P-state of a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core_pstate(&self, core: CoreId) -> cpumodel::PStateIdx {
        self.pkg.core(core).pstate()
    }

    /// All snapshots.
    #[must_use]
    pub fn snapshots(&self) -> &[MultiSnapshot] {
        &self.snapshots
    }

    /// Runs for `duration`.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.now + duration;
        while self.now < end {
            if self.now >= self.next_acct {
                self.accounting_tick();
                self.next_acct += self.acct_period;
            }
            if self.now >= self.next_sample {
                self.sample();
                self.next_sample += self.sample_period;
            }
            let step = self
                .quantum
                .min(end - self.now)
                .min(self.next_acct - self.now)
                .min(self.next_sample - self.now);
            self.advance(step);
        }
    }

    fn advance(&mut self, dt: SimDuration) {
        let slice_end = self.now + dt;
        for vm in &mut self.vms {
            vm.refill(slice_end, dt);
        }
        for core_idx in 0..self.cores.len() {
            let core_id = CoreId(core_idx);
            let runnable: Vec<VmId> = self.cores[core_idx]
                .vms
                .iter()
                .copied()
                .filter(|id| self.vms[id.0].is_runnable())
                .collect();
            let pick = self.cores[core_idx].sched.pick_next(self.now, &runnable);
            let Some(vm) = pick else {
                self.pkg.core_mut(core_id).account(0.0, dt);
                continue;
            };
            let allowed = self.cores[core_idx].sched.max_slice(vm, self.now).min(dt);
            let cpu = self.pkg.core(core_id);
            let capacity = cpu.work_capacity(allowed);
            let ratio_cf = cpu.ratio() * cpu.cf();
            let done = self.vms[vm.0].execute(capacity, slice_end);
            let busy_frac_of_allowed = if capacity > 0.0 {
                (done / capacity).min(1.0)
            } else {
                0.0
            };
            let busy_secs = allowed.as_secs_f64() * busy_frac_of_allowed;
            let abs_secs = busy_secs * ratio_cf;
            self.cores[core_idx]
                .sched
                .charge(vm, SimDuration::from_secs_f64(busy_secs));
            self.pkg
                .core_mut(core_id)
                .account(busy_secs / dt.as_secs_f64().max(1e-12), dt);
            let st = &mut self.cores[core_idx];
            st.window_busy += busy_secs;
            st.window_abs += abs_secs;
            st.total_busy += busy_secs;
            self.vm_total_abs[vm.0] += abs_secs;
        }
        self.now = slice_end;
    }

    fn accounting_tick(&mut self) {
        let window = self.now.duration_since(self.window_start).as_secs_f64();
        // Per-domain DVFS + credit compensation.
        if self.dvfs == MultiDvfs::Pas && window > 0.0 {
            for d in 0..self.topo.n_domains() {
                let domain = DomainId(d);
                let cores = self.topo.cores_in(domain);
                let mut busiest_abs: f64 = 0.0;
                let mut busiest_load: f64 = 0.0;
                for c in &cores {
                    let st = &self.cores[c.0];
                    busiest_abs = busiest_abs.max(100.0 * st.window_abs / window);
                    busiest_load = busiest_load.max(100.0 * st.window_busy / window);
                }
                let smoothed = self.domain_smooth[d].push(busiest_abs);
                let mut target = self.planner.compute_new_freq(smoothed);
                let current = self.pkg.core(cores[0]).pstate();
                if busiest_load >= 99.0 && target <= current {
                    let table = self.planner.table();
                    target = cpumodel::PStateIdx((current.0 + 1).min(table.max_idx().0));
                }
                self.pkg
                    .set_domain_pstate(domain, target)
                    .expect("valid p-state");
                for c in &cores {
                    let st = &mut self.cores[c.0];
                    let vm_ids = st.vms.clone();
                    for vm in vm_ids {
                        let comp = self.planner.compensate(self.initial_credits[vm.0], target);
                        let cap = if comp.is_uncapped() {
                            None
                        } else {
                            Some(comp.as_fraction())
                        };
                        st.sched.set_cap(vm, cap);
                    }
                }
            }
        }
        // Credit refill on every core scheduler.
        for (idx, st) in self.cores.iter_mut().enumerate() {
            let cpu = self.pkg.core_mut(CoreId(idx));
            let mut ctx = SchedCtx {
                now: self.now,
                cpu,
                measured_load_pct: 0.0,
                measured_absolute_pct: 0.0,
            };
            st.sched.on_accounting(&mut ctx);
            st.window_busy = 0.0;
            st.window_abs = 0.0;
        }
        self.window_start = self.now;
    }

    fn sample(&mut self) {
        let span = self.sample_period.as_secs_f64();
        self.snapshots.push(MultiSnapshot {
            t_secs: self.now.as_secs_f64(),
            core_freq_mhz: (0..self.topo.n_cores())
                .map(|c| {
                    let cpu = self.pkg.core(CoreId(c));
                    cpu.pstates().state(cpu.pstate()).frequency.as_mhz()
                })
                .collect(),
            vm_absolute_pct: (0..self.vms.len())
                .map(|_| 0.0) // per-window per-VM tracking omitted; totals cover the studies
                .collect(),
        });
        let _ = span;
    }
}

impl std::fmt::Debug for MultiHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiHost")
            .field("cores", &self.topo.n_cores())
            .field("domains", &self.topo.n_domains())
            .field("vms", &self.vms.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::ConstantDemand;
    use cpumodel::machines;
    use cpumodel::topology::DvfsGranularity;

    fn build(granularity: DvfsGranularity, dvfs: MultiDvfs, demands: &[f64]) -> MultiHost {
        let machine = machines::optiplex_755();
        let topo = Topology::new(2, 2, granularity);
        let mut host = MultiHost::new(&machine, topo, dvfs);
        let fmax = host.fmax_mcps();
        for (i, &d) in demands.iter().enumerate() {
            let credit = Credit::percent((d * 100.0).clamp(5.0, 95.0));
            host.add_vm(
                VmConfig::new(format!("vm{i}"), credit),
                Box::new(ConstantDemand::new(fmax)), // thrash: cap decides
                CoreId(i % 4),
            );
        }
        host
    }

    #[test]
    fn per_core_caps_enforced() {
        let mut host = build(
            DvfsGranularity::Global,
            MultiDvfs::MaxFrequency,
            &[0.2, 0.7, 0.4, 0.1],
        );
        host.run_for(SimDuration::from_secs(30));
        for (i, want) in [0.2, 0.7, 0.4, 0.1].iter().enumerate() {
            let abs = host.vm_absolute_fraction(VmId(i));
            assert!((abs - want).abs() < 0.02, "vm{i}: {abs} vs {want}");
        }
    }

    #[test]
    fn per_core_pas_scales_independently() {
        let mut host = build(
            DvfsGranularity::PerCore,
            MultiDvfs::Pas,
            &[0.2, 0.7, 0.4, 0.1],
        );
        host.run_for(SimDuration::from_secs(60));
        // The 70% core must run fast; the 10% core parks at the floor.
        assert!(host.core_pstate(CoreId(1)) > host.core_pstate(CoreId(3)));
        // Every VM still receives its booked absolute capacity.
        for (i, want) in [0.2, 0.7, 0.4, 0.1].iter().enumerate() {
            let abs = host.vm_absolute_fraction(VmId(i));
            assert!((abs - want).abs() < 0.03, "vm{i}: {abs} vs {want}");
        }
    }

    #[test]
    fn per_socket_domain_couples_cores() {
        let mut host = build(
            DvfsGranularity::PerSocket,
            MultiDvfs::Pas,
            &[0.2, 0.7, 0.1, 0.1],
        );
        host.run_for(SimDuration::from_secs(60));
        // Socket 0 (cores 0,1) is driven by the 70% VM.
        assert_eq!(host.core_pstate(CoreId(0)), host.core_pstate(CoreId(1)));
        assert_eq!(host.core_pstate(CoreId(2)), host.core_pstate(CoreId(3)));
        assert!(host.core_pstate(CoreId(0)) > host.core_pstate(CoreId(2)));
    }

    #[test]
    fn finer_domains_save_energy_dynamically() {
        let demands = [0.2, 0.7, 0.4, 0.1];
        let energy = |g| {
            let mut host = build(g, MultiDvfs::Pas, &demands);
            host.run_for(SimDuration::from_secs(60));
            host.total_energy_j()
        };
        let global = energy(DvfsGranularity::Global);
        let socket = energy(DvfsGranularity::PerSocket);
        let core = energy(DvfsGranularity::PerCore);
        assert!(
            socket <= global * 1.01,
            "socket {socket} vs global {global}"
        );
        assert!(core <= socket * 1.01, "core {core} vs socket {socket}");
        assert!(core < global, "strict saving on heterogeneous load");
    }

    #[test]
    fn max_frequency_baseline_uses_more_energy() {
        let demands = [0.2, 0.7, 0.4, 0.1];
        let mut base = build(DvfsGranularity::PerCore, MultiDvfs::MaxFrequency, &demands);
        base.run_for(SimDuration::from_secs(60));
        let mut pas = build(DvfsGranularity::PerCore, MultiDvfs::Pas, &demands);
        pas.run_for(SimDuration::from_secs(60));
        assert!(pas.total_energy_j() < base.total_energy_j());
    }

    #[test]
    fn snapshots_record_frequencies() {
        let mut host = build(
            DvfsGranularity::PerCore,
            MultiDvfs::Pas,
            &[0.2, 0.7, 0.4, 0.1],
        );
        host.run_for(SimDuration::from_secs(30));
        assert!(!host.snapshots().is_empty());
        assert_eq!(host.snapshots()[0].core_freq_mhz.len(), 4);
    }
}
