//! Property-based tests of the scheduler guarantees, run on the full
//! host loop with randomized VM populations.

use hypervisor::host::{HostConfig, SchedulerKind};
use hypervisor::vm::{SedfParams, VmConfig, VmId};
use hypervisor::work::ConstantDemand;
use pas_core::Credit;
use proptest::prelude::*;
use simkernel::SimDuration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SEDF's reservation guarantee: a thrashing VM with slice s and
    /// period p receives at least s/p of the CPU, whatever competes
    /// with it.
    #[test]
    fn sedf_guarantee_holds_under_competition(
        slice_ms in 5u64..40,
        competitors in 1usize..4,
    ) {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Sedf { extra: false }).build();
        let thrash = host.fmax_mcps();
        let guaranteed = host.add_vm(
            VmConfig::new("reserved", Credit::percent(10.0)).with_sedf(SedfParams {
                slice: SimDuration::from_millis(slice_ms),
                period: SimDuration::from_millis(100),
                extra: false,
            }),
            Box::new(ConstantDemand::new(thrash)),
        );
        for i in 0..competitors {
            host.add_vm(
                VmConfig::new(format!("noise{i}"), Credit::percent(30.0)).with_sedf(SedfParams {
                    slice: SimDuration::from_millis(25),
                    period: SimDuration::from_millis(100),
                    extra: true,
                }),
                Box::new(ConstantDemand::new(thrash)),
            );
        }
        host.run_for(SimDuration::from_secs(30));
        let got = host.stats().vm_busy_fraction(guaranteed);
        let want = slice_ms as f64 / 100.0;
        prop_assert!(
            got >= want - 0.015,
            "reserved VM got {got}, guaranteed {want} with {competitors} competitors"
        );
    }

    /// Credit2 long-run shares are weight-proportional on a live host.
    #[test]
    fn credit2_shares_follow_weights(w0 in 10u32..90, w1 in 10u32..90) {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit2).build();
        let thrash = host.fmax_mcps();
        host.add_vm(
            VmConfig::new("a", Credit::percent(f64::from(w0))).with_weight(w0),
            Box::new(ConstantDemand::new(thrash)),
        );
        host.add_vm(
            VmConfig::new("b", Credit::percent(f64::from(w1))).with_weight(w1),
            Box::new(ConstantDemand::new(thrash)),
        );
        host.run_for(SimDuration::from_secs(30));
        let b0 = host.stats().vm_busy_fraction(VmId(0));
        let b1 = host.stats().vm_busy_fraction(VmId(1));
        let want0 = f64::from(w0) / f64::from(w0 + w1);
        prop_assert!((b0 / (b0 + b1) - want0).abs() < 0.08,
            "weights {w0}:{w1} gave shares {b0:.3}:{b1:.3}");
    }

    /// Work conservation: with at least one thrashing uncapped VM the
    /// processor never idles, under any scheduler.
    #[test]
    fn work_conservation_with_uncapped_vm(extra_vms in 0usize..3) {
        for kind in [
            SchedulerKind::Credit,
            SchedulerKind::Credit2,
            SchedulerKind::Sedf { extra: true },
        ] {
            let mut host = HostConfig::optiplex_defaults(kind).build();
            let thrash = host.fmax_mcps();
            host.add_vm(
                VmConfig::new("greedy", Credit::ZERO), // uncapped
                Box::new(ConstantDemand::new(thrash)),
            );
            for i in 0..extra_vms {
                host.add_vm(
                    VmConfig::new(format!("vm{i}"), Credit::percent(10.0)),
                    Box::new(ConstantDemand::new(0.05 * thrash)),
                );
            }
            // 30 s horizon: SEDF spends its first period (100 ms)
            // initialising deadlines, a startup transient that must
            // not count against steady-state work conservation.
            host.run_for(SimDuration::from_secs(30));
            let busy = host.stats().global_busy_fraction();
            prop_assert!(busy > 0.995, "{kind:?}: busy {busy} with an uncapped thrasher");
        }
    }

    /// SMT host conservation: for any booking mix on sibling threads,
    /// total delivered capacity never exceeds the SMT aggregate
    /// envelope, and an *aware* host never delivers less than a
    /// *naive* one to any VM (the compensation only adds capacity).
    #[test]
    fn smt_host_respects_aggregate_envelope(
        book0 in 5.0f64..95.0,
        book1 in 5.0f64..95.0,
    ) {
        use cpumodel::smt::SmtSpec;
        use hypervisor::smt::{SmtAwareness, SmtHost, ThreadId};

        let run = |awareness| {
            let mut host = SmtHost::new(
                &cpumodel::machines::optiplex_755(),
                SmtSpec::intel_typical(),
                awareness,
            );
            let thrash = host.fmax_mcps();
            let a = host.add_vm(
                VmConfig::new("a", Credit::percent(book0)),
                Box::new(ConstantDemand::new(thrash)),
                ThreadId(0),
            );
            let b = host.add_vm(
                VmConfig::new("b", Credit::percent(book1)),
                Box::new(ConstantDemand::new(thrash)),
                ThreadId(1),
            );
            host.run_for(SimDuration::from_secs(30));
            (host.vm_absolute_fraction(a), host.vm_absolute_fraction(b))
        };
        let (na, nb) = run(SmtAwareness::Naive);
        let (aa, ab) = run(SmtAwareness::Aware);
        prop_assert!(na + nb <= 1.25 + 0.02, "naive total {} over envelope", na + nb);
        prop_assert!(aa + ab <= 1.25 + 0.02, "aware total {} over envelope", aa + ab);
        // Awareness dominates per-VM only while the compensation fits
        // under the wall clock (booked / 0.625 ≤ 100%). Over-committed
        // bookings clamp at 100%, raising the overlap for everyone —
        // there the envelope bound above is the only guarantee.
        if book0 <= 60.0 && book1 <= 60.0 {
            prop_assert!(aa >= na - 0.02, "aware a {aa} below naive {na}");
            prop_assert!(ab >= nb - 0.02, "aware b {ab} below naive {nb}");
        }
    }

    /// VMs added mid-run are scheduled and respect their caps.
    #[test]
    fn vm_added_mid_run_respects_cap(cap_pct in 10.0f64..60.0) {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        let thrash = host.fmax_mcps();
        host.add_vm(
            VmConfig::new("first", Credit::percent(30.0)),
            Box::new(ConstantDemand::new(thrash)),
        );
        host.run_for(SimDuration::from_secs(10));
        let late = host.add_vm(
            VmConfig::new("late", Credit::percent(cap_pct)),
            Box::new(ConstantDemand::new(thrash)),
        );
        host.run_for(SimDuration::from_secs(20));
        // The late VM ran for 2/3 of the horizon at its cap.
        let busy = host.stats().vm_busy_fraction(late);
        let want = cap_pct / 100.0 * (20.0 / 30.0);
        prop_assert!((busy - want).abs() < 0.03, "late VM busy {busy} vs {want}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The event-driven core's acceptance criterion, randomized: for
    /// any scheduler × governor × workload-mix, a host with the fused
    /// window replay enabled must be bit-identical — energy, busy
    /// fractions, P-state, final instant, snapshots — to the
    /// slice-exact loop. The fused path may engage or not depending on
    /// the draw (caps below the quantum never fuse, multi-runnable
    /// windows never fuse); either way the results must agree exactly.
    #[test]
    fn event_core_matches_exact_loop_on_random_scenarios(
        sched_ix in 0usize..4,
        gov_ix in 0usize..3,
        vms in proptest::collection::vec((0usize..3, 0.05f64..1.0, 5.0f64..90.0), 1..5),
        secs in 30u64..90,
    ) {
        use governors::{Performance, StableOndemand};
        use hypervisor::work::{test_batch, ConstantDemand, Idle, WorkSource};

        let sched = [
            SchedulerKind::Credit,
            SchedulerKind::Credit2,
            SchedulerKind::Sedf { extra: true },
            SchedulerKind::Pas,
        ][sched_ix];
        let run = |event_core: bool| {
            let mut cfg = HostConfig::optiplex_defaults(sched).with_event_core(event_core);
            // PAS owns DVFS; other schedulers draw a governor.
            if sched_ix != 3 {
                cfg = match gov_ix {
                    0 => cfg,
                    1 => cfg.with_governor(Box::new(StableOndemand::new())),
                    _ => cfg.with_governor(Box::new(Performance)),
                };
            }
            let mut host = cfg.build();
            let fmax = host.fmax_mcps();
            for (i, &(kind, frac, credit)) in vms.iter().enumerate() {
                let work: Box<dyn WorkSource> = match kind {
                    0 => Box::new(ConstantDemand::new(frac * fmax)),
                    1 => Box::new(test_batch(frac * 10.0 * fmax)),
                    _ => Box::new(Idle),
                };
                host.add_vm(
                    VmConfig::new(format!("vm{i}"), Credit::percent(credit)),
                    work,
                );
            }
            host.run_for(SimDuration::from_secs(secs));
            let per_vm: Vec<(u64, u64)> = (0..vms.len())
                .map(|i| {
                    (
                        host.stats().vm_busy_fraction(VmId(i)).to_bits(),
                        host.stats().vm_absolute_fraction(VmId(i)).to_bits(),
                    )
                })
                .collect();
            (
                host.cpu().energy().joules().to_bits(),
                host.stats().global_busy_fraction().to_bits(),
                host.cpu().pstate(),
                host.now(),
                per_vm,
                host.stats().snapshots().to_vec(),
            )
        };
        let on = run(true);
        let off = run(false);
        prop_assert_eq!(on, off);
    }
}
