//! The fleet: many hosts, one controller, one bill.
//!
//! [`Fleet`] builds a set of [`hypervisor::host::Host`]s from a
//! placement (see [`crate::placement`]), advances them in lock-step
//! *control epochs* — concurrently, via [`crate::exec::for_each_mut`]
//! — and between epochs runs the global controller: per-host load
//! measurement, the migration trigger, and VM live migration through
//! the hypervisor's [`extract`](hypervisor::host::Host::extract_vm) /
//! [`admit`](hypervisor::host::Host::admit_vm) hooks.
//!
//! Everything is deterministic regardless of the worker-thread count:
//! each host's simulation is independent and seeded, the controller
//! runs serially between epochs, and every aggregation walks hosts in
//! index order.

use governors::{Governor, Ondemand, Performance, StableOndemand};
use hypervisor::host::{Host, HostConfig, HostPerf, SchedulerKind};
use hypervisor::vm::{VmConfig, VmId};
use hypervisor::work::{ConstantDemand, WorkSource};
use metrics::sketch::{Sketch, DEFAULT_ALPHA};
use metrics::TimeSeries;
use pas_core::Credit;
use simkernel::{SimDuration, SimTime};
use trace::{EventKind, Record as _, Trace, Tracer};

use crate::exec;
use crate::migration::{MigrationCostModel, MigrationRecord, MigrationTrigger};
use crate::placement::{HostCapacity, Placement, PlacementPolicy, VmSpec};
use crate::shard::{self, ShardConfig};

/// Which DVFS governor every fleet host runs (a plain enum rather than
/// a boxed trait object so one config can build any number of hosts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetGovernor {
    /// Always at maximum frequency (the no-savings QoS reference).
    Performance,
    /// Linux ondemand.
    Ondemand,
    /// The paper's stabilised ondemand.
    StableOndemand,
}

impl FleetGovernor {
    fn build(self) -> Box<dyn Governor> {
        match self {
            FleetGovernor::Performance => Box::new(Performance),
            FleetGovernor::Ondemand => Box::new(Ondemand::default()),
            FleetGovernor::StableOndemand => Box::new(StableOndemand::new()),
        }
    }
}

/// Fleet-wide configuration: host shape, scheduler, placement policy,
/// migration behaviour and the control-epoch length.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// What each host offers to the placement controller.
    pub capacity: HostCapacity,
    /// The hypervisor scheduler every host runs.
    pub scheduler: SchedulerKind,
    /// The governor every host runs; must be `None` under
    /// [`SchedulerKind::Pas`] (PAS manages DVFS itself).
    pub governor: Option<FleetGovernor>,
    /// How VMs are packed onto hosts at build time.
    pub policy: PlacementPolicy,
    /// Load-triggered migration; `None` disables migration.
    pub trigger: Option<MigrationTrigger>,
    /// What each migration costs.
    pub cost: MigrationCostModel,
    /// Control-epoch length: hosts simulate this long between
    /// controller passes.
    pub epoch: SimDuration,
    /// Empty hosts provisioned beyond what the placement opens —
    /// headroom the migration controller can shed load into (N+k
    /// provisioning). They idle (and burn idle energy) until a VM
    /// arrives.
    pub spare_hosts: usize,
    /// Whether hosts may use the hypervisor's idle-skip fast path and
    /// [`Fleet::run_epochs`] may keep quiescent hosts off the worker
    /// pool. Bit-identical either way; the switch exists for the
    /// fast-vs-exact benchmarks and regression tests.
    pub idle_fast_path: bool,
    /// Whether hosts run the event-driven core (fused steady-window
    /// replay, see `hypervisor`'s `HostConfig::event_core`) and
    /// [`Fleet::run_epochs`] uses next-event forecasts to keep
    /// *dormant* hosts — quiescent or merely eventless until the next
    /// epoch boundary — off the worker pool. Bit-identical either
    /// way; the switch exists for the fast-vs-exact benchmarks and
    /// regression tests.
    pub event_core: bool,
    /// Sharded placement (see [`crate::shard`]): `None` keeps the
    /// global single-controller pass. The shard *count* inside the
    /// config is pure worker partitioning — it never changes the
    /// placement — so this is safe to vary with the machine.
    pub sharding: Option<ShardConfig>,
    /// Bounded-memory statistics for datacenter-scale runs: the
    /// per-epoch [`Fleet::load_series`] is not recorded (the mean and
    /// the per-host-epoch distribution stay available through
    /// [`Fleet::mean_load_pct`] and [`Fleet::load_sketch`]), and hosts
    /// retain no periodic snapshots — so retained state stops scaling
    /// with epoch count and host population. Off by default; scale
    /// campaigns and benches turn it on.
    pub bounded_stats: bool,
}

impl FleetConfig {
    /// PAS on every host (no governor — PAS owns DVFS), first-fit
    /// placement, migration off, 30 s control epochs on the paper's
    /// Optiplex-shaped hosts.
    #[must_use]
    pub fn pas_defaults() -> Self {
        FleetConfig {
            capacity: HostCapacity::optiplex_defaults(),
            scheduler: SchedulerKind::Pas,
            governor: None,
            policy: PlacementPolicy::FirstFit,
            trigger: None,
            cost: MigrationCostModel::gigabit_defaults(),
            epoch: SimDuration::from_secs(30),
            spare_hosts: 0,
            idle_fast_path: true,
            event_core: true,
            sharding: None,
            bounded_stats: false,
        }
    }

    /// Credit + the performance governor: the QoS reference fleet that
    /// never saves energy.
    #[must_use]
    pub fn performance_defaults() -> Self {
        FleetConfig {
            scheduler: SchedulerKind::Credit,
            governor: Some(FleetGovernor::Performance),
            ..FleetConfig::pas_defaults()
        }
    }

    /// Overrides the placement policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PlacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables load-triggered migration.
    #[must_use]
    pub fn with_trigger(mut self, trigger: MigrationTrigger) -> Self {
        self.trigger = Some(trigger);
        self
    }

    /// Provisions `n` empty spare hosts for the migration controller.
    #[must_use]
    pub fn with_spares(mut self, n: usize) -> Self {
        self.spare_hosts = n;
        self
    }

    /// Enables or disables the idle-skip fast path (on by default).
    #[must_use]
    pub fn with_idle_fast_path(mut self, on: bool) -> Self {
        self.idle_fast_path = on;
        self
    }

    /// Enables or disables the event-driven core (on by default).
    #[must_use]
    pub fn with_event_core(mut self, on: bool) -> Self {
        self.event_core = on;
        self
    }

    /// Enables sharded placement (see [`crate::shard`]).
    #[must_use]
    pub fn with_sharding(mut self, sharding: ShardConfig) -> Self {
        self.sharding = Some(sharding);
        self
    }

    /// Enables or disables bounded-memory statistics (off by default).
    #[must_use]
    pub fn with_bounded_stats(mut self, on: bool) -> Self {
        self.bounded_stats = on;
        self
    }

    /// Overrides the control-epoch length.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` is zero.
    #[must_use]
    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        assert!(!epoch.is_zero(), "control epoch must be non-zero");
        self.epoch = epoch;
        self
    }

    fn build_host(&self) -> Host {
        let mut cfg = HostConfig::optiplex_defaults(self.scheduler)
            .with_idle_fast_path(self.idle_fast_path)
            .with_event_core(self.event_core);
        if self.bounded_stats {
            // Push the snapshot boundary past any realistic run so
            // hosts retain no periodic snapshots: per-host state stays
            // O(1) in both epoch count and wall-clock.
            cfg = cfg.with_sample_period(SimDuration::from_secs(86_400 * 365));
        }
        if let Some(gov) = self.governor {
            cfg = cfg.with_governor(gov.build());
        }
        cfg.build()
    }
}

/// A stepped fluid demand source: the spec's piecewise-constant demand
/// fraction scaled to mega-cycles. Time is *fleet* time — each host's
/// clock equals fleet time because hosts advance in lock-step — and
/// migration preserves the schedule because the rate depends on
/// absolute time, not on which host asks. Both generation here and the
/// SLA entitlement in [`Fleet::totals`] delegate to
/// [`VmSpec::integrated_demand`], so they can never disagree.
struct SteppedDemand {
    spec: VmSpec,
    fmax_mcps: f64,
}

impl WorkSource for SteppedDemand {
    fn label(&self) -> &str {
        "stepped"
    }

    fn generate(&mut self, now: SimTime, dt: SimDuration) -> f64 {
        let t1 = now.as_secs_f64();
        let t0 = t1 - dt.as_secs_f64();
        self.fmax_mcps * self.spec.integrated_demand(t0, t1, None)
    }
}

/// The fleet's aggregate bill and service record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetTotals {
    /// Total energy: hosts plus migration overhead, joules.
    pub energy_j: f64,
    /// Host CPU energy alone, joules.
    pub host_energy_j: f64,
    /// Migration transfer overhead alone, joules.
    pub migration_energy_j: f64,
    /// Number of completed migrations.
    pub migration_count: usize,
    /// Total stop-and-copy blackout, seconds.
    pub downtime_s: f64,
    /// Delivered / entitled absolute capacity across all VMs, where a
    /// VM's entitlement is `min(booked credit, demand)` integrated
    /// over the run. 1.0 means every SLA was met.
    pub sla_ratio: f64,
}

/// A fleet of hosts under one global controller.
pub struct Fleet {
    cfg: FleetConfig,
    specs: Vec<VmSpec>,
    hosts: Vec<Host>,
    placement: Placement,
    /// Per spec: every `(host, vm id)` slot the VM has occupied, in
    /// order; the last entry is its current home.
    residency: Vec<Vec<(usize, VmId)>>,
    /// Booked memory per host, GiB.
    mem_used: Vec<f64>,
    /// Booked credit per host (fraction of fmax capacity).
    credit_booked: Vec<f64>,
    /// Absolute (fmax-fraction) load per host over the last epoch —
    /// the unit the specs' demand and credit fractions are in.
    /// Reused across epochs (cleared, never reallocated).
    host_load: Vec<f64>,
    /// Spec indices currently resident per host — the incremental
    /// index the controller scans instead of the whole spec list.
    resident: Vec<Vec<usize>>,
    /// Each host's cumulative energy at the last epoch boundary, so
    /// the epoch pass books per-epoch *deltas*.
    host_energy_prev: Vec<f64>,
    /// Running fleet energy total (sum of the per-epoch deltas).
    host_energy_acc: f64,
    /// Running sum of the per-epoch mean loads (percent), for
    /// [`Fleet::mean_load_pct`] without retaining the series.
    epoch_mean_sum: f64,
    epochs_run: usize,
    elapsed: SimDuration,
    migrations: Vec<MigrationRecord>,
    load_series: TimeSeries,
    /// Every per-host-epoch absolute load (percent), sketched: the
    /// bounded-memory load distribution at any population.
    load_sketch: Sketch,
    /// The zone each host belongs to under sharded placement; empty
    /// when the global controller placed the fleet.
    zone_of_host: Vec<Option<usize>>,
    /// Spec indices re-placed through the coordinator's spill path.
    spilled: Vec<usize>,
    /// Fleet-level tracer (stream 0): controller events — placement,
    /// migration timeline, epoch boundaries, SLA verdict. `None` keeps
    /// the controller's hot path free of tracing branches.
    tracer: Option<Tracer>,
}

impl Fleet {
    /// Places `specs` with the configured policy and instantiates one
    /// host per placement bin, each VM running its (possibly stepped)
    /// demand under its booked credit.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, or if any booking is outside
    /// `[0.01, 0.95]` of one host — the range a single host's
    /// scheduler can actually enforce. Rejecting such specs up front
    /// keeps the SLA accounting ([`Fleet::totals`]) consistent with
    /// what the hosts were configured to deliver.
    #[must_use]
    pub fn build(cfg: FleetConfig, specs: &[VmSpec]) -> Fleet {
        assert!(!specs.is_empty(), "a fleet needs at least one VM");
        for spec in specs {
            assert!(
                (0.01..=0.95).contains(&spec.credit_frac),
                "booking for {:?} is {}, outside the enforceable [0.01, 0.95] of one host",
                spec.name,
                spec.credit_frac
            );
        }
        let (placement, zone_of_host, spilled) = match &cfg.sharding {
            Some(sc) => {
                let sp = shard::place_sharded(cfg.policy, specs, cfg.capacity, sc);
                (sp.placement, sp.zone_of_host, sp.spilled)
            }
            None => (
                cfg.policy.place(specs, cfg.capacity),
                Vec::new(),
                Vec::new(),
            ),
        };
        let mut hosts = Vec::with_capacity(placement.host_count());
        let mut residency: Vec<Vec<(usize, VmId)>> = vec![Vec::new(); specs.len()];
        let mut mem_used = Vec::new();
        let mut credit_booked = Vec::new();
        for (h, bin) in placement.hosts.iter().enumerate() {
            let mut host = cfg.build_host();
            let fmax = host.fmax_mcps();
            for &i in bin {
                let spec = &specs[i];
                let credit = Credit::percent(spec.credit_frac * 100.0);
                let work: Box<dyn WorkSource> = if spec.steps.is_empty() {
                    Box::new(ConstantDemand::new(spec.cpu_frac * fmax))
                } else {
                    Box::new(SteppedDemand {
                        spec: spec.clone(),
                        fmax_mcps: fmax,
                    })
                };
                let id = host.add_vm(VmConfig::new(spec.name.clone(), credit), work);
                residency[i].push((h, id));
            }
            mem_used.push(placement.mem_used(specs, h));
            credit_booked.push(bin.iter().map(|&i| specs[i].credit_frac).sum());
            hosts.push(host);
        }
        for _ in 0..cfg.spare_hosts {
            hosts.push(cfg.build_host());
            mem_used.push(0.0);
            credit_booked.push(0.0);
        }
        let n = hosts.len();
        let mut resident: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (h, bin) in placement.hosts.iter().enumerate() {
            resident[h] = bin.clone();
        }
        Fleet {
            cfg,
            specs: specs.to_vec(),
            hosts,
            placement,
            residency,
            mem_used,
            credit_booked,
            host_load: vec![0.0; n],
            resident,
            host_energy_prev: vec![0.0; n],
            host_energy_acc: 0.0,
            epoch_mean_sum: 0.0,
            epochs_run: 0,
            elapsed: SimDuration::from_secs(0),
            migrations: Vec::new(),
            load_series: TimeSeries::new("fleet_mean_load_pct"),
            load_sketch: Sketch::new(DEFAULT_ALPHA),
            zone_of_host,
            spilled,
            tracer: None,
        }
    }

    /// Installs tracers on the fleet stream and on every host, each a
    /// bounded ring of `capacity` events (see [`trace::Tracer`]); the
    /// placement is recorded immediately, one `placement` event per
    /// VM in host-major order. Tracing never changes the simulation —
    /// only observes it — so traced and untraced runs are
    /// bit-identical in every artefact.
    pub fn enable_tracing(&mut self, capacity: usize) {
        let mut tracer = Tracer::new(0, capacity);
        let at_s = self.elapsed.as_secs_f64();
        for (h, i) in self.placement.assignments() {
            tracer.record(
                at_s,
                EventKind::Placement {
                    vm: self.specs[i].name.as_str().into(),
                    to_host: h,
                    zone: self.zone_of_host.get(h).copied().flatten(),
                    spilled: self.spilled.contains(&i),
                },
            );
        }
        self.tracer = Some(tracer);
        for (h, host) in self.hosts.iter_mut().enumerate() {
            host.set_tracer(Tracer::new(h + 1, capacity).with_host(h));
        }
    }

    /// Turns wall-clock phase profiling on for every host (see
    /// [`hypervisor::HostPerf`]). Profiling measures real time and is
    /// **not** deterministic — its output must stay out of every
    /// byte-compared artefact; the campaign layer writes it to the
    /// separate `<name>-profile.json`.
    pub fn enable_profiling(&mut self) {
        for host in &mut self.hosts {
            host.set_profiling(true);
        }
    }

    /// Fleet-wide phase timings and fused-slice count: the sum of
    /// every host's [`Host::perf`] counters, plus the total number of
    /// slices the event core committed through its fused replay loop.
    #[must_use]
    pub fn perf_totals(&self) -> (HostPerf, u64) {
        let mut perf = HostPerf::default();
        let mut fused = 0;
        for host in &self.hosts {
            perf.absorb(host.perf());
            fused += host.fused_slices();
        }
        (perf, fused)
    }

    /// `true` once [`Fleet::enable_tracing`] has installed tracers.
    #[must_use]
    pub fn is_tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Uninstalls every tracer and merges their streams into one
    /// time-ordered [`Trace`]. A final `sla_violation` event is
    /// recorded first if the run's delivered/entitled ratio fell
    /// short. Returns `None` when tracing was never enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.tracer.as_ref()?;
        let totals = self.totals();
        let mut fleet_tracer = self.tracer.take().expect("checked above");
        if totals.sla_ratio < 1.0 - 1e-9 {
            fleet_tracer.record(
                self.elapsed.as_secs_f64(),
                EventKind::SlaViolation {
                    sla_ratio: totals.sla_ratio,
                },
            );
        }
        let mut tracers = vec![fleet_tracer];
        for host in &mut self.hosts {
            if let Some(t) = host.take_tracer() {
                tracers.push(t);
            }
        }
        Some(Trace::merge(tracers))
    }

    /// Number of hosts the placement opened.
    #[must_use]
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The placement the fleet was built from.
    #[must_use]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Completed migrations, in decision order.
    #[must_use]
    pub fn migrations(&self) -> &[MigrationRecord] {
        &self.migrations
    }

    /// Mean *absolute* host load per epoch, percent of fmax capacity
    /// (one point per completed epoch). The absolute measure is what
    /// the controller triggers on: a PAS host 100% busy at a reduced
    /// frequency is not overloaded — it has fmax headroom.
    ///
    /// Empty when the fleet runs with
    /// [`bounded_stats`](FleetConfig::bounded_stats): the series is
    /// the one per-epoch accumulator whose memory grows with run
    /// length, so scale runs keep only [`Fleet::mean_load_pct`] and
    /// [`Fleet::load_sketch`].
    #[must_use]
    pub fn load_series(&self) -> &TimeSeries {
        &self.load_series
    }

    /// Mean of the per-epoch mean loads, percent of fmax capacity.
    /// Maintained as a running sum — identical to averaging
    /// [`Fleet::load_series`], but available in bounded-stats mode
    /// too. `0.0` before the first epoch completes.
    #[must_use]
    pub fn mean_load_pct(&self) -> f64 {
        if self.epochs_run == 0 {
            0.0
        } else {
            self.epoch_mean_sum / self.epochs_run as f64
        }
    }

    /// The sketched distribution of every per-host-epoch absolute
    /// load (percent): bounded memory at any population, mergeable
    /// across shards and campaigns.
    #[must_use]
    pub fn load_sketch(&self) -> &Sketch {
        &self.load_sketch
    }

    /// Total statistic points the fleet currently retains: load-series
    /// points, per-host snapshots and sketch buckets. The regression
    /// guard for the O(sketch) memory claim — in bounded-stats mode
    /// this must not scale with epoch count.
    #[must_use]
    pub fn retained_stat_points(&self) -> usize {
        self.load_series.len()
            + self
                .hosts
                .iter()
                .map(|h| h.stats().snapshots().len())
                .sum::<usize>()
            + self.load_sketch.bucket_count()
    }

    /// Simulated fleet time so far.
    #[must_use]
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Advances the whole fleet by `epochs` control epochs, simulating
    /// hosts on up to `jobs` worker threads. The controller (load
    /// measurement, migration) runs serially between epochs, so the
    /// result is byte-identical for every `jobs` value.
    pub fn run_epochs(&mut self, epochs: usize, jobs: usize) {
        for _ in 0..epochs {
            let epoch = self.cfg.epoch;
            if self.cfg.idle_fast_path {
                // Dormant hosts cost next to nothing to simulate —
                // advance them inline and spend the worker pool on the
                // hosts that actually execute work. With the event
                // core on, "dormant" is next-event-driven: no VM on
                // the host can run before the epoch ends (this covers
                // quiescent hosts, spares, *and* hosts whose sources
                // trickle demand too slowly to wake a VM this epoch).
                // Without it, only provably-dead quiescent hosts stay
                // inline. The forecast routes *where* a host runs,
                // never what it computes — each host is independent
                // and runs the same `run_for` either way, so the
                // split cannot change results.
                let event_core = self.cfg.event_core;
                let mut busy: Vec<&mut Host> = Vec::new();
                for host in &mut self.hosts {
                    let dormant = if event_core {
                        let end = host.now() + epoch;
                        host.next_vm_wake(end) >= end
                    } else {
                        host.is_quiescent()
                    };
                    if dormant {
                        host.run_for(epoch);
                    } else {
                        busy.push(host);
                    }
                }
                exec::for_each_mut(jobs, &mut busy, |_, host| host.run_for(epoch));
            } else {
                exec::for_each_mut(jobs, &mut self.hosts, |_, host| host.run_for(epoch));
            }
            self.elapsed += epoch;

            // One serial pass over the hosts books everything the
            // epoch changed: the absolute (fmax-normalised) load —
            // the same unit as the specs' demand/credit fractions;
            // wall-clock busy time would read a PAS host at low
            // frequency as "overloaded" when it merely parked the
            // frequency — plus the per-epoch energy delta, so totals
            // never rescan, and the load sketch. The buffer is reused
            // across epochs and the sum runs in host-index order, so
            // the values are bit-identical to the collect-then-sum
            // they replace.
            self.host_load.clear();
            let mut load_sum = 0.0;
            for (h, host) in self.hosts.iter_mut().enumerate() {
                let load = host.take_external_load().1 / 100.0;
                self.host_load.push(load);
                load_sum += load;
                self.load_sketch.push(load * 100.0);
                let joules = host.cpu().energy().joules();
                self.host_energy_acc += joules - self.host_energy_prev[h];
                self.host_energy_prev[h] = joules;
            }
            let mean = load_sum / self.host_load.len() as f64;
            self.epoch_mean_sum += mean * 100.0;
            self.epochs_run += 1;
            if !self.cfg.bounded_stats {
                self.load_series
                    .push(self.elapsed.as_secs_f64(), mean * 100.0);
            }
            if let Some(tracer) = self.tracer.as_mut() {
                // The same `mean * 100.0` the series records, so the
                // trace and the artefacts can never disagree.
                tracer.record(
                    self.elapsed.as_secs_f64(),
                    EventKind::EpochEnd {
                        epoch: (self.epochs_run - 1) as u64,
                        mean_load_pct: mean * 100.0,
                    },
                );
            }

            if let Some(trigger) = self.cfg.trigger {
                self.rebalance(&trigger);
            }
        }
    }

    /// One controller pass: every overloaded host sheds its hottest
    /// VM to the least-loaded admissible host. At most one migration
    /// per source host per epoch (pre-copy takes most of an epoch
    /// anyway).
    fn rebalance(&mut self, trigger: &MigrationTrigger) {
        let now_s = self.elapsed.as_secs_f64();
        for src in 0..self.hosts.len() {
            if !trigger.overloaded(self.host_load[src]) {
                continue;
            }
            // The hottest VM currently resident on `src` (ties go to
            // the lowest spec index — deterministic). The per-host
            // resident index makes this O(residents), not O(fleet):
            // the comparator is a total order on (demand, -index), so
            // the winner is independent of the index's internal order.
            let candidate = self.resident[src].iter().copied().max_by(|&a, &b| {
                let da = self.specs[a].demand_at(now_s);
                let db = self.specs[b].demand_at(now_s);
                f64::total_cmp(&da, &db).then(b.cmp(&a))
            });
            let Some(vm_idx) = candidate else { continue };
            let spec_mem = self.specs[vm_idx].mem_gib;
            let spec_credit = self.specs[vm_idx].credit_frac;
            let spec_demand = self.specs[vm_idx].demand_at(now_s);

            // Least-loaded destination with room in both dimensions
            // that stays under the target watermark.
            let dst = (0..self.hosts.len())
                .filter(|&d| d != src)
                .filter(|&d| {
                    self.mem_used[d] + spec_mem <= self.cfg.capacity.mem_gib + 1e-12
                        && self.credit_booked[d] + spec_credit <= self.cfg.capacity.cpu_frac + 1e-12
                        // Admission is judged on the *booked* credit,
                        // not today's demand: the destination must
                        // stay under the watermark even when the VM
                        // later uses its whole booking.
                        && trigger.admissible(self.host_load[d], spec_credit)
                })
                .min_by(|&a, &b| {
                    f64::total_cmp(&self.host_load[a], &self.host_load[b]).then(a.cmp(&b))
                });
            let Some(dst) = dst else { continue };

            let &(_, src_id) = self.residency[vm_idx].last().expect("resident");
            let moved = self.hosts[src].extract_vm(src_id);
            let new_id = self.hosts[dst].admit_vm(moved);
            self.residency[vm_idx].push((dst, new_id));
            let slot = self.resident[src]
                .iter()
                .position(|&i| i == vm_idx)
                .expect("indexed");
            self.resident[src].swap_remove(slot);
            self.resident[dst].push(vm_idx);
            self.mem_used[src] -= spec_mem;
            self.mem_used[dst] += spec_mem;
            self.credit_booked[src] -= spec_credit;
            self.credit_booked[dst] += spec_credit;
            // Keep the in-epoch load estimates honest so a second
            // overloaded host doesn't pile onto the same destination.
            self.host_load[src] = (self.host_load[src] - spec_demand).max(0.0);
            self.host_load[dst] += spec_demand;

            let rec = MigrationRecord {
                at_s: now_s,
                vm: self.specs[vm_idx].name.clone(),
                from: src,
                to: dst,
                mem_gib: spec_mem,
                copy_time_s: self.cfg.cost.copy_time_s(spec_mem),
                downtime_s: self.cfg.cost.downtime_s,
                energy_j: self.cfg.cost.energy_j(spec_mem),
            };
            if let Some(tracer) = self.tracer.as_mut() {
                let vm_tag = trace::VmName::from(rec.vm.as_str());
                tracer.record(
                    rec.at_s,
                    EventKind::MigrationStart {
                        vm: vm_tag.clone(),
                        from_host: rec.from,
                        to_host: rec.to,
                        mem_gib: rec.mem_gib,
                        copy_s: rec.copy_time_s,
                    },
                );
                tracer.record(
                    rec.blackout_at_s(),
                    EventKind::MigrationBlackout {
                        vm: vm_tag.clone(),
                        downtime_s: rec.downtime_s,
                    },
                );
                tracer.record(
                    rec.finish_at_s(),
                    EventKind::MigrationFinish {
                        vm: vm_tag,
                        from_host: rec.from,
                        to_host: rec.to,
                        energy_j: rec.energy_j,
                    },
                );
            }
            self.migrations.push(rec);
        }
    }

    /// The fleet-wide bill and service record so far.
    ///
    /// Energy comes from the running per-epoch delta accounting in
    /// [`Fleet::run_epochs`] — no per-host rescan — so this is cheap
    /// to call every epoch even at datacenter population. The SLA
    /// ratio still walks the residency history once per call: it is a
    /// whole-run integral, not a per-epoch quantity.
    #[must_use]
    pub fn totals(&self) -> FleetTotals {
        let host_energy_j: f64 = self.host_energy_acc + 0.0;
        // `+ 0.0` normalises the empty sum (std's additive identity is
        // -0.0, which would print and serialise as "-0").
        let migration_energy_j: f64 = self.migrations.iter().map(|m| m.energy_j).sum::<f64>() + 0.0;
        let downtime_s: f64 = self.migrations.iter().map(|m| m.downtime_s).sum::<f64>() + 0.0;

        let total_s = self.elapsed.as_secs_f64();
        let mut delivered = 0.0;
        let mut entitled = 0.0;
        for (i, spec) in self.specs.iter().enumerate() {
            // Each residency segment's absolute fraction is taken over
            // the host's whole elapsed time, and the retired source
            // slot does no further work after extraction — so
            // fraction × elapsed sums to the VM's true busy integral.
            for &(h, id) in &self.residency[i] {
                delivered += self.hosts[h].stats().vm_absolute_fraction(id) * total_s;
            }
            // Entitlement: min(booked credit, demand) integrated over
            // the run, in fmax-seconds.
            entitled += spec.integrated_demand(0.0, total_s, Some(spec.credit_frac));
        }
        FleetTotals {
            energy_j: host_energy_j + migration_energy_j,
            host_energy_j,
            migration_energy_j,
            migration_count: self.migrations.len(),
            downtime_s,
            sla_ratio: if entitled > 0.0 {
                delivered / entitled
            } else {
                1.0
            },
        }
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("hosts", &self.hosts.len())
            .field("vms", &self.specs.len())
            .field("elapsed", &self.elapsed)
            .field("migrations", &self.migrations.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lazy_fleet(n: usize) -> Vec<VmSpec> {
        (0..n)
            .map(|i| VmSpec::new(format!("vm{i}"), 4.0, 0.04 + 0.005 * (i % 4) as f64))
            .collect()
    }

    #[test]
    fn build_places_every_vm() {
        let specs = lazy_fleet(12);
        let fleet = Fleet::build(FleetConfig::pas_defaults(), &specs);
        assert_eq!(fleet.host_count(), 3);
        let placed: usize = fleet.placement().hosts.iter().map(Vec::len).sum();
        assert_eq!(placed, 12);
    }

    #[test]
    #[should_panic(expected = "outside the enforceable")]
    fn unenforceable_booking_is_rejected_at_build() {
        let specs = vec![VmSpec::new("whole-host", 4.0, 1.0)];
        let _ = Fleet::build(FleetConfig::pas_defaults(), &specs);
    }

    #[test]
    fn parallel_and_serial_runs_are_identical() {
        let specs = lazy_fleet(12);
        let run = |jobs: usize| {
            let mut fleet = Fleet::build(FleetConfig::pas_defaults(), &specs);
            fleet.run_epochs(3, jobs);
            fleet.totals()
        };
        let serial = run(1);
        for jobs in [2, 4, 8] {
            let parallel = run(jobs);
            assert_eq!(
                serial.energy_j.to_bits(),
                parallel.energy_j.to_bits(),
                "jobs={jobs}"
            );
            assert_eq!(
                serial.sla_ratio.to_bits(),
                parallel.sla_ratio.to_bits(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn pas_fleet_spends_less_than_performance_fleet() {
        let specs = lazy_fleet(12);
        let mut pas = Fleet::build(FleetConfig::pas_defaults(), &specs);
        let mut perf = Fleet::build(FleetConfig::performance_defaults(), &specs);
        pas.run_epochs(4, 2);
        perf.run_epochs(4, 2);
        let (e_pas, e_perf) = (pas.totals().energy_j, perf.totals().energy_j);
        assert!(
            e_pas < 0.95 * e_perf,
            "PAS saves fleet-wide: {e_pas} vs {e_perf}"
        );
        assert!(pas.totals().sla_ratio > 0.9, "and still delivers");
    }

    #[test]
    fn surge_triggers_migration_and_restores_sla() {
        // Equal 5-GiB footprints put the first three VMs on host 0
        // (16 GiB) and the fourth alone on host 1. Bookings exceed
        // steady demand (normal hosting headroom), so when the surger
        // jumps to its full booking, host 0 saturates — overload —
        // while host 1 idles.
        let specs = vec![
            VmSpec::new("surger", 5.0, 0.25)
                .with_credit_frac(0.60)
                .with_steps(vec![(30.0, 0.60)]),
            VmSpec::new("steady-a", 5.0, 0.25).with_credit_frac(0.35),
            VmSpec::new("steady-b", 5.0, 0.25).with_credit_frac(0.35),
            VmSpec::new("quiet", 5.0, 0.05).with_credit_frac(0.20),
        ];

        let base = FleetConfig::performance_defaults();
        let run = |trigger: Option<MigrationTrigger>| {
            let mut cfg = base.clone();
            cfg.trigger = trigger;
            let mut fleet = Fleet::build(cfg, &specs);
            fleet.run_epochs(8, 2); // 240 s
            (fleet.totals(), fleet.migrations().len())
        };

        let (without, m0) = run(None);
        let (with, m1) = run(Some(MigrationTrigger::default()));
        assert_eq!(m0, 0);
        assert!(m1 >= 1, "the surge must trip the trigger");
        assert!(
            with.sla_ratio > without.sla_ratio + 0.02,
            "migration restores entitlements: {} vs {}",
            with.sla_ratio,
            without.sla_ratio
        );
        assert!(with.migration_energy_j > 0.0);
        assert!(with.downtime_s > 0.0);
    }

    #[test]
    fn pas_fleet_with_trigger_does_not_phantom_migrate() {
        // PAS parks the frequency and runs hosts near 100% *busy*
        // while they have ample fmax headroom. The trigger judges
        // absolute (fmax-normalised) load, so a lazy PAS fleet must
        // never migrate — wall-clock busy time would churn here.
        let specs = lazy_fleet(12);
        let cfg = FleetConfig::pas_defaults().with_trigger(MigrationTrigger::default());
        let mut fleet = Fleet::build(cfg, &specs);
        fleet.run_epochs(6, 2);
        assert_eq!(fleet.migrations().len(), 0, "no phantom overload");
        assert!(fleet.totals().sla_ratio > 0.9);
    }

    #[test]
    fn idle_fast_path_is_bit_exact_and_jobs_invariant() {
        // Idle-heavy: one working host plus six quiescent spares. The
        // fast path (quiescent hosts advanced inline via the
        // hypervisor's idle skip) must match the slice-exact path bit
        // for bit, at every job count.
        let specs = lazy_fleet(4);
        let run = |fast: bool, jobs: usize| {
            let cfg = FleetConfig::performance_defaults()
                .with_spares(6)
                .with_idle_fast_path(fast);
            let mut fleet = Fleet::build(cfg, &specs);
            fleet.run_epochs(4, jobs);
            (fleet.totals(), fleet.load_series().points().to_vec())
        };
        let (t_exact, s_exact) = run(false, 1);
        for (fast, jobs) in [(true, 1), (true, 4), (false, 4)] {
            let (t, s) = run(fast, jobs);
            assert_eq!(
                t.energy_j.to_bits(),
                t_exact.energy_j.to_bits(),
                "energy, fast={fast} jobs={jobs}"
            );
            assert_eq!(t.sla_ratio.to_bits(), t_exact.sla_ratio.to_bits());
            assert_eq!(s.len(), s_exact.len());
            for (a, b) in s.iter().zip(&s_exact) {
                assert_eq!(a.0.to_bits(), b.0.to_bits());
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "fast={fast} jobs={jobs}");
            }
        }
    }

    #[test]
    fn event_core_is_bit_exact_and_jobs_invariant() {
        // Mixed fleet: steady constant-demand workers (fusable), one
        // stepped VM (unfusable — exercises the conservative
        // wake-now forecast) and quiescent spares (dormant — advanced
        // inline by the next-event skip). The event core must match
        // the slice-exact core bit for bit, at every job count.
        let mut specs = lazy_fleet(8);
        specs.push(VmSpec::new("surge", 4.0, 0.05).with_steps(vec![(60.0, 0.40), (90.0, 0.05)]));
        let run = |on: bool, jobs: usize| {
            let cfg = FleetConfig::pas_defaults()
                .with_spares(3)
                .with_event_core(on);
            let mut fleet = Fleet::build(cfg, &specs);
            fleet.run_epochs(5, jobs);
            (fleet.totals(), fleet.load_series().points().to_vec())
        };
        let (t_exact, s_exact) = run(false, 1);
        for (on, jobs) in [(true, 1), (true, 4), (false, 4)] {
            let (t, s) = run(on, jobs);
            assert_eq!(
                t.energy_j.to_bits(),
                t_exact.energy_j.to_bits(),
                "energy, event_core={on} jobs={jobs}"
            );
            assert_eq!(t.sla_ratio.to_bits(), t_exact.sla_ratio.to_bits());
            assert_eq!(s.len(), s_exact.len());
            for (a, b) in s.iter().zip(&s_exact) {
                assert_eq!(a.0.to_bits(), b.0.to_bits());
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "event_core={on} jobs={jobs}");
            }
        }
    }

    #[test]
    fn load_series_has_one_point_per_epoch() {
        let specs = lazy_fleet(8);
        let mut fleet = Fleet::build(FleetConfig::pas_defaults(), &specs);
        fleet.run_epochs(5, 2);
        assert_eq!(fleet.load_series().len(), 5);
        assert_eq!(fleet.elapsed(), SimDuration::from_secs(150));
    }

    #[test]
    fn mean_load_matches_the_series_mean_bit_for_bit() {
        let specs = lazy_fleet(12);
        let mut fleet = Fleet::build(FleetConfig::pas_defaults(), &specs);
        fleet.run_epochs(6, 2);
        let pts = fleet.load_series().points();
        let series_mean = pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64;
        assert_eq!(fleet.mean_load_pct().to_bits(), series_mean.to_bits());
    }

    #[test]
    fn load_sketch_sees_one_sample_per_host_epoch() {
        let specs = lazy_fleet(8);
        let mut fleet = Fleet::build(FleetConfig::pas_defaults(), &specs);
        let hosts = fleet.host_count();
        fleet.run_epochs(5, 1);
        assert_eq!(fleet.load_sketch().len(), hosts * 5);
    }

    #[test]
    fn sharded_fleet_runs_and_matches_single_shard() {
        let specs = lazy_fleet(24);
        let run = |shards: usize, jobs: usize| {
            let cfg = FleetConfig::pas_defaults().with_sharding(ShardConfig::new(shards));
            let mut fleet = Fleet::build(cfg, &specs);
            fleet.run_epochs(3, jobs);
            (fleet.totals(), fleet.load_series().points().to_vec())
        };
        let (t1, s1) = run(1, 1);
        for (shards, jobs) in [(4, 1), (16, 4)] {
            let (t, s) = run(shards, jobs);
            assert_eq!(
                t.energy_j.to_bits(),
                t1.energy_j.to_bits(),
                "shards={shards} jobs={jobs}"
            );
            assert_eq!(t.sla_ratio.to_bits(), t1.sla_ratio.to_bits());
            assert_eq!(s.len(), s1.len());
            for (a, b) in s.iter().zip(&s1) {
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }

    fn surge_specs() -> Vec<VmSpec> {
        vec![
            VmSpec::new("surger", 5.0, 0.25)
                .with_credit_frac(0.60)
                .with_steps(vec![(30.0, 0.60)]),
            VmSpec::new("steady-a", 5.0, 0.25).with_credit_frac(0.35),
            VmSpec::new("steady-b", 5.0, 0.25).with_credit_frac(0.35),
            VmSpec::new("quiet", 5.0, 0.05).with_credit_frac(0.20),
        ]
    }

    #[test]
    fn traced_fleet_records_placement_epochs_and_migration_timeline() {
        let specs = surge_specs();
        let cfg = FleetConfig::performance_defaults().with_trigger(MigrationTrigger::default());
        let mut fleet = Fleet::build(cfg, &specs);
        fleet.enable_tracing(trace::DEFAULT_CAPACITY);
        assert!(fleet.is_tracing());
        fleet.run_epochs(8, 2);
        let migrations = fleet.migrations().len();
        assert!(migrations >= 1, "the surge must trip the trigger");
        let trace = fleet.take_trace().expect("tracing was enabled");
        assert!(!fleet.is_tracing(), "take_trace uninstalls");

        let count = |name: &str| {
            trace
                .events()
                .iter()
                .filter(|e| e.kind.name() == name)
                .count()
        };
        assert_eq!(count("placement"), specs.len(), "one per VM");
        assert_eq!(count("epoch_end"), 8, "one per epoch");
        assert_eq!(count("migration_start"), migrations);
        assert_eq!(count("migration_blackout"), migrations);
        assert_eq!(count("migration_finish"), migrations);
        assert!(count("sched_pick") > 0, "host streams are merged in");
        // Fleet-stream events carry no host tag; host streams do.
        assert!(trace
            .events()
            .iter()
            .filter(|e| e.stream == 0)
            .all(|e| e.host.is_none()));
        assert!(trace
            .events()
            .iter()
            .filter(|e| e.stream > 0)
            .all(|e| e.host == Some(e.stream - 1)));
        // And the merge is time-ordered.
        for pair in trace.events().windows(2) {
            assert!(pair[0].at_s <= pair[1].at_s);
        }
    }

    #[test]
    fn tracing_never_changes_the_fleet_simulation() {
        let specs = surge_specs();
        let run = |traced: bool| {
            let cfg = FleetConfig::performance_defaults().with_trigger(MigrationTrigger::default());
            let mut fleet = Fleet::build(cfg, &specs);
            if traced {
                fleet.enable_tracing(64);
            }
            fleet.run_epochs(6, 2);
            fleet.totals()
        };
        let (plain, traced) = (run(false), run(true));
        assert_eq!(plain.energy_j.to_bits(), traced.energy_j.to_bits());
        assert_eq!(plain.sla_ratio.to_bits(), traced.sla_ratio.to_bits());
        assert_eq!(plain.migration_count, traced.migration_count);
    }

    #[test]
    fn trace_jsonl_is_identical_across_jobs_and_shards() {
        let specs = lazy_fleet(24);
        let run = |shards: usize, jobs: usize| {
            let cfg = FleetConfig::pas_defaults().with_sharding(ShardConfig::new(shards));
            let mut fleet = Fleet::build(cfg, &specs);
            fleet.enable_tracing(trace::DEFAULT_CAPACITY);
            fleet.run_epochs(3, jobs);
            let t = fleet.take_trace().expect("traced");
            trace::render_jsonl("fleet-test", &[(None, &t)])
        };
        let base = run(1, 1);
        assert!(base.contains("\"event\":\"epoch_end\""));
        for (shards, jobs) in [(1, 8), (4, 2), (16, 4)] {
            assert_eq!(base, run(shards, jobs), "shards={shards} jobs={jobs}");
        }
    }

    /// The O(sketch) memory claim: in bounded-stats mode the retained
    /// statistic state must not grow with epoch count — a 10× longer
    /// run keeps the same footprint (regression guard for routing the
    /// fleet's per-epoch series through the sketch path).
    #[test]
    fn bounded_stats_memory_does_not_scale_with_epochs() {
        let specs = lazy_fleet(12);
        let run = |epochs: usize| {
            let cfg = FleetConfig::pas_defaults().with_bounded_stats(true);
            let mut fleet = Fleet::build(cfg, &specs);
            fleet.run_epochs(epochs, 2);
            fleet
        };
        let short = run(4);
        let long = run(40);
        assert_eq!(short.load_series().len(), 0, "series is not recorded");
        assert_eq!(long.load_series().len(), 0);
        assert!(
            long.retained_stat_points() <= short.retained_stat_points(),
            "10× the epochs must not retain more state: {} vs {}",
            long.retained_stat_points(),
            short.retained_stat_points()
        );
        // The statistics themselves are still available and sane.
        assert!(long.mean_load_pct() > 0.0);
        assert_eq!(long.load_sketch().len(), 40 * long.host_count());
        // And the store-all mode really does grow with epochs, so the
        // guard above is meaningful.
        let unbounded = {
            let mut fleet = Fleet::build(FleetConfig::pas_defaults(), &specs);
            fleet.run_epochs(40, 2);
            fleet
        };
        assert!(unbounded.retained_stat_points() > long.retained_stat_points());
    }
}
