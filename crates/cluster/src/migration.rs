//! Load-triggered live migration: when to move a VM, and what the move
//! costs.
//!
//! The trigger watches per-host busy fractions over a control epoch;
//! the cost model is the standard pre-copy accounting — the copy runs
//! at link speed while the VM keeps serving, then a short stop-and-copy
//! blackout switches hosts. The fleet charges the copy's energy to the
//! fleet-wide bill and books the blackout as violation time, so the
//! migration experiment can weigh the SLA win against its price.

/// When a host is overloaded enough to shed a VM.
///
/// # Example
///
/// ```
/// use cluster::migration::MigrationTrigger;
/// let trigger = MigrationTrigger::default();
/// assert!(!trigger.overloaded(0.70));
/// assert!(trigger.overloaded(0.95));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationTrigger {
    /// Busy fraction (0–1) above which a host sheds load.
    pub cpu_high_watermark: f64,
    /// Busy fraction a *destination* host must stay under after
    /// receiving the VM's booked credit, so a migration never creates
    /// the overload it cures.
    pub cpu_target_watermark: f64,
}

impl Default for MigrationTrigger {
    /// Shed above 85% busy; only onto hosts that stay under 70%.
    fn default() -> Self {
        MigrationTrigger {
            cpu_high_watermark: 0.85,
            cpu_target_watermark: 0.70,
        }
    }
}

impl MigrationTrigger {
    /// `true` if a host at `busy_frac` should shed a VM.
    #[must_use]
    pub fn overloaded(&self, busy_frac: f64) -> bool {
        busy_frac > self.cpu_high_watermark
    }

    /// `true` if a destination at `busy_frac` can absorb `extra_frac`
    /// more booked load without passing the target watermark.
    #[must_use]
    pub fn admissible(&self, busy_frac: f64, extra_frac: f64) -> bool {
        busy_frac + extra_frac <= self.cpu_target_watermark
    }
}

/// The pre-copy cost model.
///
/// # Example
///
/// ```
/// use cluster::migration::MigrationCostModel;
/// let m = MigrationCostModel::gigabit_defaults();
/// // A 4-GiB VM over 1 GbE: ~32 s of copy, sub-second blackout.
/// assert!((m.copy_time_s(4.0) - 32.0).abs() < 1e-9);
/// assert!(m.downtime_s < 1.0);
/// assert!(m.energy_j(4.0) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationCostModel {
    /// Seconds to copy one GiB of guest memory over the migration
    /// link.
    pub secs_per_gib: f64,
    /// Stop-and-copy blackout, seconds; booked as violation time.
    pub downtime_s: f64,
    /// Energy the copy costs (NIC + memory traffic on both ends),
    /// joules per GiB.
    pub energy_j_per_gib: f64,
}

impl MigrationCostModel {
    /// Xen pre-copy over gigabit Ethernet: ~125 MiB/s of copy
    /// bandwidth (8 s/GiB), a 300 ms blackout, ~20 J/GiB of transfer
    /// energy.
    #[must_use]
    pub fn gigabit_defaults() -> Self {
        MigrationCostModel {
            secs_per_gib: 8.0,
            downtime_s: 0.3,
            energy_j_per_gib: 20.0,
        }
    }

    /// Copy duration for a VM of `mem_gib`, seconds.
    #[must_use]
    pub fn copy_time_s(&self, mem_gib: f64) -> f64 {
        self.secs_per_gib * mem_gib
    }

    /// Transfer energy for a VM of `mem_gib`, joules.
    #[must_use]
    pub fn energy_j(&self, mem_gib: f64) -> f64 {
        self.energy_j_per_gib * mem_gib
    }
}

/// One completed migration, for the fleet's audit trail.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// Fleet time when the migration was decided, seconds.
    pub at_s: f64,
    /// Name of the VM that moved.
    pub vm: String,
    /// Source host index.
    pub from: usize,
    /// Destination host index.
    pub to: usize,
    /// Guest memory copied, GiB.
    pub mem_gib: f64,
    /// Copy duration, seconds.
    pub copy_time_s: f64,
    /// Blackout, seconds (booked as violation time).
    pub downtime_s: f64,
    /// Transfer energy, joules (booked on the fleet bill).
    pub energy_j: f64,
}

impl MigrationRecord {
    /// Fleet time when the pre-copy finishes and the stop-and-copy
    /// blackout begins, seconds.
    #[must_use]
    pub fn blackout_at_s(&self) -> f64 {
        self.at_s + self.copy_time_s
    }

    /// Fleet time when the VM resumes on the destination host,
    /// seconds.
    #[must_use]
    pub fn finish_at_s(&self) -> f64 {
        self.blackout_at_s() + self.downtime_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_watermarks_are_ordered() {
        let t = MigrationTrigger::default();
        assert!(t.cpu_target_watermark < t.cpu_high_watermark);
        assert!(t.overloaded(t.cpu_high_watermark + 0.01));
        assert!(!t.overloaded(t.cpu_high_watermark));
    }

    #[test]
    fn admissibility_accounts_for_the_incoming_credit() {
        let t = MigrationTrigger::default();
        assert!(t.admissible(0.4, 0.2));
        assert!(!t.admissible(0.6, 0.2));
    }

    #[test]
    fn costs_scale_with_memory() {
        let m = MigrationCostModel::gigabit_defaults();
        assert!(m.copy_time_s(8.0) > m.copy_time_s(4.0));
        assert!((m.energy_j(2.0) - 2.0 * m.energy_j_per_gib).abs() < 1e-12);
    }

    #[test]
    fn record_timeline_orders_start_blackout_finish() {
        let rec = MigrationRecord {
            at_s: 100.0,
            vm: "v".to_owned(),
            from: 0,
            to: 1,
            mem_gib: 4.0,
            copy_time_s: 32.0,
            downtime_s: 0.3,
            energy_j: 80.0,
        };
        assert!((rec.blackout_at_s() - 132.0).abs() < 1e-12);
        assert!((rec.finish_at_s() - 132.3).abs() < 1e-12);
        assert!(rec.at_s < rec.blackout_at_s() && rec.blackout_at_s() < rec.finish_at_s());
    }
}
