//! Sharded placement: per-zone shard controllers under a coordinator.
//!
//! The global controller in [`crate::placement`] sorts and packs the
//! whole spec list at once — fine at tens of hosts, a scaling wall at
//! datacenter population. This module splits the work the way a real
//! datacenter does:
//!
//! 1. VMs hash deterministically (FNV-1a over the VM name) onto a
//!    **fixed universe of virtual zones** ([`ShardConfig::virtual_zones`]),
//! 2. each **shard controller** owns a contiguous range of zones and
//!    packs every zone *independently* with the configured first-fit /
//!    best-fit-decreasing policy,
//! 3. the **coordinator** concatenates the zones' hosts in zone order
//!    and serially re-places any overflow a zone could not hold (only
//!    possible under [`ShardConfig::max_hosts_per_zone`]) — the
//!    spill path between zones.
//!
//! Because the zone universe is fixed and zones are packed
//! independently, the shard count is *pure worker partitioning*: the
//! resulting [`Placement`] is identical for 1, 4 or 16 shards, which
//! is exactly the property `tests/determinism.rs` pins. The trade
//! against the global controller is the classic sharding one: each
//! zone packs only its own VMs, so a sharded placement may open more
//! hosts than a global pass (bounded by one partially-filled host per
//! zone), in exchange for packing work that parallelises and never
//! sorts more than one zone's specs at a time.

use crate::exec;
use crate::placement::{HostCapacity, Placement, PlacementPolicy, VmSpec};

/// Default size of the fixed virtual-zone universe.
///
/// Large enough that 16 shard controllers still own 4 zones each,
/// small enough that near-empty zones stay cheap at small populations.
pub const DEFAULT_VIRTUAL_ZONES: usize = 64;

/// How the placement layer is sharded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shard controllers packing zones concurrently. Affects
    /// wall-clock only — never the resulting placement.
    pub shards: usize,
    /// Size of the fixed virtual-zone universe VM names hash onto.
    /// Changing this changes the placement; changing
    /// [`ShardConfig::shards`] does not.
    pub virtual_zones: usize,
    /// Per-zone host budget. A zone that would need more hosts spills
    /// the VMs it cannot hold to the coordinator, which re-places them
    /// across all zones. `None` means every zone grows freely and
    /// nothing ever spills.
    pub max_hosts_per_zone: Option<usize>,
}

impl ShardConfig {
    /// `shards` shard controllers over the default zone universe, no
    /// per-zone host cap.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard controller is required");
        ShardConfig {
            shards,
            virtual_zones: DEFAULT_VIRTUAL_ZONES,
            max_hosts_per_zone: None,
        }
    }

    /// Overrides the virtual-zone universe size.
    ///
    /// # Panics
    ///
    /// Panics if `zones` is zero.
    #[must_use]
    pub fn with_virtual_zones(mut self, zones: usize) -> Self {
        assert!(zones >= 1, "at least one virtual zone is required");
        self.virtual_zones = zones;
        self
    }

    /// Caps every zone at `cap` hosts; overflow spills to the
    /// coordinator.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_zone_host_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "a zone must be allowed at least one host");
        self.max_hosts_per_zone = Some(cap);
        self
    }
}

/// The virtual zone a VM name hashes to (FNV-1a 64 modulo `zones`).
///
/// Pure and stable: the same name maps to the same zone in every
/// process, so placements are reproducible across runs and machines.
///
/// # Panics
///
/// Panics if `zones` is zero.
#[must_use]
pub fn zone_of(name: &str, zones: usize) -> usize {
    assert!(zones >= 1, "at least one virtual zone is required");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % zones as u64) as usize
}

/// One zone's packing: open hosts (with booked totals) plus the spec
/// indices that did not fit under the zone's host cap.
struct ZonePacking {
    /// `(mem_used, cpu_used, spec indices)` per open host.
    hosts: Vec<(f64, f64, Vec<usize>)>,
    /// Spilled spec indices, in packing (decreasing-memory) order.
    overflow: Vec<usize>,
}

/// Packs one zone's members — the local half of a shard controller.
/// Identical fit/tie rules to [`PlacementPolicy::place`], restricted
/// to the zone and bounded by the optional host cap.
fn pack_zone(
    policy: PlacementPolicy,
    specs: &[VmSpec],
    members: &[usize],
    capacity: HostCapacity,
    host_cap: Option<usize>,
) -> ZonePacking {
    let mut order: Vec<usize> = members.to_vec();
    order.sort_by(|&a, &b| f64::total_cmp(&specs[b].mem_gib, &specs[a].mem_gib));

    let mut hosts: Vec<(f64, f64, Vec<usize>)> = Vec::new();
    let mut overflow = Vec::new();
    for idx in order {
        let need_mem = specs[idx].mem_gib;
        let need_cpu = specs[idx].cpu_frac;
        let may_open = host_cap.is_none_or(|cap| hosts.len() < cap);
        match find_target(policy, &mut hosts, capacity, need_mem, need_cpu) {
            Some(host) => {
                host.0 += need_mem;
                host.1 += need_cpu;
                host.2.push(idx);
            }
            None if may_open => hosts.push((need_mem, need_cpu, vec![idx])),
            None => overflow.push(idx),
        }
    }
    ZonePacking { hosts, overflow }
}

/// The open host `(mem, cpu, vms)` the policy would place into, if
/// any fits — the shared fit/tie kernel of zone packing and
/// coordinator spill.
fn find_target(
    policy: PlacementPolicy,
    hosts: &mut [(f64, f64, Vec<usize>)],
    capacity: HostCapacity,
    need_mem: f64,
    need_cpu: f64,
) -> Option<&mut (f64, f64, Vec<usize>)> {
    let fits = |mem: f64, cpu: f64| {
        mem + need_mem <= capacity.mem_gib + 1e-12 && cpu + need_cpu <= capacity.cpu_frac + 1e-12
    };
    match policy {
        PlacementPolicy::FirstFit => hosts.iter_mut().find(|h| fits(h.0, h.1)),
        PlacementPolicy::BestFit => hosts.iter_mut().filter(|h| fits(h.0, h.1)).min_by(|a, b| {
            let slack = |h: &(f64, f64, Vec<usize>)| {
                (capacity.mem_gib - h.0 - need_mem) / capacity.mem_gib
                    + (capacity.cpu_frac - h.1 - need_cpu) / capacity.cpu_frac
            };
            f64::total_cmp(&slack(a), &slack(b))
        }),
    }
}

/// A finished sharded placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedPlacement {
    /// The host bins, zone-major: every zone's hosts in zone order,
    /// then any hosts the coordinator opened for spilled VMs.
    pub placement: Placement,
    /// The zone each host belongs to; `None` for coordinator hosts.
    pub zone_of_host: Vec<Option<usize>>,
    /// Spec indices the coordinator re-placed after zone overflow, in
    /// spill order.
    pub spilled: Vec<usize>,
}

impl ShardedPlacement {
    /// `true` if spec index `idx` went through the coordinator's spill
    /// path instead of its home zone (the `spilled` flag on `placement`
    /// trace events).
    #[must_use]
    pub fn is_spilled(&self, idx: usize) -> bool {
        self.spilled.contains(&idx)
    }
}

/// Runs the sharded placement: hash to zones, pack each zone on its
/// shard controller, spill overflow through the coordinator.
///
/// Shard controllers run on `cfg.shards` worker threads via
/// [`exec::parallel_map`], whose index-ordered results make the
/// concatenation — and therefore the returned placement — independent
/// of both thread scheduling and the shard count itself.
#[must_use]
pub fn place_sharded(
    policy: PlacementPolicy,
    specs: &[VmSpec],
    capacity: HostCapacity,
    cfg: &ShardConfig,
) -> ShardedPlacement {
    let zones = cfg.virtual_zones;
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); zones];
    for (i, spec) in specs.iter().enumerate() {
        members[zone_of(&spec.name, zones)].push(i);
    }

    // Shard s owns the contiguous zone range [s·Z/S, (s+1)·Z/S): a
    // fixed partition of the fixed universe. Each shard packs its
    // zones independently, so the per-zone results — and hence
    // everything below — cannot depend on which shard owned a zone.
    let shards = cfg.shards.min(zones).max(1);
    let ranges: Vec<std::ops::Range<usize>> = (0..shards)
        .map(|s| (s * zones / shards)..((s + 1) * zones / shards))
        .collect();
    let members_ref = &members;
    let packed: Vec<Vec<ZonePacking>> = exec::parallel_map(shards, ranges, |_, range| {
        range
            .map(|z| {
                pack_zone(
                    policy,
                    specs,
                    &members_ref[z],
                    capacity,
                    cfg.max_hosts_per_zone,
                )
            })
            .collect()
    });

    // Coordinator: concatenate zone-major, then serially re-place the
    // overflow (zone order, packing order within a zone) across every
    // open host, opening coordinator hosts when nothing fits.
    let mut hosts: Vec<(f64, f64, Vec<usize>)> = Vec::new();
    let mut zone_of_host: Vec<Option<usize>> = Vec::new();
    let mut spilled = Vec::new();
    let mut zone = 0usize;
    for shard in packed {
        for packing in shard {
            zone_of_host.extend(std::iter::repeat_n(Some(zone), packing.hosts.len()));
            hosts.extend(packing.hosts);
            spilled.extend(packing.overflow);
            zone += 1;
        }
    }
    for &idx in &spilled {
        let need_mem = specs[idx].mem_gib;
        let need_cpu = specs[idx].cpu_frac;
        match find_target(policy, &mut hosts, capacity, need_mem, need_cpu) {
            Some(host) => {
                host.0 += need_mem;
                host.1 += need_cpu;
                host.2.push(idx);
            }
            None => {
                hosts.push((need_mem, need_cpu, vec![idx]));
                zone_of_host.push(None);
            }
        }
    }

    ShardedPlacement {
        placement: Placement {
            hosts: hosts.into_iter().map(|(_, _, vms)| vms).collect(),
        },
        zone_of_host,
        spilled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_fleet(n: usize) -> Vec<VmSpec> {
        (0..n)
            .map(|i| {
                let mem = [2.0, 4.0, 8.0][i % 3];
                VmSpec::new(format!("vm{i}"), mem, 0.03 + 0.01 * (i % 5) as f64)
            })
            .collect()
    }

    #[test]
    fn zone_hash_is_stable_and_in_range() {
        for zones in [1, 7, 64] {
            for i in 0..100 {
                let z = zone_of(&format!("vm{i}"), zones);
                assert!(z < zones);
                assert_eq!(z, zone_of(&format!("vm{i}"), zones), "stable");
            }
        }
    }

    #[test]
    fn every_vm_is_placed_exactly_once() {
        let specs = mixed_fleet(200);
        let cfg = ShardConfig::new(4).with_zone_host_cap(2);
        let sp = place_sharded(
            PlacementPolicy::FirstFit,
            &specs,
            HostCapacity::optiplex_defaults(),
            &cfg,
        );
        let mut seen: Vec<usize> = sp.placement.hosts.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn shard_count_never_changes_the_placement() {
        let specs = mixed_fleet(300);
        let cap = HostCapacity::optiplex_defaults();
        for policy in [PlacementPolicy::FirstFit, PlacementPolicy::BestFit] {
            let base = place_sharded(policy, &specs, cap, &ShardConfig::new(1));
            for shards in [2, 4, 16, 64, 1000] {
                let other = place_sharded(policy, &specs, cap, &ShardConfig::new(shards));
                assert_eq!(base, other, "{policy:?} with {shards} shards");
            }
        }
    }

    #[test]
    fn single_zone_matches_the_global_controller() {
        let specs = mixed_fleet(60);
        let cap = HostCapacity::optiplex_defaults();
        for policy in [PlacementPolicy::FirstFit, PlacementPolicy::BestFit] {
            let global = policy.place(&specs, cap);
            let sharded = place_sharded(
                policy,
                &specs,
                cap,
                &ShardConfig::new(3).with_virtual_zones(1),
            );
            assert_eq!(sharded.placement, global, "{policy:?}");
            assert!(sharded.spilled.is_empty());
        }
    }

    #[test]
    fn capacity_is_respected_on_every_host() {
        let specs = mixed_fleet(500);
        let cap = HostCapacity::optiplex_defaults();
        let sp = place_sharded(
            PlacementPolicy::BestFit,
            &specs,
            cap,
            &ShardConfig::new(8).with_zone_host_cap(1),
        );
        for h in 0..sp.placement.host_count() {
            assert!(sp.placement.mem_used(&specs, h) <= cap.mem_gib + 1e-9);
            assert!(sp.placement.cpu_used(&specs, h) <= cap.cpu_frac + 1e-9);
        }
        assert!(!sp.spilled.is_empty(), "a 1-host cap must spill");
    }

    #[test]
    fn zone_host_cap_bounds_every_zone() {
        let specs = mixed_fleet(400);
        let cfg = ShardConfig::new(4).with_zone_host_cap(2);
        let sp = place_sharded(
            PlacementPolicy::FirstFit,
            &specs,
            HostCapacity::optiplex_defaults(),
            &cfg,
        );
        let mut per_zone = vec![0usize; cfg.virtual_zones];
        for z in sp.zone_of_host.iter().flatten() {
            per_zone[*z] += 1;
        }
        assert!(per_zone.iter().all(|&n| n <= 2), "{per_zone:?}");
    }

    #[test]
    fn no_cap_means_no_spill() {
        let specs = mixed_fleet(150);
        let sp = place_sharded(
            PlacementPolicy::FirstFit,
            &specs,
            HostCapacity::optiplex_defaults(),
            &ShardConfig::new(4),
        );
        assert!(sp.spilled.is_empty());
        assert!(sp.zone_of_host.iter().all(Option::is_some));
    }

    #[test]
    fn hosts_are_zone_major() {
        let specs = mixed_fleet(120);
        let sp = place_sharded(
            PlacementPolicy::FirstFit,
            &specs,
            HostCapacity::optiplex_defaults(),
            &ShardConfig::new(4),
        );
        let zones: Vec<usize> = sp.zone_of_host.iter().map(|z| z.unwrap()).collect();
        let mut sorted = zones.clone();
        sorted.sort_unstable();
        assert_eq!(zones, sorted, "zone indices are non-decreasing");
    }
}
