//! The global placement controller: bin-packing VM fleets onto hosts
//! by memory *and* CPU.
//!
//! The consolidation experiment packs by memory alone; a real placement
//! controller must respect both dimensions — a host can be CPU-full
//! while memory-empty (compute tenants) or memory-full while CPU-idle
//! (the paper's hosting-center case). Both policies here are
//! *decreasing* variants (largest memory first), the classic
//! approximation with a 11/9 OPT + 1 bound in one dimension.

/// What one VM asks of a host.
///
/// CPU demand and the booked credit are fractions of one host's
/// capacity **at maximum frequency** (the paper's SLA unit).
#[derive(Debug, Clone, PartialEq)]
pub struct VmSpec {
    /// Human-readable name ("vm3", "tenant-web", …).
    pub name: String,
    /// Physical memory the VM needs even when CPU-idle, GiB.
    pub mem_gib: f64,
    /// Steady CPU demand as a fraction of a host's fmax capacity.
    pub cpu_frac: f64,
    /// Booked credit as a fraction of a host's fmax capacity; the SLA
    /// the fleet's violation accounting is checked against.
    pub credit_frac: f64,
    /// Optional demand steps: at `t` seconds, the demand becomes
    /// `cpu_frac` × host fmax capacity. Empty means constant demand.
    /// Used to model load surges that trip the migration trigger.
    pub steps: Vec<(f64, f64)>,
}

impl VmSpec {
    /// A VM with the given memory footprint and constant CPU demand;
    /// the booked credit defaults to the demand (an exactly-sized
    /// booking, the paper's "exact load").
    ///
    /// # Example
    ///
    /// ```
    /// use cluster::placement::VmSpec;
    /// let vm = VmSpec::new("web1", 4.0, 0.06);
    /// assert_eq!(vm.credit_frac, 0.06);
    /// assert!(vm.steps.is_empty());
    /// ```
    #[must_use]
    pub fn new(name: impl Into<String>, mem_gib: f64, cpu_frac: f64) -> Self {
        VmSpec {
            name: name.into(),
            mem_gib,
            cpu_frac,
            credit_frac: cpu_frac,
            steps: Vec::new(),
        }
    }

    /// Overrides the booked credit (overbooked or underbooked SLAs).
    #[must_use]
    pub fn with_credit_frac(mut self, credit_frac: f64) -> Self {
        self.credit_frac = credit_frac;
        self
    }

    /// Adds demand steps: at each `(t_secs, cpu_frac)` the VM's demand
    /// jumps to the new fraction. Steps must be in ascending time
    /// order.
    #[must_use]
    pub fn with_steps(mut self, steps: Vec<(f64, f64)>) -> Self {
        self.steps = steps;
        self
    }

    /// The demand fraction in effect at `t` seconds.
    #[must_use]
    pub fn demand_at(&self, t: f64) -> f64 {
        let mut d = self.cpu_frac;
        for &(at, frac) in &self.steps {
            if t >= at {
                d = frac;
            }
        }
        d
    }

    /// Integral of `min(demand(t), cap)` over `[t0, t1]`, in
    /// fmax-seconds (`cap = None` integrates the raw demand). This is
    /// the single piecewise walk behind both demand *generation* and
    /// SLA *entitlement* accounting in [`crate::fleet`], so the two
    /// can never disagree about step semantics.
    ///
    /// # Example
    ///
    /// ```
    /// use cluster::placement::VmSpec;
    /// let vm = VmSpec::new("surge", 4.0, 0.1).with_steps(vec![(10.0, 0.5)]);
    /// // 10 s at 10% + 10 s at 50%:
    /// assert!((vm.integrated_demand(0.0, 20.0, None) - 6.0).abs() < 1e-12);
    /// // Capped at the 30% booking: 10 s at 10% + 10 s at 30%.
    /// assert!((vm.integrated_demand(0.0, 20.0, Some(0.3)) - 4.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn integrated_demand(&self, t0: f64, t1: f64, cap: Option<f64>) -> f64 {
        let clip = |d: f64| cap.map_or(d, |c| d.min(c));
        let mut acc = 0.0;
        let mut cursor = t0;
        for &(at, _) in &self.steps {
            if at > cursor && at < t1 {
                acc += (at - cursor) * clip(self.demand_at(cursor));
                cursor = at;
            }
        }
        acc += (t1 - cursor).max(0.0) * clip(self.demand_at(cursor));
        acc
    }
}

/// What one host offers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCapacity {
    /// Physical memory, GiB.
    pub mem_gib: f64,
    /// CPU budget the controller will book on one host, as a fraction
    /// of fmax capacity (1.0 books the whole processor; lower values
    /// reserve headroom for Dom0 and demand spikes).
    pub cpu_frac: f64,
}

impl HostCapacity {
    /// The paper's testbed host as a fleet building block: 16 GiB of
    /// memory, the full processor bookable.
    #[must_use]
    pub fn optiplex_defaults() -> Self {
        HostCapacity {
            mem_gib: 16.0,
            cpu_frac: 1.0,
        }
    }
}

/// How the controller picks a host for each VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// First-fit decreasing: the first host (in opening order) with
    /// room in both dimensions.
    FirstFit,
    /// Best-fit decreasing: the host with the least total slack left
    /// after placing the VM — packs tighter when VMs are
    /// heterogeneous.
    BestFit,
}

/// A placement: per-host lists of indices into the input spec slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `hosts[h]` holds the spec indices placed on host `h`, in
    /// placement order.
    pub hosts: Vec<Vec<usize>>,
}

impl Placement {
    /// Number of hosts the placement opened.
    #[must_use]
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Memory booked on host `h`, GiB.
    #[must_use]
    pub fn mem_used(&self, specs: &[VmSpec], h: usize) -> f64 {
        self.hosts[h].iter().map(|&i| specs[i].mem_gib).sum()
    }

    /// CPU booked on host `h` (fraction of fmax capacity), by demand.
    #[must_use]
    pub fn cpu_used(&self, specs: &[VmSpec], h: usize) -> f64 {
        self.hosts[h].iter().map(|&i| specs[i].cpu_frac).sum()
    }

    /// Iterates `(host, spec_idx)` pairs host-major, in placement
    /// order — the order the fleet tracer reports `placement` events.
    ///
    /// # Example
    ///
    /// ```
    /// use cluster::placement::Placement;
    /// let p = Placement { hosts: vec![vec![2, 0], vec![1]] };
    /// let pairs: Vec<_> = p.assignments().collect();
    /// assert_eq!(pairs, vec![(0, 2), (0, 0), (1, 1)]);
    /// ```
    pub fn assignments(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.hosts
            .iter()
            .enumerate()
            .flat_map(|(h, vms)| vms.iter().map(move |&i| (h, i)))
    }
}

impl PlacementPolicy {
    /// Packs `specs` onto hosts of the given capacity.
    ///
    /// Deterministic: specs are placed in decreasing-memory order
    /// (stable on ties, so equal-memory VMs keep their input order),
    /// and every VM is placed — a VM larger than a whole empty host
    /// gets a host of its own, mirroring how a real controller must
    /// still run an oversized tenant somewhere.
    ///
    /// # Example
    ///
    /// Two-dimensional packing: four 2-GiB VMs fit one 16-GiB host by
    /// memory, but their CPU demand only lets two share a host.
    ///
    /// ```
    /// use cluster::placement::{HostCapacity, PlacementPolicy, VmSpec};
    ///
    /// let specs: Vec<VmSpec> = (0..4)
    ///     .map(|i| VmSpec::new(format!("vm{i}"), 2.0, 0.4))
    ///     .collect();
    /// let cap = HostCapacity { mem_gib: 16.0, cpu_frac: 1.0 };
    /// let p = PlacementPolicy::FirstFit.place(&specs, cap);
    /// assert_eq!(p.host_count(), 2, "CPU binds before memory here");
    /// assert!(p.cpu_used(&specs, 0) <= 1.0);
    /// ```
    #[must_use]
    pub fn place(self, specs: &[VmSpec], capacity: HostCapacity) -> Placement {
        let mut order: Vec<usize> = (0..specs.len()).collect();
        order.sort_by(|&a, &b| f64::total_cmp(&specs[b].mem_gib, &specs[a].mem_gib));

        // (mem_used, cpu_used, spec indices) per open host.
        let mut hosts: Vec<(f64, f64, Vec<usize>)> = Vec::new();
        for idx in order {
            let need_mem = specs[idx].mem_gib;
            let need_cpu = specs[idx].cpu_frac;
            let fits = |mem: f64, cpu: f64| {
                mem + need_mem <= capacity.mem_gib + 1e-12
                    && cpu + need_cpu <= capacity.cpu_frac + 1e-12
            };
            let target = match self {
                PlacementPolicy::FirstFit => hosts.iter_mut().find(|h| fits(h.0, h.1)),
                PlacementPolicy::BestFit => hosts
                    .iter_mut()
                    .filter(|h| fits(h.0, h.1))
                    // Least slack after placement; normalise both
                    // dimensions so GiB and CPU fractions are
                    // commensurable. Strict `<` keeps ties on the
                    // earliest-opened host (deterministic).
                    .min_by(|a, b| {
                        let slack = |h: &(f64, f64, Vec<usize>)| {
                            (capacity.mem_gib - h.0 - need_mem) / capacity.mem_gib
                                + (capacity.cpu_frac - h.1 - need_cpu) / capacity.cpu_frac
                        };
                        f64::total_cmp(&slack(a), &slack(b))
                    }),
            };
            match target {
                Some(host) => {
                    host.0 += need_mem;
                    host.1 += need_cpu;
                    host.2.push(idx);
                }
                None => hosts.push((need_mem, need_cpu, vec![idx])),
            }
        }
        Placement {
            hosts: hosts.into_iter().map(|(_, _, vms)| vms).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_fleet(n: usize, mem: f64, cpu: f64) -> Vec<VmSpec> {
        (0..n)
            .map(|i| VmSpec::new(format!("vm{i}"), mem, cpu))
            .collect()
    }

    #[test]
    fn memory_bound_packing_matches_consolidation_study() {
        // 12 × 4 GiB into 16 GiB hosts: 3 hosts, CPU nowhere near full
        // — the Section 2.3 argument.
        let specs = uniform_fleet(12, 4.0, 0.05);
        let cap = HostCapacity::optiplex_defaults();
        for policy in [PlacementPolicy::FirstFit, PlacementPolicy::BestFit] {
            let p = policy.place(&specs, cap);
            assert_eq!(p.host_count(), 3, "{policy:?}");
            for h in 0..p.host_count() {
                assert!(p.mem_used(&specs, h) <= cap.mem_gib + 1e-9);
                assert!(p.cpu_used(&specs, h) < 0.5, "CPU stays underloaded");
            }
        }
    }

    #[test]
    fn every_vm_is_placed_exactly_once() {
        let specs = uniform_fleet(17, 3.0, 0.2);
        let p = PlacementPolicy::BestFit.place(&specs, HostCapacity::optiplex_defaults());
        let mut seen: Vec<usize> = p.hosts.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn cpu_dimension_is_respected() {
        // Memory would allow all four on one host; CPU forbids it.
        let specs = uniform_fleet(4, 1.0, 0.6);
        let p = PlacementPolicy::FirstFit.place(&specs, HostCapacity::optiplex_defaults());
        assert_eq!(p.host_count(), 4);
    }

    #[test]
    fn best_fit_packs_heterogeneous_fleets_no_worse() {
        // A classic first-fit pessimal mix: best-fit must not open
        // more hosts than first-fit.
        let mut specs = Vec::new();
        for i in 0..6 {
            specs.push(VmSpec::new(format!("big{i}"), 10.0, 0.1));
            specs.push(VmSpec::new(format!("mid{i}"), 6.0, 0.1));
            specs.push(VmSpec::new(format!("small{i}"), 4.0, 0.1));
        }
        let cap = HostCapacity::optiplex_defaults();
        let ff = PlacementPolicy::FirstFit.place(&specs, cap).host_count();
        let bf = PlacementPolicy::BestFit.place(&specs, cap).host_count();
        assert!(bf <= ff, "best-fit {bf} vs first-fit {ff}");
    }

    #[test]
    fn oversized_vm_still_gets_a_host() {
        let specs = vec![VmSpec::new("huge", 64.0, 0.2)];
        let p = PlacementPolicy::FirstFit.place(&specs, HostCapacity::optiplex_defaults());
        assert_eq!(p.host_count(), 1);
    }

    #[test]
    fn placement_is_deterministic() {
        let specs = uniform_fleet(20, 4.0, 0.1);
        let cap = HostCapacity::optiplex_defaults();
        let a = PlacementPolicy::BestFit.place(&specs, cap);
        let b = PlacementPolicy::BestFit.place(&specs, cap);
        assert_eq!(a, b);
    }

    #[test]
    fn demand_steps_apply_in_order() {
        let vm = VmSpec::new("surge", 4.0, 0.05).with_steps(vec![(100.0, 0.5), (200.0, 0.1)]);
        assert_eq!(vm.demand_at(0.0), 0.05);
        assert_eq!(vm.demand_at(150.0), 0.5);
        assert_eq!(vm.demand_at(250.0), 0.1);
    }
}
