//! The cluster layer: fleets of simulated hosts above the single-host
//! scheduler.
//!
//! The paper's Section 2.3 argues that consolidation is *memory-bound*
//! — VMs need physical memory even when CPU-idle, so a consolidator
//! fills hosts' memory long before their CPU, and DVFS/PAS still pays
//! off on every active host. This crate turns that argument into a
//! running system:
//!
//! * [`placement`] — a global placement controller: first-fit and
//!   best-fit decreasing over **two** dimensions (memory and CPU),
//!   generalising the ad-hoc memory packing of the consolidation
//!   experiment,
//! * [`migration`] — load-triggered VM live migration: an overload
//!   trigger plus a pre-copy cost model (copy time, blackout, energy),
//! * [`fleet`] — [`fleet::Fleet`] owns a set of [`hypervisor::host::Host`]s,
//!   advances them in lock-step control epochs, migrates VMs off
//!   overloaded hosts, and aggregates fleet-wide energy, SLA and
//!   migration accounting into [`metrics`] series,
//! * [`exec`] — the deterministic parallel executor: scoped worker
//!   threads with index-ordered results, so a fleet (or a batch of
//!   independent experiments) simulates concurrently yet produces
//!   byte-identical output to a serial run,
//! * [`shard`] — datacenter-scale placement: VMs hash onto a fixed
//!   virtual-zone universe, per-zone shard controllers pack locally
//!   and a coordinator re-places overflow between zones. The shard
//!   count is pure worker partitioning, so placements are identical
//!   at any shard count.
//!
//! Single-host simulations stay single-threaded (bit-for-bit
//! reproducibility); all parallelism lives *across* hosts and
//! experiment runs.
//!
//! # Example: pack a fleet, run it, read the bill
//!
//! ```
//! use cluster::fleet::{Fleet, FleetConfig};
//! use cluster::placement::{PlacementPolicy, VmSpec};
//!
//! // Twelve 4-GiB, ~5%-CPU VMs — the paper's underutilized tenants.
//! let specs: Vec<VmSpec> = (0..12)
//!     .map(|i| VmSpec::new(format!("vm{i}"), 4.0, 0.05))
//!     .collect();
//! let mut fleet = Fleet::build(FleetConfig::pas_defaults(), &specs);
//! // Memory fills the 16-GiB hosts long before CPU does:
//! assert_eq!(fleet.host_count(), 3);
//! fleet.run_epochs(4, 2); // 4 control epochs on 2 worker threads
//! let totals = fleet.totals();
//! assert!(totals.energy_j > 0.0);
//! assert!(totals.sla_ratio > 0.9, "entitlements met: {}", totals.sla_ratio);
//! # let _ = PlacementPolicy::BestFit;
//! ```

#![deny(missing_docs)]

pub mod exec;
pub mod fleet;
pub mod migration;
pub mod placement;
pub mod shard;

pub use exec::parallel_map;
pub use fleet::{Fleet, FleetConfig, FleetGovernor, FleetTotals};
pub use migration::{MigrationCostModel, MigrationRecord, MigrationTrigger};
pub use placement::{HostCapacity, Placement, PlacementPolicy, VmSpec};
pub use shard::{place_sharded, zone_of, ShardConfig, ShardedPlacement};
