//! Deterministic parallel execution over scoped threads.
//!
//! Both helpers guarantee the same observable result as a serial run:
//! work items are independent, results land in input order, and all
//! cross-item aggregation happens in the (serial) caller. Worker
//! threads pull items off a shared atomic counter, so long and short
//! items mix freely without a static schedule — only the *timing*
//! varies with `jobs`, never the output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on up to `jobs` worker threads, returning
/// results in input order. `f` receives the item's index alongside the
/// item, so callers can seed per-item RNGs deterministically.
///
/// `jobs <= 1` (or a single item) runs serially on the caller's
/// thread; the output is identical either way.
///
/// # Panics
///
/// Propagates the first panic raised by `f` on any worker thread.
///
/// # Example
///
/// ```
/// let serial: Vec<u64> = (0u64..32).map(|x| x * x).collect();
/// let parallel = cluster::exec::parallel_map(4, (0u64..32).collect(), |_, x| x * x);
/// assert_eq!(parallel, serial);
/// ```
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    // Each slot is taken exactly once (the atomic counter hands every
    // index to exactly one worker), so the Mutexes never contend.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("no poisoned slot")
                    .take()
                    .expect("each index is handed out once");
                let r = f(i, item);
                *results[i].lock().expect("no poisoned result") = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no poisoned result")
                .expect("every index was processed")
        })
        .collect()
}

/// Runs `f` on every element of `items` in place, splitting the slice
/// into contiguous chunks across up to `jobs` threads. `f` receives
/// each element's index in the full slice.
///
/// Used by [`crate::fleet::Fleet`] to advance all hosts one control
/// epoch concurrently: each host is touched by exactly one thread, and
/// the caller aggregates afterwards in index order.
///
/// # Panics
///
/// Propagates the first panic raised by `f` on any worker thread.
///
/// # Example
///
/// ```
/// let mut xs = vec![1u64, 2, 3, 4, 5];
/// cluster::exec::for_each_mut(2, &mut xs, |i, x| *x += i as u64);
/// assert_eq!(xs, vec![1, 3, 5, 7, 9]);
/// ```
pub fn for_each_mut<T, F>(jobs: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let workers = jobs.min(n);
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (c, slice) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (off, item) in slice.iter_mut().enumerate() {
                    f(c * chunk + off, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_matches_serial_for_any_job_count() {
        let work = |i: usize, x: u64| -> u64 { x.wrapping_mul(31).wrapping_add(i as u64) };
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(1, items.clone(), work);
        for jobs in [2, 3, 4, 8, 100, 1000] {
            assert_eq!(
                parallel_map(jobs, items.clone(), work),
                serial,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(4, empty, |_, x: u32| x).is_empty());
        assert_eq!(parallel_map(4, vec![7], |_, x: u32| x + 1), vec![8]);
    }

    #[test]
    fn for_each_mut_touches_every_index_once() {
        let mut hits = vec![0u32; 23];
        for_each_mut(4, &mut hits, |_, h| *h += 1);
        assert!(hits.iter().all(|&h| h == 1));

        let mut tagged = vec![0usize; 23];
        for_each_mut(5, &mut tagged, |i, t| *t = i);
        assert_eq!(tagged, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn results_keep_input_order() {
        // Make early items slow so completion order inverts input order.
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map(8, items, |i, x| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, (0..16).collect::<Vec<u64>>());
    }
}
