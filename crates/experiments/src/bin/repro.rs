//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                      # available experiments
//! repro all [--quick]             # run everything
//! repro fig9 [--quick] [--out D]  # one experiment, optional artefacts
//! ```
//!
//! With `--out DIR`, each experiment writes `DIR/<id>.csv` (series)
//! and `DIR/<id>.json` (scalars + notes).

use std::path::PathBuf;
use std::process::ExitCode;

use experiments::{all_experiment_names, run_experiment, ExperimentReport, Fidelity};

struct Args {
    names: Vec<String>,
    fidelity: Fidelity,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut names = Vec::new();
    let mut fidelity = Fidelity::Full;
    let mut out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" | "-q" => fidelity = Fidelity::Quick,
            "--out" | "-o" => {
                let dir = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                names.push("help".to_owned());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            name => names.push(name.to_owned()),
        }
    }
    if names.is_empty() {
        names.push("help".to_owned());
    }
    Ok(Args {
        names,
        fidelity,
        out,
    })
}

fn emit(report: &ExperimentReport, out: Option<&PathBuf>) {
    println!("================================================================");
    println!("{}", report.text);
    for note in &report.notes {
        println!("  note: {note}");
    }
    if let Some(dir) = out {
        let csv_path = dir.join(format!("{}.csv", report.id));
        if !report.series.is_empty() {
            if let Err(e) = metrics::export::write_artifact(&csv_path, &report.to_csv()) {
                eprintln!("failed to write {}: {e}", csv_path.display());
            }
        }
        match metrics::export::to_json(report) {
            Ok(json) => {
                let json_path = dir.join(format!("{}.json", report.id));
                if let Err(e) = metrics::export::write_artifact(&json_path, &json) {
                    eprintln!("failed to write {}: {e}", json_path.display());
                }
            }
            Err(e) => eprintln!("failed to serialize {}: {e}", report.id),
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut to_run: Vec<String> = Vec::new();
    for name in &args.names {
        match name.as_str() {
            "help" => {
                println!(
                    "usage: repro <experiment>... [--quick] [--out DIR]\n\
                            repro all [--quick] [--out DIR]\n\
                            repro list\n"
                );
                return ExitCode::SUCCESS;
            }
            "list" => {
                for n in all_experiment_names() {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => {
                to_run.extend(all_experiment_names().iter().map(|s| (*s).to_owned()));
            }
            other => to_run.push(other.to_owned()),
        }
    }

    for name in &to_run {
        match run_experiment(name, args.fidelity) {
            Some(report) => emit(&report, args.out.as_ref()),
            None => {
                eprintln!("unknown experiment {name:?}; `repro list` shows the names");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
