//! `repro` — regenerate the paper's tables and figures, and run
//! declarative campaigns.
//!
//! ```text
//! repro list                          # available experiments (with descriptions)
//! repro all [--quick] [--jobs N]      # run everything
//! repro fig9 [--quick] [--out D]      # one experiment, optional artefacts
//! repro campaign spec.json [--quick] [--jobs N] [--out D]
//! repro bench [--quick] [--out D]     # perf baseline → BENCH_<date>.json
//! repro bench-check BENCH_x.json      # validate an artefact's schema
//! repro bench-check --compare OLD NEW # per-benchmark deltas, exit 1 on
//!                                     # a >20% group regression
//! ```
//!
//! With `--out DIR`, each experiment writes `DIR/<id>.csv` (series)
//! and `DIR/<id>.json` (scalars + notes); a campaign writes
//! `DIR/<name>-summary.csv`, `DIR/<name>-runs.csv` and
//! `DIR/<name>-summary.json`. With `--jobs N`, independent
//! experiments (and campaign runs) execute on up to `N` worker
//! threads — the printed output and the artefacts are byte-identical
//! to a serial run (reports are emitted in request order, and every
//! simulation is independently seeded; see `cluster::exec`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use experiments::{
    all_experiment_names, experiment_description, run_experiment_jobs, ExperimentReport, Fidelity,
};

#[derive(Debug)]
struct Args {
    names: Vec<String>,
    fidelity: Fidelity,
    out: Option<PathBuf>,
    jobs: usize,
    trace: bool,
    trace_out: Option<PathBuf>,
    compare: bool,
    addr: String,
    port: u16,
    token: Option<String>,
    rate: Option<f64>,
}

const USAGE: &str = "usage: repro <experiment>... [--quick] [--out DIR] [--jobs N]\n\
                            repro all [--quick] [--out DIR] [--jobs N]\n\
                            repro run <spec.json> [--quick] [--out DIR] [--trace] [--trace-out DIR]\n\
                            repro campaign <spec.json> [--quick] [--out DIR] [--jobs N] [--trace] [--trace-out DIR]\n\
                            repro serve [--addr A] [--port P] [--jobs N] [--token T] [--rate R] [--quick] [--out DIR]\n\
                            repro trace-summary <trace.jsonl>\n\
                            repro bench [--quick] [--out DIR]\n\
                            repro bench-check <BENCH_*.json>\n\
                            repro bench-check --compare <old.json> <new.json>\n\
                            repro list\n";

/// Pulls a value-taking flag's value off the argument stream. Every
/// such flag shares this one check, so a trailing `--out` and an
/// `--out --quick` that would swallow the next flag fail the same way
/// everywhere: naming the flag, what it needs, and (for the swallow
/// case) the culprit.
fn flag_value(
    argv: &mut impl Iterator<Item = String>,
    flag: &str,
    what: &str,
    example: &str,
) -> Result<String, String> {
    let value = argv
        .next()
        .ok_or_else(|| format!("{flag} needs {what}, e.g. `{flag} {example}`"))?;
    if value.starts_with('-') {
        return Err(format!("{flag} needs {what}, but got the flag {value:?}"));
    }
    Ok(value)
}

fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut names = Vec::new();
    let mut fidelity = Fidelity::Full;
    let mut out = None;
    let mut jobs = 1;
    let mut trace = false;
    let mut trace_out = None;
    let mut compare = false;
    let mut addr = "127.0.0.1".to_owned();
    let mut port = 7077;
    let mut token = None;
    let mut rate = None;
    let mut argv = argv.into_iter();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" | "-q" => fidelity = Fidelity::Quick,
            "--out" | "-o" => {
                let dir = flag_value(&mut argv, "--out", "a directory", "artefacts/")?;
                out = Some(PathBuf::from(dir));
            }
            "--trace" => trace = true,
            "--compare" => compare = true,
            "--trace-out" => {
                let dir = flag_value(&mut argv, "--trace-out", "a directory", "artefacts/")?;
                trace = true;
                trace_out = Some(PathBuf::from(dir));
            }
            "--jobs" | "-j" => {
                let n = flag_value(&mut argv, "--jobs", "a thread count", "4")?;
                jobs = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(format!("--jobs needs a positive integer, got {n:?}"))?;
            }
            "--addr" => {
                addr = flag_value(&mut argv, "--addr", "a bind address", "0.0.0.0")?;
            }
            "--port" => {
                let p = flag_value(&mut argv, "--port", "a port number", "7077")?;
                port = p
                    .parse::<u16>()
                    .map_err(|_| format!("--port needs a port number (0-65535), got {p:?}"))?;
            }
            "--token" => {
                token = Some(flag_value(
                    &mut argv,
                    "--token",
                    "a bearer token",
                    "s3cret",
                )?);
            }
            "--rate" => {
                let r = flag_value(&mut argv, "--rate", "requests per second", "10")?;
                rate = Some(
                    r.parse::<f64>()
                        .ok()
                        .filter(|&r| r.is_finite() && r > 0.0)
                        .ok_or(format!(
                            "--rate needs a positive requests/second, got {r:?}"
                        ))?,
                );
            }
            "--help" | "-h" => {
                names.push("help".to_owned());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            name => names.push(name.to_owned()),
        }
    }
    if names.is_empty() {
        names.push("help".to_owned());
    }
    Ok(Args {
        names,
        fidelity,
        out,
        jobs,
        trace,
        trace_out,
        compare,
        addr,
        port,
        token,
        rate,
    })
}

/// Directory traced artefacts land in: `--trace-out`, else `--out`,
/// else the current directory.
fn trace_dir(args: &Args) -> PathBuf {
    args.trace_out
        .clone()
        .or_else(|| args.out.clone())
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Writes the trace JSONL and profile JSON artefacts of a traced run.
/// The trace is deterministic; the profile is wall-clock and lives in
/// its own file precisely so byte-identity checks can skip it.
fn write_trace_artefacts(
    dir: &Path,
    name: &str,
    trace_jsonl: &str,
    profile: &metrics::profile::ProfileReport,
) -> Result<(), String> {
    let trace_path = dir.join(format!("{name}-trace.jsonl"));
    metrics::export::write_artifact(&trace_path, trace_jsonl)
        .map_err(|e| format!("failed to write {}: {e}", trace_path.display()))?;
    println!("wrote {}", trace_path.display());
    let profile_json = metrics::export::to_json(profile)
        .map_err(|e| format!("failed to serialize profile: {e}"))?;
    let profile_path = dir.join(format!("{name}-profile.json"));
    metrics::export::write_artifact(&profile_path, &profile_json)
        .map_err(|e| format!("failed to write {}: {e}", profile_path.display()))?;
    println!("wrote {}", profile_path.display());
    Ok(())
}

fn emit(report: &ExperimentReport, out: Option<&PathBuf>) {
    println!("================================================================");
    println!("{}", report.text);
    for note in &report.notes {
        println!("  note: {note}");
    }
    if let Some(dir) = out {
        let csv_path = dir.join(format!("{}.csv", report.id));
        if !report.series.is_empty() {
            if let Err(e) = metrics::export::write_artifact(&csv_path, &report.to_csv()) {
                eprintln!("failed to write {}: {e}", csv_path.display());
            }
        }
        match metrics::export::to_json(report) {
            Ok(json) => {
                let json_path = dir.join(format!("{}.json", report.id));
                if let Err(e) = metrics::export::write_artifact(&json_path, &json) {
                    eprintln!("failed to write {}: {e}", json_path.display());
                }
            }
            Err(e) => eprintln!("failed to serialize {}: {e}", report.id),
        }
    }
}

/// Runs `repro campaign <spec.json>`: parse + validate the spec,
/// expand and run the sweep, print the ranked summary, and with
/// `--out` write the three campaign artefacts.
fn run_campaign(args: &Args) -> ExitCode {
    let spec_paths = &args.names[1..];
    let [path] = spec_paths else {
        eprintln!(
            "error: `repro campaign` takes exactly one spec file, got {}",
            spec_paths.len()
        );
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match campaign::CampaignSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let quick = args.fidelity == Fidelity::Quick;
    let (report, traced) = if args.trace {
        match campaign::run_traced(&spec, quick, args.jobs, trace::DEFAULT_CAPACITY) {
            Ok(t) => (t.report.clone(), Some(t)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match campaign::run(&spec, quick, args.jobs) {
            Ok(r) => (r, None),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    print!("{}", report.text());
    if let Some(dir) = &args.out {
        // The one artefact path the HTTP service shares: same names,
        // same bytes (see `CampaignReport::artefact_files`).
        let artefacts = match report.artefact_files() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("failed to serialize campaign report: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (name, content) in &artefacts {
            let path = dir.join(name);
            if let Err(e) = metrics::export::write_artifact(&path, content) {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(t) = traced {
        if let Err(e) =
            write_trace_artefacts(&trace_dir(args), &spec.name, &t.trace_jsonl, &t.profile)
        {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Runs `repro run <spec.json>`: one simulation of the spec's base
/// scenario (no sweep, seed = `seeds.base`), printing the scalar
/// results; with `--trace`, also writes the event-trace JSONL and the
/// wall-clock profile.
fn run_single(args: &Args) -> ExitCode {
    let spec_paths = &args.names[1..];
    let [path] = spec_paths else {
        eprintln!(
            "error: `repro run` takes exactly one spec file, got {}",
            spec_paths.len()
        );
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match campaign::CampaignSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let point = campaign::DesignPoint {
        label: "base".to_owned(),
        settings: Vec::new(),
        scenario: spec.scenario.clone(),
    };
    let quick = args.fidelity == Fidelity::Quick;
    let seed = spec.seeds.base;
    let mut profiler = metrics::profile::Profiler::new();
    let (record, trace) = if args.trace {
        let traced = profiler.span("simulate", || {
            campaign::run::run_point_traced(&point, seed, quick, trace::DEFAULT_CAPACITY)
        });
        (traced.record, Some(traced.trace))
    } else {
        (
            profiler.span("simulate", || campaign::run::run_point(&point, seed, quick)),
            None,
        )
    };

    println!("run: {} (seed {seed})", spec.name);
    for (name, value) in &record.scalars {
        println!("  {name} = {}", metrics::export::exact_num(*value));
    }
    if let Some(trace) = trace {
        profiler.count("trace_events", trace.events().len() as u64);
        profiler.count("trace_dropped", trace.dropped());
        let jsonl = trace::render_jsonl(&spec.name, &[(None, &trace)]);
        if let Err(e) =
            write_trace_artefacts(&trace_dir(args), &spec.name, &jsonl, &profiler.report())
        {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Runs `repro trace-summary <trace.jsonl>`: parses and validates a
/// `pas-repro-trace/v1` artefact and prints the analyzer report
/// (per-host/per-VM event counts, frequency-transition histogram,
/// migration timeline).
fn run_trace_summary(args: &Args) -> ExitCode {
    let paths = &args.names[1..];
    let [path] = paths else {
        eprintln!(
            "error: `repro trace-summary` takes exactly one trace.jsonl file, got {}",
            paths.len()
        );
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match trace::summary::summarize(&text) {
        Ok(summary) => {
            print!("{}", summary.text());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs `repro bench`: the fixed macro-benchmark suite from
/// `pas_bench::harness`, a stdout table plus the idle-skip speedup
/// and the tracing-overhead A/B, and `BENCH_<date>.json` written to
/// `--out DIR` (default: the current directory, conventionally the
/// repo root).
fn run_bench(args: &Args) -> ExitCode {
    if args.names.len() > 1 {
        eprintln!("error: `repro bench` takes no positional arguments");
        return ExitCode::FAILURE;
    }
    let quick = args.fidelity == Fidelity::Quick;
    let report = pas_bench::harness::run_suite(quick);
    print!("{}", report.table());
    // The suite runs the same idle-heavy fleet with the idle-skip
    // fast path on and off; surface that A/B directly.
    let median_of = |name: &str| {
        report
            .benchmarks
            .iter()
            .find(|b| b.name == name)
            .map(|b| b.median_ms)
    };
    if let (Some(skip), Some(exact)) = (
        median_of("fleet_idle_heavy_skip"),
        median_of("fleet_idle_heavy_exact"),
    ) {
        if skip > 0.0 {
            println!(
                "idle-skip fast path on the idle-heavy fleet: \
                 {exact:.2} ms -> {skip:.2} ms ({:.2}x)",
                exact / skip
            );
        }
    }
    // Likewise the tracer A/B on the 96-VM fleet: the measured cost
    // of `--trace`, and the evidence the off path stays untouched.
    // The pair runs interleaved, so its paired statistic (the median
    // per-repetition ratio) is the number to read — not the ratio of
    // the arms' medians, which drift-noise can swing either way.
    if let Some(p) = report
        .pairs
        .iter()
        .find(|p| p.measured == "fleet_96vms_trace_on")
    {
        println!(
            "tracing overhead on the 96-VM fleet: {:+.2}% \
             (median over {} interleaved off/on pairs)",
            p.median_overhead_pct, p.reps
        );
    }
    let json = report.to_json();
    if let Err(e) = pas_bench::harness::validate(&json) {
        eprintln!("error: emitted report fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    let dir = args.out.clone().unwrap_or_else(|| PathBuf::from("."));
    let path = dir.join(report.file_name());
    if let Err(e) = metrics::export::write_artifact(&path, &json) {
        eprintln!("failed to write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());
    ExitCode::SUCCESS
}

/// Runs `repro bench-check <file>`: validates an emitted artefact
/// against the `pas-repro-bench/v1` schema (the CI gate). With
/// `--compare <old> <new>`, additionally prints the per-benchmark and
/// per-group median deltas and fails when any group's summed median
/// grew by more than
/// [`REGRESSION_THRESHOLD_PCT`](pas_bench::harness::REGRESSION_THRESHOLD_PCT)
/// percent.
fn run_bench_check(args: &Args) -> ExitCode {
    let paths = &args.names[1..];
    if args.compare {
        return run_bench_compare(paths);
    }
    let [path] = paths else {
        eprintln!(
            "error: `repro bench-check` takes exactly one BENCH_*.json file, got {}",
            paths.len()
        );
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match pas_bench::harness::validate(&text) {
        Ok(()) => {
            println!("{path}: valid {}", pas_bench::harness::SCHEMA);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `--compare` arm of `repro bench-check`: old artefact vs new.
fn run_bench_compare(paths: &[String]) -> ExitCode {
    let [old_path, new_path] = paths else {
        eprintln!(
            "error: `repro bench-check --compare` takes exactly two \
             BENCH_*.json files (old, new), got {}",
            paths.len()
        );
        return ExitCode::FAILURE;
    };
    let read = |path: &String| match std::fs::read_to_string(path) {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            None
        }
    };
    let (Some(old), Some(new)) = (read(old_path), read(new_path)) else {
        return ExitCode::FAILURE;
    };
    let cmp = match pas_bench::harness::compare(&old, &new) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", cmp.table());
    let threshold = pas_bench::harness::REGRESSION_THRESHOLD_PCT;
    let bad = cmp.regressions(threshold);
    if bad.is_empty() {
        println!("no group regressed by more than {threshold:.0}%");
        ExitCode::SUCCESS
    } else {
        for g in bad {
            eprintln!(
                "error: group `{}` regressed {:+.1}% ({:.2} ms -> {:.2} ms), \
                 over the {threshold:.0}% threshold",
                g.group, g.delta_pct, g.old_ms, g.new_ms
            );
        }
        ExitCode::FAILURE
    }
}

/// Runs `repro serve`: the campaign-as-a-service daemon. Prints the
/// bound address on stdout (`listening on http://…`) and serves until
/// `POST /shutdown`, draining accepted jobs before exiting.
fn run_serve(args: &Args) -> ExitCode {
    if args.names.len() > 1 {
        eprintln!("error: `repro serve` takes no positional arguments");
        return ExitCode::FAILURE;
    }
    let cfg = server::ServerConfig {
        addr: args.addr.clone(),
        port: args.port,
        jobs: args.jobs,
        token: args.token.clone(),
        rate: args.rate,
        quick: args.fidelity == Fidelity::Quick,
        out: args.out.clone(),
        ..server::ServerConfig::default()
    };
    match server::serve(cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match args.names.first().map(String::as_str) {
        Some("campaign") => return run_campaign(&args),
        Some("serve") => return run_serve(&args),
        Some("run") => return run_single(&args),
        Some("trace-summary") => return run_trace_summary(&args),
        Some("bench") => return run_bench(&args),
        Some("bench-check") => return run_bench_check(&args),
        _ => {}
    }

    if args.trace {
        eprintln!(
            "error: --trace applies to `repro run` and `repro campaign`, \
             not to registry experiments"
        );
        return ExitCode::FAILURE;
    }

    let mut to_run: Vec<String> = Vec::new();
    for name in &args.names {
        match name.as_str() {
            "help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "list" => {
                let width = all_experiment_names()
                    .iter()
                    .map(|n| n.len())
                    .max()
                    .unwrap_or(0);
                for n in all_experiment_names() {
                    let desc = experiment_description(n).expect("registry names are described");
                    println!("{n:<width$}  {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => {
                to_run.extend(all_experiment_names().iter().map(|s| (*s).to_owned()));
            }
            other => to_run.push(other.to_owned()),
        }
    }

    // Validate every name up front so a typo late in the list does
    // not discard completed work.
    for name in &to_run {
        if !all_experiment_names().contains(&name.as_str()) {
            eprintln!("unknown experiment {name:?}; `repro list` shows the names");
            return ExitCode::FAILURE;
        }
    }

    if args.jobs <= 1 {
        // Serial: stream each report (and its artefacts) as it
        // completes, so long full-fidelity runs show progress and an
        // interrupted run keeps the work already done.
        for name in &to_run {
            let report = run_experiment_jobs(name, args.fidelity, 1).expect("name validated above");
            emit(&report, args.out.as_ref());
        }
    } else {
        // Parallel: run independent experiments concurrently, then
        // emit in request order — stdout and artefacts are
        // byte-identical to the serial path. The experiment-level
        // workers and the per-experiment fleet workers share the
        // --jobs budget (outer × inner ≈ N) instead of multiplying
        // into N² threads.
        let outer = args.jobs.min(to_run.len()).max(1);
        let inner = (args.jobs / outer).max(1);
        let reports = cluster::parallel_map(outer, to_run, |_, name| {
            run_experiment_jobs(&name, args.fidelity, inner).expect("name validated above")
        });
        for report in &reports {
            emit(report, args.out.as_ref());
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_are_serial_full_fidelity() {
        let a = parse(&["fig9"]).unwrap();
        assert_eq!(a.names, vec!["fig9"]);
        assert_eq!(a.fidelity, Fidelity::Full);
        assert_eq!(a.jobs, 1);
        assert!(a.out.is_none());
    }

    #[test]
    fn quick_out_and_jobs_parse() {
        let a = parse(&["all", "--quick", "--out", "d", "--jobs", "4"]).unwrap();
        assert_eq!(a.fidelity, Fidelity::Quick);
        assert_eq!(a.out, Some(PathBuf::from("d")));
        assert_eq!(a.jobs, 4);
    }

    #[test]
    fn trailing_out_without_value_is_rejected() {
        let err = parse(&["fig9", "--out"]).unwrap_err();
        assert!(err.contains("--out needs a directory"), "{err}");
    }

    #[test]
    fn out_swallowing_a_flag_is_rejected() {
        let err = parse(&["fig9", "--out", "--quick"]).unwrap_err();
        assert!(err.contains("--out needs a directory"), "{err}");
        assert!(err.contains("--quick"), "names the culprit: {err}");
    }

    #[test]
    fn bad_jobs_values_are_rejected() {
        assert!(parse(&["all", "--jobs"]).unwrap_err().contains("--jobs"));
        assert!(parse(&["all", "--jobs", "0"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&["all", "--jobs", "many"])
            .unwrap_err()
            .contains("positive integer"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = parse(&["--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn empty_invocation_asks_for_help() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.names, vec!["help"]);
    }

    #[test]
    fn bench_subcommand_parses_with_quick_and_out() {
        let a = parse(&["bench", "--quick", "--out", "artefacts"]).unwrap();
        assert_eq!(a.names, vec!["bench"]);
        assert_eq!(a.fidelity, Fidelity::Quick);
        assert_eq!(a.out, Some(PathBuf::from("artefacts")));
    }

    #[test]
    fn bench_check_takes_a_file_argument() {
        let a = parse(&["bench-check", "BENCH_2026-08-07.json"]).unwrap();
        assert_eq!(a.names, vec!["bench-check", "BENCH_2026-08-07.json"]);
        assert!(!a.compare);
    }

    #[test]
    fn bench_check_compare_takes_two_files() {
        let a = parse(&["bench-check", "--compare", "old.json", "new.json"]).unwrap();
        assert!(a.compare);
        assert_eq!(a.names, vec!["bench-check", "old.json", "new.json"]);
    }

    #[test]
    fn trace_flags_parse() {
        let a = parse(&["campaign", "spec.json", "--trace"]).unwrap();
        assert!(a.trace);
        assert!(a.trace_out.is_none());
        let b = parse(&["run", "spec.json", "--trace-out", "d"]).unwrap();
        assert!(b.trace, "--trace-out implies --trace");
        assert_eq!(b.trace_out, Some(PathBuf::from("d")));
        let c = parse(&["campaign", "spec.json"]).unwrap();
        assert!(!c.trace);
    }

    #[test]
    fn trailing_trace_out_without_value_is_rejected() {
        let err = parse(&["campaign", "spec.json", "--trace-out"]).unwrap_err();
        assert!(err.contains("--trace-out needs a directory"), "{err}");
    }

    #[test]
    fn trace_out_swallowing_a_flag_is_rejected() {
        let err = parse(&["campaign", "spec.json", "--trace-out", "--quick"]).unwrap_err();
        assert!(err.contains("--trace-out needs a directory"), "{err}");
        assert!(err.contains("--quick"), "names the culprit: {err}");
    }

    #[test]
    fn serve_defaults_and_flags_parse() {
        let a = parse(&["serve"]).unwrap();
        assert_eq!((a.addr.as_str(), a.port), ("127.0.0.1", 7077));
        assert!(a.token.is_none() && a.rate.is_none());

        let a = parse(&[
            "serve", "--addr", "0.0.0.0", "--port", "8080", "--token", "s3cret", "--rate", "2.5",
            "--jobs", "4", "--quick",
        ])
        .unwrap();
        assert_eq!((a.addr.as_str(), a.port), ("0.0.0.0", 8080));
        assert_eq!(a.token.as_deref(), Some("s3cret"));
        assert_eq!(a.rate, Some(2.5));
        assert_eq!(a.jobs, 4);
        assert_eq!(a.fidelity, Fidelity::Quick);
    }

    #[test]
    fn every_serve_flag_rejects_a_missing_or_swallowed_value() {
        for flag in ["--addr", "--port", "--token", "--rate"] {
            let err = parse(&["serve", flag]).unwrap_err();
            assert!(err.contains(&format!("{flag} needs")), "{flag}: {err}");
            let err = parse(&["serve", flag, "--quick"]).unwrap_err();
            assert!(err.contains(&format!("{flag} needs")), "{flag}: {err}");
            assert!(err.contains("--quick"), "{flag} names the culprit: {err}");
        }
    }

    #[test]
    fn bad_port_and_rate_values_are_rejected() {
        assert!(parse(&["serve", "--port", "99999"])
            .unwrap_err()
            .contains("0-65535"));
        assert!(parse(&["serve", "--port", "web"])
            .unwrap_err()
            .contains("port number"));
        assert!(parse(&["serve", "--rate", "0"])
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["serve", "--rate", "fast"])
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["serve", "--rate", "inf"])
            .unwrap_err()
            .contains("positive"));
    }
}
