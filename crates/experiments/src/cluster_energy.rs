//! Extension X9 — cluster-scale energy: the Section 2.3 argument on a
//! heterogeneous fleet under a real placement controller.
//!
//! The consolidation study (X4) makes the paper's point with a uniform
//! dozen VMs and ad-hoc memory packing. This experiment scales it up:
//! a heterogeneous fleet (2–8 GiB footprints, 3–10% CPU demands,
//! generated from a fixed seed) is packed by the `cluster` crate's
//! global placement controller — first-fit and best-fit decreasing
//! over memory *and* CPU — and each resulting fleet is simulated as a
//! whole, hosts in parallel, under the performance governor and under
//! PAS.
//!
//! The claims checked:
//!
//! * both policies leave the consolidated hosts memory-full but
//!   CPU-underloaded (the paper's premise),
//! * best-fit never opens more hosts than first-fit,
//! * PAS still saves fleet-wide energy *after* consolidation, and
//!   delivers the booked entitlements while doing so.

use cluster::fleet::{Fleet, FleetConfig};
use cluster::placement::{PlacementPolicy, VmSpec};
use simkernel::SimRng;

use crate::report::ExperimentReport;
use crate::scenario::Fidelity;

/// The deterministic heterogeneous fleet: 24 VMs, memory 2/4/8 GiB,
/// CPU demand 3–10% of one host.
#[must_use]
pub fn heterogeneous_fleet(seed: u64) -> Vec<VmSpec> {
    let mut rng = SimRng::seed_from(seed);
    (0..24)
        .map(|i| {
            let mem_gib = [2.0, 4.0, 8.0][rng.below(3) as usize];
            let cpu_frac = rng.uniform_range(0.03, 0.10);
            VmSpec::new(format!("vm{i}"), mem_gib, cpu_frac)
        })
        .collect()
}

/// Runs the cluster-energy study serially (see [`run_with`]).
#[must_use]
pub fn run(fidelity: Fidelity) -> ExperimentReport {
    run_with(fidelity, 1)
}

/// Runs the cluster-energy study, simulating each fleet's hosts on up
/// to `jobs` worker threads. Output is byte-identical for every `jobs`
/// value.
#[must_use]
pub fn run_with(fidelity: Fidelity, jobs: usize) -> ExperimentReport {
    let epochs = match fidelity {
        Fidelity::Full => 20, // 600 s of fleet time
        Fidelity::Quick => 3, // 90 s
    };
    let specs = heterogeneous_fleet(2013);

    // (policy, PAS?) — all four fleets, simulated concurrently.
    let combos: Vec<(PlacementPolicy, bool)> = vec![
        (PlacementPolicy::FirstFit, false),
        (PlacementPolicy::FirstFit, true),
        (PlacementPolicy::BestFit, false),
        (PlacementPolicy::BestFit, true),
    ];
    let results = cluster::parallel_map(jobs, combos, |_, (policy, pas)| {
        let cfg = if pas {
            FleetConfig::pas_defaults()
        } else {
            FleetConfig::performance_defaults()
        }
        .with_policy(policy);
        let mut fleet = Fleet::build(cfg, &specs);
        fleet.run_epochs(epochs, jobs);
        let max_cpu = (0..fleet.placement().host_count())
            .map(|h| fleet.placement().cpu_used(&specs, h))
            .fold(0.0f64, f64::max);
        (policy, pas, fleet.host_count(), fleet.totals(), max_cpu)
    });

    let mut report = ExperimentReport::new(
        "cluster-energy",
        "Extension X9: fleet-wide energy under a global placement controller (Section 2.3 at scale)",
    );
    let mut text = format!(
        "Cluster energy study: {} heterogeneous VMs (2-8 GiB, 3-10% CPU), seed 2013\n\n  \
         policy     scheduler     hosts   energy(J)   sla\n",
        specs.len()
    );
    for &(policy, pas, hosts, totals, _) in &results {
        let policy_name = match policy {
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::BestFit => "best-fit",
        };
        let sched = if pas { "pas" } else { "performance" };
        text.push_str(&format!(
            "  {policy_name:<10} {sched:<12} {hosts:5}   {:9.0}   {:.3}\n",
            totals.energy_j, totals.sla_ratio
        ));
        // One host-count scalar per policy (the count is scheduler-
        // independent; recording it per combo would duplicate the key).
        if !pas {
            report.scalar(format!("hosts/{policy_name}"), hosts as f64);
        }
        report.scalar(format!("energy_j/{policy_name}+{sched}"), totals.energy_j);
        report.scalar(format!("sla_ratio/{policy_name}+{sched}"), totals.sla_ratio);
    }

    // Fleet-wide PAS saving on the tighter (best-fit) packing.
    let bf_perf = report
        .get_scalar("energy_j/best-fit+performance")
        .expect("present");
    let bf_pas = report.get_scalar("energy_j/best-fit+pas").expect("present");
    let saving = 100.0 * (1.0 - bf_pas / bf_perf);
    report.scalar("pas_fleet_saving_pct", saving);
    let max_cpu = results.iter().map(|r| r.4).fold(0.0f64, f64::max);
    report.scalar("max_host_cpu_booked_frac", max_cpu);

    text.push_str(&format!(
        "\n  PAS saves {saving:.1}% fleet-wide on the best-fit packing; the most\n  \
         CPU-booked host sits at {:.0}% — memory closed the hosts first, which\n  \
         is exactly the headroom DVFS/PAS converts into savings (Section 2.3).\n",
        max_cpu * 100.0
    ));
    report.text = text;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_generation_is_deterministic() {
        let a = heterogeneous_fleet(7);
        let b = heterogeneous_fleet(7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 24);
    }

    #[test]
    fn best_fit_opens_no_more_hosts_than_first_fit() {
        let r = run(Fidelity::Quick);
        let ff = r.get_scalar("hosts/first-fit").unwrap();
        let bf = r.get_scalar("hosts/best-fit").unwrap();
        assert!(bf <= ff, "best-fit {bf} vs first-fit {ff}");
        assert!(bf < 24.0, "consolidation actually happened");
    }

    #[test]
    fn pas_saves_fleet_wide_and_delivers() {
        let r = run(Fidelity::Quick);
        let saving = r.get_scalar("pas_fleet_saving_pct").unwrap();
        assert!(saving > 3.0, "material fleet-wide saving: {saving}%");
        let sla = r.get_scalar("sla_ratio/best-fit+pas").unwrap();
        assert!(sla > 0.9, "PAS still delivers entitlements: {sla}");
    }

    #[test]
    fn hosts_are_memory_bound_not_cpu_bound() {
        let r = run(Fidelity::Quick);
        let max_cpu = r.get_scalar("max_host_cpu_booked_frac").unwrap();
        assert!(
            max_cpu < 0.6,
            "memory closes hosts before CPU does: {max_cpu}"
        );
    }

    #[test]
    fn parallel_run_is_byte_identical_to_serial() {
        let a = run_with(Fidelity::Quick, 1);
        let b = run_with(Fidelity::Quick, 4);
        assert_eq!(a.text, b.text);
        assert_eq!(a.scalars, b.scalars);
    }
}
