//! Table 1 — `cf_min` on five processors.
//!
//! The paper measures `cf` at the minimum frequency of five Grid'5000
//! / desktop machines. We re-run the *measurement procedure* (pi-app
//! execution times at min and max frequency, Equation 2) on each
//! machine preset and compare the recovered `cf_min` against the
//! paper's printed values — confirming both that the presets embed the
//! right micro-architecture and that the calibration pipeline works.

use governors::Userspace;
use hypervisor::host::{HostConfig, SchedulerKind};
use hypervisor::vm::VmConfig;
use pas_core::{CfCalibrator, Credit};
use simkernel::SimTime;
use workloads::PiApp;

use crate::report::ExperimentReport;
use crate::scenario::Fidelity;

fn measure_cf_min(machine: &cpumodel::MachineSpec, job_secs: f64) -> f64 {
    let table = machine.pstate_table();
    let run_at = |pstate| {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit)
            .with_machine(machine.clone())
            .with_governor(Box::new(Userspace::new(pstate)))
            .build();
        let fmax = host.fmax_mcps();
        let vm = host.add_vm(
            VmConfig::new("pi", Credit::percent(100.0)),
            Box::new(PiApp::sized_for_seconds(job_secs, fmax)),
        );
        host.run_until_vm_finished(vm, SimTime::from_secs_f64(job_secs * 100.0))
            .expect("pi-app finishes")
            .as_secs_f64()
    };
    let t_max = run_at(table.max_idx());
    let t_min = run_at(table.min_idx());
    let mut cal = CfCalibrator::new();
    cal.record_times(table.min_idx(), table.ratio(table.min_idx()), t_max, t_min);
    cal.estimate(table.min_idx()).expect("recorded").mean
}

/// Regenerates Table 1.
#[must_use]
pub fn run(fidelity: Fidelity) -> ExperimentReport {
    let job_secs = match fidelity {
        Fidelity::Full => 60.0,
        Fidelity::Quick => 8.0,
    };
    let machines = cpumodel::machines::table1_machines();
    let mut report = ExperimentReport::new("table1", "Table 1: cf_min on different processors");
    let mut text = String::from(
        "Table 1: cf_min on different processors (measured via the Section 5.2 procedure)\n\n  \
         processor                       paper      measured   error%\n",
    );
    let mut worst_err: f64 = 0.0;
    for (machine, paper_cf) in machines.iter().zip(cpumodel::machines::TABLE1_CF_MIN) {
        let measured = measure_cf_min(machine, job_secs);
        let err = 100.0 * ((measured - paper_cf) / paper_cf).abs();
        worst_err = worst_err.max(err);
        let short: String = machine.name.chars().take(30).collect();
        text.push_str(&format!(
            "  {short:<30}  {paper_cf:.5}    {measured:.5}    {err:5.2}\n"
        ));
        report.scalar(format!("cf_min/{short}"), measured);
    }
    report.scalar("worst_error_pct", worst_err);
    text.push_str(&format!("\n  worst relative error: {worst_err:.2}%\n"));
    report.text = text;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_cf_min_matches_paper() {
        let r = run(Fidelity::Quick);
        let err = r.get_scalar("worst_error_pct").unwrap();
        assert!(err < 3.0, "worst cf_min error {err}% vs Table 1");
    }

    #[test]
    fn e5_2620_stands_out() {
        let r = run(Fidelity::Quick);
        let e5 = r
            .scalars
            .iter()
            .find(|(n, _)| n.contains("E5-2620"))
            .map(|&(_, v)| v)
            .expect("E5-2620 row present");
        assert!(
            e5 < 0.85,
            "the E5-2620's cf_min {e5} is the paper's outlier"
        );
    }
}
