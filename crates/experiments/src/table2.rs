//! Table 2 — execution times on different virtualization platforms.
//!
//! The scenario: V20 (20% credit) runs pi-app to completion while V70
//! (70% credit) stays lazy, on the HP Elite 8300 (i7-3770), for every
//! platform archetype × {Performance, OnDemand} governor. The paper's
//! structure to reproduce:
//!
//! * fix-credit platforms degrade 25–50% under ondemand;
//! * Xen/PAS shows **zero** degradation;
//! * variable-credit platforms run ~2.5× faster in absolute terms and
//!   show no degradation (but hold the frequency at maximum).

use hypervisor::platforms::{all_table2, GovernorChoice, PlatformSpec};
use hypervisor::vm::VmConfig;
use hypervisor::work::{ConstantDemand, Idle};
use metrics::summary::degradation_pct;
use pas_core::Credit;
use simkernel::SimTime;
use workloads::PiApp;

use crate::report::ExperimentReport;
use crate::scenario::Fidelity;

/// One platform's measured row.
#[derive(Debug, Clone)]
pub struct PlatformRow {
    /// Platform name.
    pub name: String,
    /// pi-app time under the performance governor, seconds.
    pub t_performance: f64,
    /// pi-app time under the platform's DVFS policy, seconds.
    pub t_ondemand: f64,
    /// `1 − T_perf / T_od` in percent.
    pub degradation_pct: f64,
}

fn run_one(platform: &PlatformSpec, governor: GovernorChoice, job_secs: f64) -> f64 {
    let mut host = platform.build_host(governor);
    let fmax = host.fmax_mcps();
    let v20 = host.add_vm(
        VmConfig::new("v20", Credit::percent(20.0)),
        Box::new(PiApp::sized_for_seconds(job_secs, fmax)),
    );
    host.add_vm(VmConfig::new("v70", Credit::percent(70.0)), Box::new(Idle));
    // Light Dom0 management noise.
    host.add_vm(
        VmConfig::dom0(),
        Box::new(ConstantDemand::new(0.005 * fmax)),
    );
    host.run_until_vm_finished(v20, SimTime::from_secs_f64(job_secs * 200.0))
        .expect("pi-app finishes")
        .as_secs_f64()
}

/// Regenerates Table 2.
#[must_use]
pub fn run(fidelity: Fidelity) -> ExperimentReport {
    // Sized so the Performance row lands at the paper's ~1559 s scale
    // at full fidelity (20% credit → T = job/0.2).
    let job_secs = match fidelity {
        Fidelity::Full => 311.8,
        Fidelity::Quick => 16.0,
    };
    let mut rows = Vec::new();
    for platform in all_table2() {
        let t_perf = run_one(&platform, GovernorChoice::Performance, job_secs);
        let t_od = run_one(&platform, GovernorChoice::OnDemand, job_secs);
        rows.push(PlatformRow {
            name: platform.name.to_owned(),
            t_performance: t_perf,
            t_ondemand: t_od,
            degradation_pct: degradation_pct(t_perf, t_od),
        });
    }

    let mut report = ExperimentReport::new(
        "table2",
        "Table 2: Execution Times on Different Virtualization Platforms",
    );
    let mut text = String::from(
        "Table 2: pi-app in V20 (V70 lazy), HP Elite 8300 archetypes\n\n  \
         platform     T_performance(s)  T_ondemand(s)  degradation%   (paper deg%)\n",
    );
    let paper_deg = [50.0, 27.0, 40.0, 0.0, 0.0, 0.0, 0.0];
    for (row, paper) in rows.iter().zip(paper_deg) {
        text.push_str(&format!(
            "  {:<11} {:16.0}  {:13.0}  {:11.1}   ({paper:.0})\n",
            row.name, row.t_performance, row.t_ondemand, row.degradation_pct
        ));
        report.scalar(format!("t_perf/{}", row.name), row.t_performance);
        report.scalar(format!("t_od/{}", row.name), row.t_ondemand);
        report.scalar(format!("deg/{}", row.name), row.degradation_pct);
    }
    report.notes.push(
        "Variable-credit platforms finish faster here (~5×) than in the paper (~2.5×): \
         the paper's SEDF extra-time gave V20 only about half the idle capacity, ours \
         gives nearly all of it. The structural claims (no degradation, frequency pinned \
         at maximum) are unchanged."
            .to_owned(),
    );
    report.text = text;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentReport {
        run(Fidelity::Quick)
    }

    #[test]
    fn fix_credit_platforms_degrade() {
        let r = quick();
        for (name, lo, hi) in [
            ("Hyper-V", 40.0, 62.0),
            ("VMware", 18.0, 36.0),
            ("Xen/credit", 30.0, 50.0),
        ] {
            let deg = r.get_scalar(&format!("deg/{name}")).unwrap();
            assert!(
                (lo..hi).contains(&deg),
                "{name} degradation {deg}% outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn pas_has_zero_degradation() {
        let r = quick();
        let deg = r.get_scalar("deg/Xen/PAS").unwrap();
        assert!(deg < 3.0, "PAS degradation {deg}%");
    }

    #[test]
    fn variable_credit_fast_and_undegraded() {
        let r = quick();
        let t_fix = r.get_scalar("t_perf/Xen/credit").unwrap();
        for name in ["Xen/SEDF", "KVM", "Vbox"] {
            let deg = r.get_scalar(&format!("deg/{name}")).unwrap();
            assert!(deg < 5.0, "{name} degradation {deg}%");
            let t = r.get_scalar(&format!("t_perf/{name}")).unwrap();
            assert!(
                t < t_fix / 2.0,
                "{name} ({t}s) should be much faster than fix-credit ({t_fix}s)"
            );
        }
    }

    #[test]
    fn ordering_matches_paper() {
        // Hyper-V degrades hardest, VMware least, among fix-credit rows.
        let r = quick();
        let h = r.get_scalar("deg/Hyper-V").unwrap();
        let v = r.get_scalar("deg/VMware").unwrap();
        let x = r.get_scalar("deg/Xen/credit").unwrap();
        assert!(h > x && x > v, "ordering H({h}) > X({x}) > V({v})");
    }
}
