//! Extension X1 — the energy/QoS trade-off the paper motivates but
//! never plots.
//!
//! Three configurations over the identical three-phase exact-load
//! scenario:
//!
//! * **Credit + performance** — the QoS baseline: no savings;
//! * **Credit + stable ondemand** — saves energy, violates V20's SLA
//!   in phase A (Figure 5's defect);
//! * **PAS** — saves almost as much energy while preserving the SLA.
//!
//! Reported per configuration: total energy (J), mean power (W), and
//! V20's phase-A absolute load (the SLA check: booked 20%).

use governors::{Performance, StableOndemand};
use hypervisor::host::SchedulerKind;
use workloads::Intensity;

use crate::report::ExperimentReport;
use crate::scenario::{build, Fidelity, ScenarioConfig};

/// One configuration's outcome.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Configuration label.
    pub label: String,
    /// Total energy over the run, joules.
    pub energy_j: f64,
    /// V20's mean absolute load in phase A, percent (SLA target 20%).
    pub v20_abs_phase_a: f64,
    /// V20's mean request response time over the run, seconds.
    pub v20_mean_latency_s: f64,
}

fn run_config(
    label: &str,
    scheduler: SchedulerKind,
    governor: Option<Box<dyn governors::Governor>>,
    fidelity: Fidelity,
) -> EnergyRow {
    let mut cfg = ScenarioConfig::new(scheduler, Intensity::Exact, fidelity);
    if let Some(g) = governor {
        cfg = cfg.with_governor(g);
    }
    let mut sc = build(cfg);
    sc.run();
    let (a0, a1) = sc.timeline.phase_a();
    let abs = sc
        .absolute_load_series(sc.v20, "v20_abs")
        .mean_between(a0, a1)
        .unwrap_or(0.0);
    let latency = sc.host.vm_qos(sc.v20).map_or(0.0, |q| q.mean_latency_s);
    EnergyRow {
        label: label.to_owned(),
        energy_j: sc.total_energy_j(),
        v20_abs_phase_a: abs,
        v20_mean_latency_s: latency,
    }
}

/// Runs the ablation.
#[must_use]
pub fn run(fidelity: Fidelity) -> ExperimentReport {
    let rows = vec![
        run_config(
            "credit+performance",
            SchedulerKind::Credit,
            Some(Box::new(Performance)),
            fidelity,
        ),
        run_config(
            "credit+ondemand",
            SchedulerKind::Credit,
            Some(Box::new(StableOndemand::new())),
            fidelity,
        ),
        run_config("pas", SchedulerKind::Pas, None, fidelity),
    ];

    let mut report = ExperimentReport::new(
        "energy",
        "Extension X1: energy vs SLA across credit+performance / credit+ondemand / PAS",
    );
    let baseline = rows[0].energy_j;
    let mut text = String::from(
        "Energy ablation (three-phase exact-load scenario)\n\n  \
         configuration        energy(J)   saving%   V20 abs A (SLA 20%)   V20 mean latency\n",
    );
    for row in &rows {
        let saving = 100.0 * (1.0 - row.energy_j / baseline);
        text.push_str(&format!(
            "  {:<20} {:9.0}   {saving:6.1}   {:5.1}%                {:6.3} s\n",
            row.label, row.energy_j, row.v20_abs_phase_a, row.v20_mean_latency_s
        ));
        report.scalar(format!("energy_j/{}", row.label), row.energy_j);
        report.scalar(format!("saving_pct/{}", row.label), saving);
        report.scalar(format!("v20_abs_a/{}", row.label), row.v20_abs_phase_a);
        report.scalar(
            format!("v20_latency_s/{}", row.label),
            row.v20_mean_latency_s,
        );
    }
    text.push_str("\n  PAS keeps nearly the ondemand saving while restoring the booked 20%.\n");
    report.text = text;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pas_saves_energy_and_preserves_sla() {
        let r = run(Fidelity::Quick);
        let e_perf = r.get_scalar("energy_j/credit+performance").unwrap();
        let e_od = r.get_scalar("energy_j/credit+ondemand").unwrap();
        let e_pas = r.get_scalar("energy_j/pas").unwrap();
        // Exact loads cap the achievable saving (the host is busy
        // whenever a VM demands); the ordering, not the magnitude, is
        // the claim: ondemand saves most, PAS nearly as much, both
        // strictly below the performance baseline.
        assert!(
            e_od < e_perf * 0.96,
            "ondemand saves energy: {e_od} vs {e_perf}"
        );
        assert!(
            e_pas < e_perf * 0.98,
            "PAS saves energy too: {e_pas} vs {e_perf}"
        );
        assert!(
            e_od <= e_pas,
            "ondemand outsaves PAS (which buys back the SLA)"
        );

        let sla_perf = r.get_scalar("v20_abs_a/credit+performance").unwrap();
        let sla_od = r.get_scalar("v20_abs_a/credit+ondemand").unwrap();
        let sla_pas = r.get_scalar("v20_abs_a/pas").unwrap();
        assert!(
            (sla_perf - 20.0).abs() < 2.5,
            "performance meets SLA: {sla_perf}"
        );
        assert!(sla_od < 15.0, "ondemand violates SLA: {sla_od}");
        assert!((sla_pas - 20.0).abs() < 2.5, "PAS meets SLA: {sla_pas}");
    }

    #[test]
    fn latency_reflects_the_sla_violation() {
        let r = run(Fidelity::Quick);
        let lat_od = r.get_scalar("v20_latency_s/credit+ondemand").unwrap();
        let lat_pas = r.get_scalar("v20_latency_s/pas").unwrap();
        assert!(
            lat_od > 1.5 * lat_pas,
            "starved V20 queues requests: ondemand {lat_od}s vs PAS {lat_pas}s"
        );
    }
}
