//! Uniform experiment output.

use metrics::TimeSeries;
use serde::Serialize;

/// What every experiment produces.
#[derive(Debug, Serialize)]
pub struct ExperimentReport {
    /// Short id ("fig9", "table2", …).
    pub id: String,
    /// Human title, matching the paper's caption.
    pub title: String,
    /// Paper-style text rendering (tables as rows, figures as phase
    /// means plus an ASCII chart).
    pub text: String,
    /// Machine-readable series (figures) — may be empty for tables.
    pub series: Vec<TimeSeries>,
    /// Key scalar results for EXPERIMENTS.md (name → value).
    pub scalars: Vec<(String, f64)>,
    /// Notes on deviations from the paper.
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report shell.
    #[must_use]
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            text: String::new(),
            series: Vec::new(),
            scalars: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a scalar result.
    pub fn scalar(&mut self, name: impl Into<String>, value: f64) {
        self.scalars.push((name.into(), value));
    }

    /// Adds a note on a deviation from the paper.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Looks up a scalar by name.
    #[must_use]
    pub fn get_scalar(&self, name: &str) -> Option<f64> {
        self.scalars
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Renders the report's CSV artefact (all series merged).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let refs: Vec<&TimeSeries> = self.series.iter().collect();
        metrics::export::to_csv(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut r = ExperimentReport::new("x", "X");
        r.scalar("a", 1.5);
        assert_eq!(r.get_scalar("a"), Some(1.5));
        assert_eq!(r.get_scalar("b"), None);
    }

    #[test]
    fn csv_includes_series() {
        let mut r = ExperimentReport::new("x", "X");
        r.series
            .push(TimeSeries::from_points("s", vec![(0.0, 1.0)]));
        assert!(r.to_csv().contains("t,s"));
    }
}
