//! Extension X10 — load-triggered live migration: what fleet-level
//! reconfiguration buys on top of per-host PAS.
//!
//! The related work on dynamic reconfiguration in component middleware
//! motivates the scenario: tenants book headroom above their steady
//! demand, and occasionally *use* it. A host where several tenants
//! surge at once saturates — no per-host scheduler can conjure the
//! missing cycles — so the fleet controller migrates the hottest VM to
//! an underloaded host, paying a pre-copy cost (copy time, a blackout,
//! transfer energy).
//!
//! The study runs the same surge calendar twice — migration disabled
//! vs enabled — and compares delivered entitlements, downtime and the
//! energy overhead. The claim: migration restores the SLA for a
//! fraction of a percent of fleet energy.

use cluster::fleet::{Fleet, FleetConfig};
use cluster::migration::MigrationTrigger;
use cluster::placement::VmSpec;

use crate::report::ExperimentReport;
use crate::scenario::Fidelity;

/// The surge fleet: two trios whose surger jumps to its full booking
/// mid-run (tripping the trigger), plus a quiet trio. Equal 5-GiB
/// footprints make the first-fit placement land each trio on its own
/// 16-GiB host; the fleet adds two empty spare hosts (N+k
/// provisioning) for the controller to shed load into.
#[must_use]
pub fn surge_fleet() -> Vec<VmSpec> {
    let mut specs = Vec::new();
    for (g, surge_at_s) in [(0, 40.0), (1, 100.0)] {
        specs.push(
            VmSpec::new(format!("surger{g}"), 5.0, 0.20)
                .with_credit_frac(0.60)
                .with_steps(vec![(surge_at_s, 0.60)]),
        );
        for s in 0..2 {
            specs.push(VmSpec::new(format!("steady{g}-{s}"), 5.0, 0.25).with_credit_frac(0.35));
        }
    }
    for s in 0..3 {
        specs.push(VmSpec::new(format!("quiet-{s}"), 5.0, 0.02).with_credit_frac(0.10));
    }
    specs
}

/// Runs the migration study serially (see [`run_with`]).
#[must_use]
pub fn run(fidelity: Fidelity) -> ExperimentReport {
    run_with(fidelity, 1)
}

/// Runs the migration study, simulating each fleet's hosts on up to
/// `jobs` worker threads. Output is byte-identical for every `jobs`
/// value.
#[must_use]
pub fn run_with(fidelity: Fidelity, jobs: usize) -> ExperimentReport {
    let epochs = match fidelity {
        Fidelity::Full => 40, // 1200 s: long steady tail after the surges
        Fidelity::Quick => 8, // 240 s
    };
    let specs = surge_fleet();

    let variants: Vec<Option<MigrationTrigger>> = vec![None, Some(MigrationTrigger::default())];
    let results = cluster::parallel_map(jobs, variants, |_, trigger| {
        let mut cfg = FleetConfig::performance_defaults().with_spares(2);
        cfg.trigger = trigger;
        let mut fleet = Fleet::build(cfg, &specs);
        fleet.run_epochs(epochs, jobs);
        let label = if trigger.is_some() {
            "migration"
        } else {
            "no-migration"
        };
        let series = fleet.load_series().renamed(format!("{label}_load_pct"));
        let moves: Vec<String> = fleet
            .migrations()
            .iter()
            .map(|m| {
                format!(
                    "t={:.0}s {} host{}→host{} ({} GiB, {:.0} s copy, {:.1} s blackout)",
                    m.at_s, m.vm, m.from, m.to, m.mem_gib, m.copy_time_s, m.downtime_s
                )
            })
            .collect();
        (label, fleet.totals(), series, moves)
    });

    let mut report = ExperimentReport::new(
        "migration",
        "Extension X10: load-triggered live migration — SLA restored for a sliver of energy",
    );
    let mut text = format!(
        "Migration study: {} VMs on 3 hosts + 2 spares, two booked-headroom surges\n\n  \
         variant        energy(J)   overhead(J)   migrations   downtime(s)   sla\n",
        specs.len()
    );
    for (label, totals, series, _) in &results {
        text.push_str(&format!(
            "  {label:<13} {:9.0}   {:11.0}   {:10}   {:11.1}   {:.3}\n",
            totals.energy_j,
            totals.migration_energy_j,
            totals.migration_count,
            totals.downtime_s,
            totals.sla_ratio
        ));
        report.scalar(format!("energy_j/{label}"), totals.energy_j);
        report.scalar(format!("sla_ratio/{label}"), totals.sla_ratio);
        report.scalar(format!("migrations/{label}"), totals.migration_count as f64);
        report.scalar(format!("downtime_s/{label}"), totals.downtime_s);
        report.series.push(series.clone());
    }
    let with = &results[1].1;
    let overhead_pct = 100.0 * with.migration_energy_j / with.energy_j;
    report.scalar("migration_overhead_pct", overhead_pct);

    text.push_str("\n  Moves:\n");
    for m in &results[1].3 {
        text.push_str(&format!("    {m}\n"));
    }
    text.push_str(&format!(
        "\n  The controller sheds each surging VM to a quiet host: entitlements\n  \
         recover while the pre-copy overhead stays at {overhead_pct:.2}% of fleet energy.\n",
    ));
    report.text = text;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surges_trip_the_trigger() {
        let r = run(Fidelity::Quick);
        assert_eq!(r.get_scalar("migrations/no-migration"), Some(0.0));
        let moves = r.get_scalar("migrations/migration").unwrap();
        assert!(moves >= 2.0, "both surges migrate: {moves}");
    }

    #[test]
    fn migration_restores_entitlements() {
        let r = run(Fidelity::Quick);
        let without = r.get_scalar("sla_ratio/no-migration").unwrap();
        let with = r.get_scalar("sla_ratio/migration").unwrap();
        assert!(
            with > without + 0.02,
            "migration helps: {with} vs {without}"
        );
        assert!(with > 0.95, "SLAs essentially met with migration: {with}");
    }

    #[test]
    fn overhead_stays_marginal() {
        let r = run(Fidelity::Quick);
        let overhead = r.get_scalar("migration_overhead_pct").unwrap();
        assert!(
            overhead > 0.0 && overhead < 2.0,
            "pre-copy cost is a sliver: {overhead}%"
        );
        let down = r.get_scalar("downtime_s/migration").unwrap();
        assert!(down > 0.0);
    }

    #[test]
    fn parallel_run_is_byte_identical_to_serial() {
        let a = run_with(Fidelity::Quick, 1);
        let b = run_with(Fidelity::Quick, 4);
        assert_eq!(a.text, b.text);
        assert_eq!(a.scalars, b.scalars);
        assert_eq!(a.to_csv(), b.to_csv());
    }
}
