//! Extension X8 — the overbooking frontier.
//!
//! The paper notes that compensated credits may sum past 100% and
//! leaves it at that. This study makes the provider-side consequence
//! precise: a booking set determines an **enforceable floor** — the
//! lowest P-state at which every booking can be honoured
//! simultaneously (`pas_core::admission`) — and the floor is exactly
//! where the online PAS scheduler settles when all tenants thrash.
//!
//! For each total booking level (split across four tenants) we report:
//!
//! * the floor predicted offline by [`AdmissionPolicy`],
//! * the frequency the live PAS host actually settles at with every
//!   tenant thrashing (they must agree),
//! * the idle power at the floor — what a provider gives up, in
//!   worst-case energy terms, by accepting the bookings.

use cpumodel::machines;
use hypervisor::host::{HostConfig, SchedulerKind};
use hypervisor::vm::VmConfig;
use hypervisor::work::ConstantDemand;
use pas_core::{AdmissionPolicy, Credit};
use simkernel::SimDuration;

use crate::report::ExperimentReport;
use crate::scenario::Fidelity;

/// One row of the frontier.
#[derive(Debug, Clone)]
pub struct FrontierRow {
    /// Total booked percent of fmax capacity.
    pub booked_pct: f64,
    /// Offline-predicted floor frequency, MHz.
    pub predicted_mhz: u32,
    /// Frequency the live PAS host settles at, MHz.
    pub simulated_mhz: u32,
    /// Idle power at the predicted floor, watts.
    pub idle_w: f64,
}

/// Booking totals to sweep, percent (kept ≥ 1.5 points clear of every
/// state's capacity so the saturation rescue does not straddle a
/// boundary).
const TOTALS: [f64; 7] = [20.0, 40.0, 55.0, 65.0, 75.0, 85.0, 95.0];

fn run_total(total: f64, secs: u64) -> FrontierRow {
    let spec = machines::optiplex_755();
    let policy = AdmissionPolicy::new(spec.pstate_table());
    let bookings: Vec<Credit> = (0..4).map(|_| Credit::percent(total / 4.0)).collect();
    let floor = policy.enforceable_floor(&bookings);
    let power = cpumodel::PowerModel::default();
    let (_, idle_w) = policy.idle_power_floor(&bookings, &power);

    let mut host = HostConfig::optiplex_defaults(SchedulerKind::Pas).build();
    let thrash = host.fmax_mcps();
    for (i, c) in bookings.iter().enumerate() {
        host.add_vm(
            VmConfig::new(format!("t{i}"), *c),
            Box::new(ConstantDemand::new(thrash)),
        );
    }
    host.run_for(SimDuration::from_secs(secs));

    FrontierRow {
        booked_pct: total,
        predicted_mhz: policy.table().state(floor).frequency.as_mhz(),
        simulated_mhz: host
            .cpu()
            .pstates()
            .state(host.cpu().pstate())
            .frequency
            .as_mhz(),
        idle_w,
    }
}

/// Runs the overbooking-frontier sweep.
#[must_use]
pub fn run(fidelity: Fidelity) -> ExperimentReport {
    let secs = match fidelity {
        Fidelity::Full => 300,
        Fidelity::Quick => 60,
    };
    let mut report = ExperimentReport::new(
        "overbooking",
        "Extension X8: the enforceable floor of a booking set, offline vs live PAS",
    );
    let mut text = format!(
        "Overbooking frontier (4 equal tenants, all thrashing, {secs} s)\n\n  \
         booked%   predicted floor   live PAS settles   idle W @ floor\n",
    );
    for total in TOTALS {
        let row = run_total(total, secs);
        text.push_str(&format!(
            "  {:>6.1}   {:>12} MHz   {:>13} MHz   {:>12.1}\n",
            row.booked_pct, row.predicted_mhz, row.simulated_mhz, row.idle_w
        ));
        let key = format!("{}", row.booked_pct as i64);
        report.scalar(format!("predicted_mhz/{key}"), f64::from(row.predicted_mhz));
        report.scalar(format!("simulated_mhz/{key}"), f64::from(row.simulated_mhz));
        report.scalar(format!("idle_w/{key}"), row.idle_w);
    }
    text.push_str(
        "\n  The offline admission floor and the live scheduler agree: a booking\n  \
         set's worst case pins the DVFS floor, which is the provider's real\n  \
         cost of saying yes.\n",
    );
    report.text = text;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_floor_matches_live_pas() {
        let r = run(Fidelity::Quick);
        for total in TOTALS {
            let key = format!("{}", total as i64);
            let predicted = r.get_scalar(&format!("predicted_mhz/{key}")).unwrap();
            let simulated = r.get_scalar(&format!("simulated_mhz/{key}")).unwrap();
            assert_eq!(
                predicted, simulated,
                "booked {total}%: offline {predicted} MHz vs live {simulated} MHz"
            );
        }
    }

    #[test]
    fn floor_is_monotone_in_booking_weight() {
        let r = run(Fidelity::Quick);
        let mut prev = 0.0;
        for total in TOTALS {
            let key = format!("{}", total as i64);
            let mhz = r.get_scalar(&format!("predicted_mhz/{key}")).unwrap();
            assert!(mhz >= prev, "floor frequency cannot fall as bookings grow");
            prev = mhz;
        }
        assert!(prev > 2400.0, "95% booked needs the top state");
    }
}
