//! Extension X6 — the paper's hyper-threading perspective: what
//! happens to credit enforcement when logical CPUs share a core.
//!
//! SMT introduces a second capacity distortion with exactly the
//! structure of the paper's DVFS problem: the effective speed of a
//! logical CPU depends on its *sibling's* activity, which no credit
//! scheduler accounts for. We run three sibling scenarios on a
//! 2-thread core (Intel-typical 1.25× aggregate speedup) under
//!
//! * **PAS (naive)** — Listing 1.2 verbatim, frequency compensation
//!   only, and
//! * **PAS (SMT-aware)** — Equation 4 extended with the observed
//!   per-thread contention factor,
//!
//! and report each VM's delivered absolute capacity against its
//! booking. The naive scheduler under-delivers as soon as siblings
//! contend (the SMT analogue of Scenario 1); the extended compensation
//! closes the gap, up to the wall-clock limit of a thread.

use cpumodel::machines;
use cpumodel::smt::SmtSpec;
use hypervisor::smt::{SmtAwareness, SmtHost, ThreadId};
use hypervisor::vm::VmConfig;
use hypervisor::work::{ConstantDemand, Idle};
use pas_core::Credit;
use simkernel::SimDuration;

use crate::report::ExperimentReport;
use crate::scenario::Fidelity;

/// One sibling scenario.
#[derive(Debug, Clone, Copy)]
struct Case {
    name: &'static str,
    /// Booked credit (percent) of the measured VM on thread 0.
    booked_a: f64,
    /// Booked credit of the sibling VM on thread 1; `None` = idle
    /// sibling.
    booked_b: Option<f64>,
}

const CASES: [Case; 3] = [
    Case {
        name: "sibling idle",
        booked_a: 40.0,
        booked_b: None,
    },
    Case {
        name: "sibling 40%",
        booked_a: 40.0,
        booked_b: Some(40.0),
    },
    Case {
        name: "sibling 80%",
        booked_a: 40.0,
        booked_b: Some(80.0),
    },
];

/// Outcome of one (case, awareness) run.
#[derive(Debug, Clone)]
pub struct SmtRow {
    /// Scenario label.
    pub case: String,
    /// Awareness label.
    pub awareness: String,
    /// Delivered absolute capacity of the measured VM, percent of one
    /// non-contended thread at fmax.
    pub delivered_pct: f64,
    /// `delivered - booked`, percentage points.
    pub delta_pct: f64,
    /// Total energy, joules.
    pub energy_j: f64,
}

fn run_case(case: Case, awareness: SmtAwareness, secs: u64) -> SmtRow {
    let mut host = SmtHost::new(
        &machines::optiplex_755(),
        SmtSpec::intel_typical(),
        awareness,
    );
    let thrash = host.fmax_mcps();
    let a = host.add_vm(
        VmConfig::new("a", Credit::percent(case.booked_a)),
        Box::new(ConstantDemand::new(thrash)),
        ThreadId(0),
    );
    match case.booked_b {
        Some(pct) => {
            host.add_vm(
                VmConfig::new("b", Credit::percent(pct)),
                Box::new(ConstantDemand::new(thrash)),
                ThreadId(1),
            );
        }
        None => {
            host.add_vm(
                VmConfig::new("b", Credit::percent(40.0)),
                Box::new(Idle),
                ThreadId(1),
            );
        }
    }
    host.run_for(SimDuration::from_secs(secs));
    let delivered = 100.0 * host.vm_absolute_fraction(a);
    SmtRow {
        case: case.name.to_owned(),
        awareness: match awareness {
            SmtAwareness::Naive => "naive".to_owned(),
            SmtAwareness::Aware => "smt-aware".to_owned(),
        },
        delivered_pct: delivered,
        delta_pct: delivered - case.booked_a,
        energy_j: host.total_energy_j(),
    }
}

/// Runs the hyper-threading study.
#[must_use]
pub fn run(fidelity: Fidelity) -> ExperimentReport {
    let secs = match fidelity {
        Fidelity::Full => 600,
        Fidelity::Quick => 60,
    };
    let mut report = ExperimentReport::new(
        "smt",
        "Extension X6: credit enforcement under hyper-threading (naive vs SMT-aware PAS)",
    );
    let mut text = format!(
        "Hyper-threading study ({secs} s, 2-thread core, 1.25x aggregate, VM books 40%)\n\n  \
         scenario       awareness   delivered%   (delivered - booked)pp   energy(J)\n",
    );
    for case in CASES {
        for awareness in [SmtAwareness::Naive, SmtAwareness::Aware] {
            let row = run_case(case, awareness, secs);
            text.push_str(&format!(
                "  {:<13} {:<10} {:9.2}   {:+21.2}   {:9.0}\n",
                row.case, row.awareness, row.delivered_pct, row.delta_pct, row.energy_j
            ));
            let key = format!("{}/{}", row.awareness, row.case.replace(' ', "_"));
            report.scalar(format!("delivered/{key}"), row.delivered_pct);
            report.scalar(format!("delta/{key}"), row.delta_pct);
            report.scalar(format!("energy_j/{key}"), row.energy_j);
        }
    }
    text.push_str(
        "\n  Naive PAS misses the booking exactly when siblings contend;\n  \
         the contention-extended Equation 4 restores it.\n",
    );
    report.text = text;
    report.note(
        "SMT model: per-thread factor 0.625 with both siblings busy \
         (SmtSpec::intel_typical); bookings are fractions of a \
         non-contended thread at fmax.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_sibling_case_is_awareness_independent() {
        let r = run(Fidelity::Quick);
        let naive = r.get_scalar("delivered/naive/sibling_idle").unwrap();
        let aware = r.get_scalar("delivered/smt-aware/sibling_idle").unwrap();
        assert!((naive - 40.0).abs() < 2.0, "naive {naive}");
        assert!((aware - 40.0).abs() < 2.0, "aware {aware}");
    }

    #[test]
    fn naive_underdelivers_under_contention() {
        let r = run(Fidelity::Quick);
        for case in ["sibling_40%", "sibling_80%"] {
            let delta = r.get_scalar(&format!("delta/naive/{case}")).unwrap();
            assert!(
                delta < -4.0,
                "{case}: naive delta {delta} should be well below 0"
            );
        }
    }

    #[test]
    fn aware_restores_booking_under_contention() {
        let r = run(Fidelity::Quick);
        for case in ["sibling_40%", "sibling_80%"] {
            let delta = r.get_scalar(&format!("delta/smt-aware/{case}")).unwrap();
            assert!(delta > -2.5, "{case}: aware delta {delta} should be near 0");
            let naive = r.get_scalar(&format!("delta/naive/{case}")).unwrap();
            assert!(
                delta > naive + 3.0,
                "{case}: aware must beat naive ({delta} vs {naive})"
            );
        }
    }

    #[test]
    fn heavier_sibling_hurts_naive_more() {
        let r = run(Fidelity::Quick);
        let light = r.get_scalar("delta/naive/sibling_40%").unwrap();
        let heavy = r.get_scalar("delta/naive/sibling_80%").unwrap();
        assert!(
            heavy < light + 0.5,
            "more contention, bigger miss: {heavy} vs {light}"
        );
    }
}
