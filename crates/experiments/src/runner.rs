//! The experiment registry.

use crate::report::ExperimentReport;
use crate::scenario::Fidelity;
use crate::{
    churn, cluster_energy, consolidation, energy, fig1, figures, migration, multicore, overbooking,
    placement, sensitivity, smt, table1, table2, validation,
};

/// The registry: `(name, one-line description)` in DESIGN.md index
/// order. Descriptions are each module's headline, so `repro list`
/// doubles as a table of contents. Crate-private: the public API is
/// [`all_experiment_names`] and [`experiment_description`], so the
/// tuple-array shape can change without breaking callers.
const EXPERIMENTS: [(&str, &str); 25] = [
    (
        "validation-freq-load",
        "§5.2 — execution time ∝ 1/load at fixed frequency (Eq. 2 check)",
    ),
    (
        "validation-freq-time",
        "§5.2 — execution time ∝ 1/frequency at fixed credit (Eq. 1 check)",
    ),
    (
        "validation-credit-time",
        "§5.2 — execution time ∝ 1/credit at fixed frequency (Eq. 3 check)",
    ),
    (
        "fig1",
        "Figure 1 — compensation of a frequency drop with credit allocation",
    ),
    (
        "fig2",
        "Figure 2 — V20/V70 under Credit at maximum frequency (the reference)",
    ),
    (
        "fig3",
        "Figure 3 — Credit + stock ondemand: the unstable governor",
    ),
    (
        "fig4",
        "Figure 4 — Credit + the paper's stabilised ondemand",
    ),
    (
        "fig5",
        "Figure 5 — the incompatibility: V20's QoS degraded at low frequency",
    ),
    ("fig6", "Figure 6 — SEDF with extra time (variable credit)"),
    ("fig7", "Figure 7 — SEDF global load under DVFS"),
    ("fig8", "Figure 8 — PAS: V20's absolute load preserved"),
    (
        "fig9",
        "Figure 9 — PAS: compensated (granted) credits over time",
    ),
    ("fig10", "Figure 10 — PAS: frequency adaptation over time"),
    ("table1", "Table 1 — cf_min on five processors"),
    (
        "table2",
        "Table 2 — pi-app execution times on seven platform configs",
    ),
    (
        "energy",
        "X1 — energy/QoS trade-off across governor and scheduler choices",
    ),
    (
        "placement",
        "X2 — §4.1's three controller placements (daemon / hypervisor / hybrid)",
    ),
    (
        "multicore",
        "X3 — multi-core hosts with per-socket and per-core DVFS",
    ),
    (
        "smt",
        "X6 — hyper-threading: credit enforcement when logical CPUs share a core",
    ),
    (
        "sensitivity",
        "X7 — PAS design-knob sweep: smoothing window × planner headroom",
    ),
    (
        "overbooking",
        "X8 — the enforceable floor of a booking set under compensation",
    ),
    (
        "consolidation",
        "X4 — §2.3: consolidation is memory-bound, DVFS still pays",
    ),
    ("churn", "X5 — tenant arrival/departure churn under PAS"),
    (
        "cluster-energy",
        "X9 — §2.3 at fleet scale under the placement controller",
    ),
    (
        "migration",
        "X10 — load-triggered live migration across the fleet",
    ),
];

/// All experiment names, in DESIGN.md index order.
#[must_use]
pub fn all_experiment_names() -> Vec<&'static str> {
    EXPERIMENTS.iter().map(|&(name, _)| name).collect()
}

/// The one-line description of an experiment (`None` for unknown
/// names).
#[must_use]
pub fn experiment_description(name: &str) -> Option<&'static str> {
    EXPERIMENTS
        .iter()
        .find(|&&(n, _)| n == name)
        .map(|&(_, desc)| desc)
}

/// Runs one experiment by name, serially.
///
/// Returns `None` for an unknown name (the caller prints the list).
#[must_use]
pub fn run_experiment(name: &str, fidelity: Fidelity) -> Option<ExperimentReport> {
    run_experiment_jobs(name, fidelity, 1)
}

/// Runs one experiment by name, letting fleet-scale experiments
/// (consolidation, churn, cluster-energy, migration) simulate their
/// independent hosts on up to `jobs` worker threads.
///
/// Reports are byte-identical for every `jobs` value: per-host RNG
/// seeds are fixed at build time and report assembly walks hosts in
/// index order (see `cluster::exec`).
///
/// Returns `None` for an unknown name (the caller prints the list).
#[must_use]
pub fn run_experiment_jobs(
    name: &str,
    fidelity: Fidelity,
    jobs: usize,
) -> Option<ExperimentReport> {
    let report = match name {
        "validation-freq-load" => validation::freq_load(fidelity),
        "validation-freq-time" => validation::freq_time(fidelity),
        "validation-credit-time" => validation::credit_time(fidelity),
        "fig1" => fig1::run(fidelity),
        "fig2" => figures::fig2(fidelity),
        "fig3" => figures::fig3(fidelity),
        "fig4" => figures::fig4(fidelity),
        "fig5" => figures::fig5(fidelity),
        "fig6" => figures::fig6(fidelity),
        "fig7" => figures::fig7(fidelity),
        "fig8" => figures::fig8(fidelity),
        "fig9" => figures::fig9(fidelity),
        "fig10" => figures::fig10(fidelity),
        "table1" => table1::run(fidelity),
        "table2" => table2::run(fidelity),
        "energy" => energy::run(fidelity),
        "placement" => placement::run(fidelity),
        "multicore" => multicore::run(fidelity),
        "smt" => smt::run(fidelity),
        "sensitivity" => sensitivity::run(fidelity),
        "overbooking" => overbooking::run(fidelity),
        "consolidation" => consolidation::run_with(fidelity, jobs),
        "churn" => churn::run_with(fidelity, jobs),
        "cluster-energy" => cluster_energy::run_with(fidelity, jobs),
        "migration" => migration::run_with(fidelity, jobs),
        _ => return None,
    };
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        // Every listed name resolves (quick multicore run — the
        // cheapest — verifies dispatch; full dispatch coverage comes
        // from each module's own tests).
        assert!(run_experiment("multicore", Fidelity::Quick).is_some());
        assert!(run_experiment("nonsense", Fidelity::Quick).is_none());
        assert_eq!(all_experiment_names().len(), 25);
    }

    #[test]
    fn every_experiment_has_a_nonempty_description() {
        for name in all_experiment_names() {
            let desc = experiment_description(name).expect("described");
            assert!(!desc.is_empty(), "{name} has an empty description");
        }
        assert_eq!(experiment_description("nonsense"), None);
    }
}
