//! The experiment registry.

use crate::report::ExperimentReport;
use crate::scenario::Fidelity;
use crate::{
    churn, cluster_energy, consolidation, energy, fig1, figures, migration, multicore, overbooking,
    placement, sensitivity, smt, table1, table2, validation,
};

/// All experiment names, in DESIGN.md index order.
#[must_use]
pub fn all_experiment_names() -> Vec<&'static str> {
    vec![
        "validation-freq-load",
        "validation-freq-time",
        "validation-credit-time",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "table1",
        "table2",
        "energy",
        "placement",
        "multicore",
        "smt",
        "sensitivity",
        "overbooking",
        "consolidation",
        "churn",
        "cluster-energy",
        "migration",
    ]
}

/// Runs one experiment by name, serially.
///
/// Returns `None` for an unknown name (the caller prints the list).
#[must_use]
pub fn run_experiment(name: &str, fidelity: Fidelity) -> Option<ExperimentReport> {
    run_experiment_jobs(name, fidelity, 1)
}

/// Runs one experiment by name, letting fleet-scale experiments
/// (consolidation, churn, cluster-energy, migration) simulate their
/// independent hosts on up to `jobs` worker threads.
///
/// Reports are byte-identical for every `jobs` value: per-host RNG
/// seeds are fixed at build time and report assembly walks hosts in
/// index order (see `cluster::exec`).
///
/// Returns `None` for an unknown name (the caller prints the list).
#[must_use]
pub fn run_experiment_jobs(
    name: &str,
    fidelity: Fidelity,
    jobs: usize,
) -> Option<ExperimentReport> {
    let report = match name {
        "validation-freq-load" => validation::freq_load(fidelity),
        "validation-freq-time" => validation::freq_time(fidelity),
        "validation-credit-time" => validation::credit_time(fidelity),
        "fig1" => fig1::run(fidelity),
        "fig2" => figures::fig2(fidelity),
        "fig3" => figures::fig3(fidelity),
        "fig4" => figures::fig4(fidelity),
        "fig5" => figures::fig5(fidelity),
        "fig6" => figures::fig6(fidelity),
        "fig7" => figures::fig7(fidelity),
        "fig8" => figures::fig8(fidelity),
        "fig9" => figures::fig9(fidelity),
        "fig10" => figures::fig10(fidelity),
        "table1" => table1::run(fidelity),
        "table2" => table2::run(fidelity),
        "energy" => energy::run(fidelity),
        "placement" => placement::run(fidelity),
        "multicore" => multicore::run(fidelity),
        "smt" => smt::run(fidelity),
        "sensitivity" => sensitivity::run(fidelity),
        "overbooking" => overbooking::run(fidelity),
        "consolidation" => consolidation::run_with(fidelity, jobs),
        "churn" => churn::run_with(fidelity, jobs),
        "cluster-energy" => cluster_energy::run_with(fidelity, jobs),
        "migration" => migration::run_with(fidelity, jobs),
        _ => return None,
    };
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        // Every listed name resolves (quick multicore run — the
        // cheapest — verifies dispatch; full dispatch coverage comes
        // from each module's own tests).
        assert!(run_experiment("multicore", Fidelity::Quick).is_some());
        assert!(run_experiment("nonsense", Fidelity::Quick).is_none());
        assert_eq!(all_experiment_names().len(), 25);
    }
}
