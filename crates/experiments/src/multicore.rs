//! Extension X3 — the paper's closing perspective: multi-core hosts
//! and per-socket / per-core DVFS.
//!
//! A fluid steady-state study on a 2-socket × 2-core host: one VM per
//! core with heterogeneous absolute demands. For each DVFS
//! granularity the PAS planner picks, per frequency domain, the lowest
//! P-state that absorbs the *busiest* core in the domain, compensates
//! every VM's credit for its domain's frequency (Equation 4), and we
//! integrate energy over a fixed horizon.
//!
//! Expected structure: finer DVFS domains never cost more energy
//! (`per-core ≤ per-socket ≤ global`), and the compensated credits
//! preserve every VM's booked absolute capacity at every granularity.

use cpumodel::topology::{CpuPackage, DvfsGranularity, Topology};
use cpumodel::{machines, PStateIdx};
use pas_core::{Credit, FreqPlanner};

use crate::report::ExperimentReport;
use crate::scenario::Fidelity;

/// The per-core booked credits and demands of the study (percent of a
/// core's fmax capacity).
const CORE_LOADS: [f64; 4] = [20.0, 70.0, 40.0, 10.0];

/// Steady-state outcome at one granularity.
#[derive(Debug, Clone)]
pub struct GranularityRow {
    /// Granularity label.
    pub label: String,
    /// Chosen P-state per core.
    pub pstates: Vec<PStateIdx>,
    /// Total energy over the horizon, joules.
    pub energy_j: f64,
    /// Worst-case granted absolute capacity across VMs, percent
    /// (target: each VM's booked demand).
    pub worst_granted_pct: f64,
}

fn study(granularity: DvfsGranularity, horizon_secs: f64) -> GranularityRow {
    let spec = machines::optiplex_755();
    let topo = Topology::new(2, 2, granularity);
    let mut pkg = CpuPackage::new(&spec, topo);
    let planner = FreqPlanner::new(spec.pstate_table());

    // Plan each domain for its busiest core.
    for d in 0..topo.n_domains() {
        let domain = cpumodel::topology::DomainId(d);
        let busiest = topo
            .cores_in(domain)
            .iter()
            .map(|c| CORE_LOADS[c.0])
            .fold(0.0f64, f64::max);
        let pstate = planner.compute_new_freq(busiest);
        pkg.set_domain_pstate(domain, pstate)
            .expect("valid p-state");
    }

    // Compensate credits and integrate energy: each VM's busy fraction
    // at its core's frequency is demand / (ratio · cf), its granted
    // absolute capacity is min(cap, 100) · ratio · cf.
    let mut worst_granted: f64 = f64::INFINITY;
    for (core, &load) in CORE_LOADS.iter().enumerate().take(topo.n_cores()) {
        let id = cpumodel::topology::CoreId(core);
        let cpu = pkg.core(id);
        let ratio = cpu.ratio();
        let cf = cpu.cf();
        let booked = Credit::percent(load);
        let cap = planner.compensate(booked, cpu.pstate()).clamped_to(100.0);
        let granted_abs = cap.as_percent() * ratio * cf;
        worst_granted = worst_granted.min(granted_abs - load);
        let busy = (load / (100.0 * ratio * cf)).min(1.0);
        pkg.core_mut(id)
            .account(busy, simkernel::SimDuration::from_secs_f64(horizon_secs));
    }

    let pstates = (0..topo.n_cores())
        .map(|c| pkg.core(cpumodel::topology::CoreId(c)).pstate())
        .collect();
    GranularityRow {
        label: format!("{granularity:?}"),
        pstates,
        energy_j: pkg.total_joules(),
        worst_granted_pct: worst_granted,
    }
}

/// Dynamic outcome at one granularity (full `MultiHost` simulation).
#[derive(Debug, Clone)]
pub struct DynamicRow {
    /// Granularity label.
    pub label: String,
    /// Total energy over the run, joules.
    pub energy_j: f64,
    /// Worst booking violation across VMs, percentage points
    /// (negative = under-delivered).
    pub worst_delta_pct: f64,
}

fn dynamic_study(granularity: DvfsGranularity, secs: u64) -> DynamicRow {
    use hypervisor::multicore::{MultiDvfs, MultiHost};
    use hypervisor::vm::VmConfig;
    use hypervisor::work::ConstantDemand;
    use simkernel::SimDuration;

    let machine = machines::optiplex_755();
    let topo = Topology::new(2, 2, granularity);
    let mut host = MultiHost::new(&machine, topo, MultiDvfs::Pas);
    let fmax = host.fmax_mcps();
    for (i, load) in CORE_LOADS.iter().enumerate() {
        host.add_vm(
            VmConfig::new(format!("vm{i}"), Credit::percent(*load)),
            Box::new(ConstantDemand::new(fmax)), // thrashing; the cap decides
            cpumodel::topology::CoreId(i),
        );
    }
    host.run_for(SimDuration::from_secs(secs));
    let mut worst: f64 = f64::INFINITY;
    for (i, load) in CORE_LOADS.iter().enumerate() {
        let abs = 100.0 * host.vm_absolute_fraction(hypervisor::vm::VmId(i));
        worst = worst.min(abs - load);
    }
    DynamicRow {
        label: format!("{granularity:?}"),
        energy_j: host.total_energy_j(),
        worst_delta_pct: worst,
    }
}

/// Runs the multi-core DVFS-granularity study.
#[must_use]
pub fn run(fidelity: Fidelity) -> ExperimentReport {
    let horizon = match fidelity {
        Fidelity::Full => 3600.0,
        Fidelity::Quick => 360.0,
    };
    let rows: Vec<GranularityRow> = [
        DvfsGranularity::Global,
        DvfsGranularity::PerSocket,
        DvfsGranularity::PerCore,
    ]
    .into_iter()
    .map(|g| study(g, horizon))
    .collect();

    let mut report = ExperimentReport::new(
        "multicore",
        "Extension X3: PAS on a multi-core host with per-socket / per-core DVFS",
    );
    let mut text = format!(
        "Multi-core DVFS granularity (2 sockets x 2 cores, core loads {CORE_LOADS:?}%)\n\n  \
         granularity   p-states (per core)     energy(J)   min(granted - booked)%\n",
    );
    for row in &rows {
        let ps: Vec<String> = row.pstates.iter().map(|p| format!("{p}")).collect();
        text.push_str(&format!(
            "  {:<12} [{}]   {:9.0}   {:+.2}\n",
            row.label,
            ps.join(", "),
            row.energy_j,
            row.worst_granted_pct
        ));
        report.scalar(format!("energy_j/{}", row.label), row.energy_j);
        report.scalar(
            format!("worst_granted/{}", row.label),
            row.worst_granted_pct,
        );
    }
    text.push_str("\n  Finer domains save energy; Equation 4 holds at every granularity.\n");

    // Part two: the same study on the dynamic multi-core host (per-core
    // Credit schedulers, per-domain PAS ticks, thrashing VMs).
    let secs = match fidelity {
        Fidelity::Full => 600,
        Fidelity::Quick => 60,
    };
    text.push_str(&format!(
        "\nDynamic simulation ({secs} s, thrashing VMs, per-domain PAS):\n\n  \
         granularity   energy(J)   worst (delivered - booked)%\n",
    ));
    for g in [
        DvfsGranularity::Global,
        DvfsGranularity::PerSocket,
        DvfsGranularity::PerCore,
    ] {
        let row = dynamic_study(g, secs);
        text.push_str(&format!(
            "  {:<12} {:9.0}   {:+.2}\n",
            row.label, row.energy_j, row.worst_delta_pct
        ));
        report.scalar(format!("dyn_energy_j/{}", row.label), row.energy_j);
        report.scalar(
            format!("dyn_worst_delta/{}", row.label),
            row.worst_delta_pct,
        );
    }
    report.text = text;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finer_granularity_never_costs_more() {
        let r = run(Fidelity::Quick);
        let global = r.get_scalar("energy_j/Global").unwrap();
        let socket = r.get_scalar("energy_j/PerSocket").unwrap();
        let core = r.get_scalar("energy_j/PerCore").unwrap();
        assert!(
            socket <= global + 1e-6,
            "per-socket {socket} vs global {global}"
        );
        assert!(
            core <= socket + 1e-6,
            "per-core {core} vs per-socket {socket}"
        );
        assert!(
            core < global,
            "per-core strictly saves on heterogeneous loads"
        );
    }

    #[test]
    fn bookings_preserved_at_all_granularities() {
        let r = run(Fidelity::Quick);
        for label in ["Global", "PerSocket", "PerCore"] {
            let worst = r.get_scalar(&format!("worst_granted/{label}")).unwrap();
            assert!(
                worst > -0.5,
                "{label}: granted capacity {worst} below booking"
            );
        }
    }

    #[test]
    fn dynamic_study_matches_static_ordering() {
        let r = run(Fidelity::Quick);
        let global = r.get_scalar("dyn_energy_j/Global").unwrap();
        let core = r.get_scalar("dyn_energy_j/PerCore").unwrap();
        assert!(core < global, "dynamic per-core {core} vs global {global}");
        for label in ["Global", "PerSocket", "PerCore"] {
            let worst = r.get_scalar(&format!("dyn_worst_delta/{label}")).unwrap();
            assert!(
                worst > -3.0,
                "{label}: delivered {worst} points under booking"
            );
        }
    }

    #[test]
    fn busy_core_forces_domain_frequency() {
        // Socket 0 holds the 70% core → both its cores run fast under
        // per-socket DVFS; socket 1's cores can idle low.
        let row = study(DvfsGranularity::PerSocket, 10.0);
        assert!(
            row.pstates[0] == row.pstates[1],
            "same domain, same p-state"
        );
        assert!(row.pstates[2] == row.pstates[3]);
        assert!(row.pstates[0] > row.pstates[2], "busy socket runs faster");
    }
}
