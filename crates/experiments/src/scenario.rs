//! The paper's evaluation scenario (Section 5.3), reusable by every
//! figure.
//!
//! Two customer VMs on the Optiplex 755:
//!
//! * **V20** — 20% credit, three-phase profile, active early;
//! * **V70** — 70% credit, three-phase profile, active later;
//! * **Dom0** — 10% credit, highest priority, light management load.
//!
//! The timeline (full fidelity):
//!
//! ```text
//! 0 ....... 500 ............. 2500 ............. 5000 ...... 6000 s
//!            V20 active ───────────────────────────┤
//!                             V70 active ──────────┤
//! phase:     |    A: V20 only |  B: V20 + V70      |  idle tail
//! ```
//!
//! Phase A is where the paper's incompatibility shows (host globally
//! underloaded while V20 is overloaded); phase B is the control
//! condition (host loaded, frequency at maximum).

use governors::Governor;
use hypervisor::host::{Host, HostConfig, SchedulerKind};
use hypervisor::vm::{VmConfig, VmId};
use metrics::TimeSeries;
use pas_core::Credit;
use simkernel::{SimDuration, SimRng};
use workloads::{ArrivalModel, Intensity, Profile, WebApp};

/// How large to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Paper-scale durations (figures worth keeping).
    Full,
    /// ~10× shorter runs for tests and benches; same shapes, coarser
    /// statistics.
    Quick,
}

impl Fidelity {
    /// Scales a full-fidelity duration.
    #[must_use]
    pub fn scale(self, secs: u64) -> SimDuration {
        match self {
            Fidelity::Full => SimDuration::from_secs(secs),
            Fidelity::Quick => SimDuration::from_secs((secs / 10).max(30)),
        }
    }
}

/// The timeline of the three-phase scenario, in seconds (already
/// fidelity-scaled).
#[derive(Debug, Clone, Copy)]
pub struct Timeline {
    /// V20 activates at this instant.
    pub v20_start: f64,
    /// V70 activates at this instant (start of phase B).
    pub v70_start: f64,
    /// Both deactivate at this instant.
    pub active_end: f64,
    /// Total run length.
    pub total: f64,
}

impl Timeline {
    fn new(f: Fidelity) -> Self {
        Timeline {
            v20_start: f.scale(500).as_secs_f64(),
            v70_start: f.scale(2500).as_secs_f64(),
            active_end: f.scale(5000).as_secs_f64(),
            total: f.scale(6000).as_secs_f64(),
        }
    }

    /// A window safely inside phase A (V20 active alone), trimmed by
    /// 20% on each side to avoid transients.
    #[must_use]
    pub fn phase_a(&self) -> (f64, f64) {
        let span = self.v70_start - self.v20_start;
        (self.v20_start + 0.2 * span, self.v70_start - 0.1 * span)
    }

    /// A window safely inside phase B (both active).
    #[must_use]
    pub fn phase_b(&self) -> (f64, f64) {
        let span = self.active_end - self.v70_start;
        (self.v70_start + 0.2 * span, self.active_end - 0.1 * span)
    }
}

/// A built scenario, ready to run.
pub struct Scenario {
    /// The host (not yet run).
    pub host: Host,
    /// V20's id.
    pub v20: VmId,
    /// V70's id.
    pub v70: VmId,
    /// Dom0's id.
    pub dom0: VmId,
    /// The fidelity-scaled timeline.
    pub timeline: Timeline,
}

/// Scenario knobs beyond the scheduler/governor choice.
pub struct ScenarioConfig {
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Governor (ignored — and rejected — for PAS).
    pub governor: Option<Box<dyn Governor>>,
    /// Active-phase intensity for both customer VMs.
    pub intensity: Intensity,
    /// Poisson arrivals (bursty) instead of fluid demand.
    pub bursty: bool,
    /// RNG seed for bursty arrivals.
    pub seed: u64,
    /// Run size.
    pub fidelity: Fidelity,
    /// PAS smoothing-window override (sensitivity study).
    pub pas_smoothing_window: Option<usize>,
    /// PAS planner-headroom override, percent (sensitivity study).
    pub pas_headroom_pct: Option<f64>,
}

impl ScenarioConfig {
    /// The common case: fluid arrivals, seed 42.
    #[must_use]
    pub fn new(scheduler: SchedulerKind, intensity: Intensity, fidelity: Fidelity) -> Self {
        ScenarioConfig {
            scheduler,
            governor: None,
            intensity,
            bursty: false,
            seed: 42,
            fidelity,
            pas_smoothing_window: None,
            pas_headroom_pct: None,
        }
    }

    /// Overrides PAS's smoothing window and planner headroom (only
    /// meaningful with [`SchedulerKind::Pas`]).
    #[must_use]
    pub fn with_pas_tuning(mut self, window: Option<usize>, headroom_pct: Option<f64>) -> Self {
        self.pas_smoothing_window = window;
        self.pas_headroom_pct = headroom_pct;
        self
    }

    /// Installs a governor.
    #[must_use]
    pub fn with_governor(mut self, governor: Box<dyn Governor>) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Switches to Poisson arrivals.
    #[must_use]
    pub fn with_bursty_arrivals(mut self, seed: u64) -> Self {
        self.bursty = true;
        self.seed = seed;
        self
    }
}

/// Builds the paper's scenario.
#[must_use]
pub fn build(config: ScenarioConfig) -> Scenario {
    let timeline = Timeline::new(config.fidelity);
    let mut host_cfg = HostConfig::optiplex_defaults(config.scheduler)
        .with_sample_period(config.fidelity.scale(10));
    if let Some(gov) = config.governor {
        host_cfg = host_cfg.with_governor(gov);
    }
    if let Some(w) = config.pas_smoothing_window {
        host_cfg = host_cfg.with_pas_smoothing_window(w);
    }
    if let Some(h) = config.pas_headroom_pct {
        host_cfg = host_cfg.with_pas_headroom(h);
    }
    let mut host = host_cfg.build();
    let fmax = host.fmax_mcps();

    let arrivals = |stream: u64| -> ArrivalModel {
        if config.bursty {
            ArrivalModel::Poisson {
                request_mcycles: 50.0,
                rng: SimRng::seed_from(config.seed).fork(stream),
            }
        } else {
            ArrivalModel::Fluid
        }
    };

    let profile_for = |start: f64| {
        Profile::three_phase(
            SimDuration::from_secs_f64(start),
            SimDuration::from_secs_f64(timeline.active_end - start),
            config.intensity,
        )
    };

    let v20 = host.add_vm(
        VmConfig::new("v20", Credit::percent(20.0)),
        Box::new(WebApp::new(
            profile_for(timeline.v20_start),
            0.20 * fmax,
            fmax,
            arrivals(0),
        )),
    );
    let v70 = host.add_vm(
        VmConfig::new("v70", Credit::percent(70.0)),
        Box::new(WebApp::new(
            profile_for(timeline.v70_start),
            0.70 * fmax,
            fmax,
            arrivals(1),
        )),
    );
    // Dom0: light management demand (2% of its 10% booking) for the
    // whole run.
    let dom0 = host.add_vm(
        VmConfig::dom0(),
        Box::new(WebApp::new(
            Profile::active_for(
                SimDuration::from_secs_f64(timeline.total),
                Intensity::Fraction(0.2),
            ),
            0.10 * fmax,
            fmax,
            ArrivalModel::Fluid,
        )),
    );
    Scenario {
        host,
        v20,
        v70,
        dom0,
        timeline,
    }
}

impl Scenario {
    /// Runs the scenario to its end.
    pub fn run(&mut self) {
        let total = SimDuration::from_secs_f64(self.timeline.total);
        self.host.run_for(total);
    }

    /// Frequency over time, in MHz.
    #[must_use]
    pub fn freq_series(&self) -> TimeSeries {
        TimeSeries::from_points(
            "frequency_mhz",
            self.host
                .stats()
                .snapshots()
                .iter()
                .map(|s| (s.t_secs, f64::from(s.freq_mhz)))
                .collect(),
        )
    }

    /// A VM's global load over time (the paper's "VM global load").
    #[must_use]
    pub fn global_load_series(&self, vm: VmId, name: &str) -> TimeSeries {
        TimeSeries::from_points(
            name,
            self.host
                .stats()
                .snapshots()
                .iter()
                .map(|s| (s.t_secs, s.vms[vm.0].global_load_pct))
                .collect(),
        )
    }

    /// A VM's absolute load over time (Section 4's definition).
    #[must_use]
    pub fn absolute_load_series(&self, vm: VmId, name: &str) -> TimeSeries {
        TimeSeries::from_points(
            name,
            self.host
                .stats()
                .snapshots()
                .iter()
                .map(|s| (s.t_secs, s.vms[vm.0].absolute_load_pct))
                .collect(),
        )
    }

    /// A VM's effective cap over time (PAS's compensated credit; the
    /// quantity Figure 9 reports as "granted credit").
    #[must_use]
    pub fn cap_series(&self, vm: VmId, name: &str) -> TimeSeries {
        TimeSeries::from_points(
            name,
            self.host
                .stats()
                .snapshots()
                .iter()
                .filter_map(|s| s.vms[vm.0].cap_pct.map(|c| (s.t_secs, c)))
                .collect(),
        )
    }

    /// Cumulative energy in joules at the end of the run.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.host.cpu().energy().joules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use governors::StableOndemand;
    use metrics::summary;

    #[test]
    fn timeline_windows_are_ordered() {
        let t = Timeline::new(Fidelity::Quick);
        let (a0, a1) = t.phase_a();
        let (b0, b1) = t.phase_b();
        assert!(t.v20_start < a0 && a0 < a1 && a1 <= t.v70_start);
        assert!(t.v70_start < b0 && b0 < b1 && b1 <= t.active_end);
        assert!(t.active_end < t.total);
    }

    #[test]
    fn exact_scenario_credit_scheduler_phase_loads() {
        let mut sc = build(ScenarioConfig::new(
            SchedulerKind::Credit,
            Intensity::Exact,
            Fidelity::Quick,
        ));
        sc.run();
        let v20 = sc.global_load_series(sc.v20, "v20");
        let (a0, a1) = sc.timeline.phase_a();
        let (b0, b1) = sc.timeline.phase_b();
        let a = v20.mean_between(a0, a1).unwrap();
        let b = v20.mean_between(b0, b1).unwrap();
        assert!(summary::within_pct(a, 20.0, 10.0), "phase A load {a}");
        assert!(summary::within_pct(b, 20.0, 10.0), "phase B load {b}");
        // Before activation: silent.
        let pre = v20.mean_between(0.0, sc.timeline.v20_start * 0.9).unwrap();
        assert!(pre < 1.0, "pre-phase load {pre}");
    }

    #[test]
    fn governor_drops_frequency_in_phase_a() {
        let mut sc = build(
            ScenarioConfig::new(SchedulerKind::Credit, Intensity::Exact, Fidelity::Quick)
                .with_governor(Box::new(StableOndemand::new())),
        );
        sc.run();
        let freq = sc.freq_series();
        let (a0, a1) = sc.timeline.phase_a();
        let (b0, b1) = sc.timeline.phase_b();
        let fa = freq.mean_between(a0, a1).unwrap();
        let fb = freq.mean_between(b0, b1).unwrap();
        assert!(fa < 1700.0, "phase A frequency {fa} (expected near 1600)");
        assert!(fb > 2600.0, "phase B frequency {fb} (expected 2667)");
    }
}
