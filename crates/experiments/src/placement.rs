//! Extension X2 — Section 4.1's three implementation placements.
//!
//! The paper prototyped PAS (1) as a user-level daemon adjusting only
//! credits under an external governor, (2) as a user-level daemon
//! owning both credits and DVFS, and (3) inside the hypervisor
//! scheduler — and chose (3) for reactivity. This experiment
//! quantifies that choice: the same thrashing scenario is controlled
//! by each placement, and we report how closely V20's absolute load
//! tracks its booked 20% (mean and RMS error over phase A).
//!
//! The user-level placements run at a 1 s control period (a realistic
//! daemon poll), the in-scheduler one at the 30 ms accounting tick —
//! the 30× reactivity gap is exactly the paper's argument.

use enforcer::SimBackend;
use hypervisor::host::SchedulerKind;
use pas_core::{ControllerPlacement, PasController};
use simkernel::SimDuration;
use workloads::Intensity;

use crate::report::ExperimentReport;
use crate::scenario::{build, Fidelity, Scenario, ScenarioConfig};

/// One placement's tracking quality.
#[derive(Debug, Clone)]
pub struct PlacementRow {
    /// Placement label.
    pub label: String,
    /// Mean of V20's absolute load over phase A (target 20%).
    pub mean_abs: f64,
    /// RMS deviation from 20% over phase A.
    pub rms_error: f64,
}

fn evaluate(sc: &Scenario, label: &str) -> PlacementRow {
    let (a0, a1) = sc.timeline.phase_a();
    let series = sc.absolute_load_series(sc.v20, "v20_abs");
    let pts: Vec<f64> = series
        .points()
        .iter()
        .filter(|&&(t, _)| t >= a0 && t < a1)
        .map(|&(_, v)| v)
        .collect();
    let mean = pts.iter().sum::<f64>() / pts.len().max(1) as f64;
    let rms =
        (pts.iter().map(|v| (v - 20.0).powi(2)).sum::<f64>() / pts.len().max(1) as f64).sqrt();
    PlacementRow {
        label: label.to_owned(),
        mean_abs: mean,
        rms_error: rms,
    }
}

fn run_in_scheduler(fidelity: Fidelity) -> PlacementRow {
    let mut sc = build(ScenarioConfig::new(
        SchedulerKind::Pas,
        Intensity::Thrashing,
        fidelity,
    ));
    sc.run();
    evaluate(&sc, "in-scheduler (30ms tick)")
}

fn run_user_level(placement: ControllerPlacement, fidelity: Fidelity) -> PlacementRow {
    let mut cfg = ScenarioConfig::new(SchedulerKind::Credit, Intensity::Thrashing, fidelity);
    if placement == ControllerPlacement::UserLevelCreditOnly {
        // Placement 1: the external ondemand governor owns DVFS.
        cfg = cfg.with_governor(Box::new(governors::StableOndemand::new()));
    }
    let mut sc = build(cfg);
    let mut controller = PasController::new(placement, sc.host.cpu().pstates().clone());
    let control_period = SimDuration::from_secs(1);
    let total = SimDuration::from_secs_f64(sc.timeline.total);
    let steps = total / control_period;
    for _ in 0..steps {
        sc.host.run_for(control_period);
        let mut backend = SimBackend::new(&mut sc.host);
        controller
            .step(&mut backend)
            .expect("sim backend never fails");
    }
    let label = match placement {
        ControllerPlacement::UserLevelCreditOnly => "user-level credits only (1s)",
        ControllerPlacement::UserLevelFull => "user-level credits+DVFS (1s)",
    };
    evaluate(&sc, label)
}

/// Runs the placement comparison.
#[must_use]
pub fn run(fidelity: Fidelity) -> ExperimentReport {
    let rows = vec![
        run_user_level(ControllerPlacement::UserLevelCreditOnly, fidelity),
        run_user_level(ControllerPlacement::UserLevelFull, fidelity),
        run_in_scheduler(fidelity),
    ];
    let mut report = ExperimentReport::new(
        "placement",
        "Extension X2: the three controller placements of Section 4.1",
    );
    let mut text = String::from(
        "Controller placements (thrashing scenario; target: V20 absolute load = 20%)\n\n  \
         placement                        mean abs%   RMS error\n",
    );
    for row in &rows {
        text.push_str(&format!(
            "  {:<32} {:8.1}   {:8.2}\n",
            row.label, row.mean_abs, row.rms_error
        ));
        report.scalar(format!("mean/{}", row.label), row.mean_abs);
        report.scalar(format!("rms/{}", row.label), row.rms_error);
    }
    text.push_str(
        "\n  All three converge on the booked capacity; the in-scheduler placement \
         tracks it with the smallest error, matching the paper's choice.\n",
    );
    report.text = text;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_placements_converge_to_booking() {
        let r = run(Fidelity::Quick);
        for (name, _) in r.scalars.iter().filter(|(n, _)| n.starts_with("mean/")) {
            let mean = r.get_scalar(name).unwrap();
            assert!(
                (mean - 20.0).abs() < 4.0,
                "{name}: mean absolute load {mean} far from 20%"
            );
        }
    }

    #[test]
    fn in_scheduler_tracks_best() {
        let r = run(Fidelity::Quick);
        let in_sched = r.get_scalar("rms/in-scheduler (30ms tick)").unwrap();
        let full = r.get_scalar("rms/user-level credits+DVFS (1s)").unwrap();
        assert!(
            in_sched <= full + 0.5,
            "in-scheduler RMS {in_sched} should not be worse than user-level {full}"
        );
    }
}
