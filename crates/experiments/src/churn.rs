//! Extension X5 — tenant churn: PAS under a realistic hosting-center
//! arrival/departure process.
//!
//! The paper's scenario flips V70 on and off once; a hosting center
//! sees continuous churn. Here tenants arrive as a Poisson process,
//! book a random credit, run a random-intensity web load for an
//! exponential lifetime, and depart. We compare total energy and
//! aggregate delivered-vs-booked capacity for:
//!
//! * Credit + performance (QoS reference, no savings),
//! * Credit + stable ondemand (savings, SLA erosion),
//! * PAS (savings *and* SLA).
//!
//! The churn calendar is generated once from a seed (deterministic)
//! and replayed identically against all three configurations.

use governors::{Performance, StableOndemand};
use hypervisor::host::{Host, HostConfig, SchedulerKind};
use hypervisor::vm::{VmConfig, VmId};
use hypervisor::work::ConstantDemand;
use pas_core::Credit;
use simkernel::{SimRng, SimTime};

use crate::report::ExperimentReport;
use crate::scenario::Fidelity;

/// One tenant's life.
#[derive(Debug, Clone, Copy)]
struct Tenant {
    arrive_s: f64,
    depart_s: f64,
    credit_pct: f64,
    /// Demand as a fraction of the booked credit (0.5 = half-loaded).
    intensity: f64,
}

/// Generates the deterministic churn calendar.
fn calendar(seed: u64, horizon_s: f64) -> Vec<Tenant> {
    let mut rng = SimRng::seed_from(seed);
    let mut tenants = Vec::new();
    let mut t = 0.0;
    loop {
        t += rng.exponential(1.0 / 120.0); // a new tenant every ~2 min
        if t >= horizon_s {
            // The arrival landed beyond the horizon: nobody to admit.
            break;
        }
        let lifetime = rng.exponential(1.0 / 300.0); // ~5 min stays
        tenants.push(Tenant {
            arrive_s: t,
            depart_s: (t + lifetime).min(horizon_s),
            credit_pct: 5.0 + rng.uniform_f64() * 25.0,
            intensity: 0.3 + rng.uniform_f64() * 0.9, // some overload
        });
    }
    tenants
}

/// Outcome of one configuration.
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Configuration label.
    pub label: String,
    /// Total energy, joules.
    pub energy_j: f64,
    /// Delivered / min(booked, demanded) capacity, aggregated over all
    /// tenants (1.0 = every SLA met).
    pub sla_ratio: f64,
}

fn run_config(
    label: &str,
    scheduler: SchedulerKind,
    governed: Option<bool>,
    tenants: &[Tenant],
    horizon_s: f64,
) -> ChurnRow {
    let mut cfg = HostConfig::optiplex_defaults(scheduler);
    match governed {
        Some(true) => cfg = cfg.with_governor(Box::new(StableOndemand::new())),
        Some(false) => cfg = cfg.with_governor(Box::new(Performance)),
        None => {}
    }
    let mut host: Host = cfg.build();
    let fmax = host.fmax_mcps();

    // Event-sorted replay: arrivals add VMs, departures retire them.
    #[derive(Debug)]
    enum Ev {
        Arrive(usize),
        Depart(usize),
    }
    let mut events: Vec<(f64, Ev)> = Vec::new();
    for (i, t) in tenants.iter().enumerate() {
        events.push((t.arrive_s, Ev::Arrive(i)));
        events.push((t.depart_s, Ev::Depart(i)));
    }
    events.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));

    let mut vm_of_tenant: Vec<Option<VmId>> = vec![None; tenants.len()];
    for (at, ev) in events {
        let at = SimTime::from_secs_f64(at.min(horizon_s));
        host.run_until(at);
        match ev {
            Ev::Arrive(i) => {
                let t = &tenants[i];
                let demand = t.intensity * t.credit_pct / 100.0 * fmax;
                let id = host.add_vm(
                    VmConfig::new(format!("tenant{i}"), Credit::percent(t.credit_pct)),
                    Box::new(ConstantDemand::new(demand)),
                );
                vm_of_tenant[i] = Some(id);
            }
            Ev::Depart(i) => {
                if let Some(id) = vm_of_tenant[i] {
                    host.retire_vm(id);
                }
            }
        }
    }
    host.run_until(SimTime::from_secs_f64(horizon_s));

    // SLA accounting: each tenant should have received
    // min(booked, demanded) × residency of absolute capacity.
    let mut delivered = 0.0;
    let mut entitled = 0.0;
    for (i, t) in tenants.iter().enumerate() {
        let Some(id) = vm_of_tenant[i] else { continue };
        let residency = t.depart_s - t.arrive_s;
        let entitlement =
            (t.credit_pct / 100.0).min(t.intensity * t.credit_pct / 100.0) * residency;
        // vm_absolute_fraction is over the whole horizon.
        delivered += host.stats().vm_absolute_fraction(id) * horizon_s;
        entitled += entitlement;
    }
    ChurnRow {
        label: label.to_owned(),
        energy_j: host.cpu().energy().joules(),
        sla_ratio: if entitled > 0.0 {
            delivered / entitled
        } else {
            1.0
        },
    }
}

/// Runs the churn study serially (see [`run_with`]).
#[must_use]
pub fn run(fidelity: Fidelity) -> ExperimentReport {
    run_with(fidelity, 1)
}

/// Runs the churn study, replaying the calendar against the three
/// configurations on up to `jobs` worker threads. The calendar is
/// generated once and each replay is independent and deterministic,
/// so the report is byte-identical for every `jobs` value.
#[must_use]
pub fn run_with(fidelity: Fidelity, jobs: usize) -> ExperimentReport {
    let horizon_s = match fidelity {
        Fidelity::Full => 7200.0,
        Fidelity::Quick => 900.0,
    };
    let tenants = calendar(2013, horizon_s);
    let configs: Vec<(&str, SchedulerKind, Option<bool>)> = vec![
        ("credit+performance", SchedulerKind::Credit, Some(false)),
        ("credit+ondemand", SchedulerKind::Credit, Some(true)),
        ("pas", SchedulerKind::Pas, None),
    ];
    let rows = cluster::parallel_map(jobs, configs, |_, (label, scheduler, governed)| {
        run_config(label, scheduler, governed, &tenants, horizon_s)
    });

    let mut report = ExperimentReport::new(
        "churn",
        "Extension X5: tenant churn — energy and SLA under a Poisson arrival/departure process",
    );
    let baseline = rows[0].energy_j;
    let mut text = format!(
        "Tenant churn over {horizon_s:.0} s ({} tenants, seed 2013)\n\n  \
         configuration        energy(J)   saving%   delivered/entitled\n",
        tenants.len()
    );
    for row in &rows {
        let saving = 100.0 * (1.0 - row.energy_j / baseline);
        text.push_str(&format!(
            "  {:<20} {:9.0}   {saving:6.1}   {:.3}\n",
            row.label, row.energy_j, row.sla_ratio
        ));
        report.scalar(format!("energy_j/{}", row.label), row.energy_j);
        report.scalar(format!("sla_ratio/{}", row.label), row.sla_ratio);
    }
    text.push_str(
        "\n  Under churn, PAS keeps the DVFS saving while delivering each tenant's\n  \
         entitlement; the plain governor erodes entitlements whenever the host\n  \
         happens to be globally underloaded.\n",
    );
    report.text = text;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_is_deterministic() {
        let a = calendar(9, 1000.0);
        let b = calendar(9, 1000.0);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.arrive_s == y.arrive_s));
        assert!(!a.is_empty());
        for t in &a {
            assert!(t.depart_s >= t.arrive_s);
            assert!((5.0..=30.0).contains(&t.credit_pct));
        }
    }

    #[test]
    fn churn_study_preserves_sla_under_pas() {
        let r = run(Fidelity::Quick);
        let sla_pas = r.get_scalar("sla_ratio/pas").unwrap();
        let sla_perf = r.get_scalar("sla_ratio/credit+performance").unwrap();
        let sla_od = r.get_scalar("sla_ratio/credit+ondemand").unwrap();
        assert!(
            sla_perf > 0.95,
            "performance reference meets SLAs: {sla_perf}"
        );
        assert!(sla_pas > 0.93, "PAS meets SLAs under churn: {sla_pas}");
        assert!(
            sla_od < sla_pas,
            "plain ondemand erodes SLAs: {sla_od} vs {sla_pas}"
        );
    }

    #[test]
    fn parallel_run_is_byte_identical_to_serial() {
        let a = run_with(Fidelity::Quick, 1);
        let b = run_with(Fidelity::Quick, 3);
        assert_eq!(a.text, b.text);
        assert_eq!(a.scalars, b.scalars);
    }

    #[test]
    fn churn_study_saves_energy_under_pas() {
        let r = run(Fidelity::Quick);
        let e_perf = r.get_scalar("energy_j/credit+performance").unwrap();
        let e_pas = r.get_scalar("energy_j/pas").unwrap();
        assert!(
            e_pas < 0.95 * e_perf,
            "PAS saves energy: {e_pas} vs {e_perf}"
        );
    }
}
