//! Figures 2–10: the three-phase scenario under every scheduler ×
//! governor combination the paper evaluates.
//!
//! | figure | scheduler | governor | load | plotted |
//! |--------|-----------|----------|------|---------|
//! | 2  | Credit | performance (max freq) | exact | global loads |
//! | 3  | Credit | stock ondemand | exact (bursty) | global loads |
//! | 4  | Credit | paper's stable governor | exact | global loads |
//! | 5  | Credit | paper's stable governor | exact | absolute loads |
//! | 6  | SEDF   | paper's stable governor | exact | global loads |
//! | 7  | SEDF   | paper's stable governor | exact | absolute loads |
//! | 8  | SEDF   | paper's stable governor | thrashing | global ≡ absolute |
//! | 9  | PAS    | (self-managed) | thrashing | global loads |
//! | 10 | PAS    | (self-managed) | thrashing | absolute loads |

use governors::{Ondemand, StableOndemand};
use hypervisor::host::SchedulerKind;
use metrics::ascii;
use workloads::Intensity;

use crate::report::ExperimentReport;
use crate::scenario::{build, Fidelity, Scenario, ScenarioConfig};

/// Which load view a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum View {
    Global,
    Absolute,
}

fn render(
    id: &str,
    title: &str,
    mut sc: Scenario,
    view: View,
    extra_cap_series: bool,
) -> ExperimentReport {
    sc.run();
    let mut report = ExperimentReport::new(id, title);

    let (v20s, v70s) = match view {
        View::Global => (
            sc.global_load_series(sc.v20, "v20_global_pct"),
            sc.global_load_series(sc.v70, "v70_global_pct"),
        ),
        View::Absolute => (
            sc.absolute_load_series(sc.v20, "v20_absolute_pct"),
            sc.absolute_load_series(sc.v70, "v70_absolute_pct"),
        ),
    };
    let freq = sc.freq_series();

    let (a0, a1) = sc.timeline.phase_a();
    let (b0, b1) = sc.timeline.phase_b();
    let v20_a = v20s.mean_between(a0, a1).unwrap_or(0.0);
    let v20_b = v20s.mean_between(b0, b1).unwrap_or(0.0);
    let v70_b = v70s.mean_between(b0, b1).unwrap_or(0.0);
    let freq_a = freq.mean_between(a0, a1).unwrap_or(0.0);
    let freq_b = freq.mean_between(b0, b1).unwrap_or(0.0);
    // Count transitions at the source: the snapshot series is sampled
    // far too coarsely (tens of seconds) to see governor-rate
    // switching, which is exactly what separates Figure 3 from 4.
    let transitions = sc.host.cpu().transitions();

    report.scalar("v20_phase_a_pct", v20_a);
    report.scalar("v20_phase_b_pct", v20_b);
    report.scalar("v70_phase_b_pct", v70_b);
    report.scalar("freq_phase_a_mhz", freq_a);
    report.scalar("freq_phase_b_mhz", freq_b);
    report.scalar("freq_transitions", transitions as f64);
    report.scalar("energy_j", sc.total_energy_j());

    let mut text = String::new();
    text.push_str(&format!("{title}\n"));
    text.push_str(&format!(
        "  scheduler={} view={:?}\n",
        sc.host.scheduler_name(),
        view
    ));
    text.push_str(&format!(
        "  phase A (V20 active, V70 lazy): V20 = {v20_a:5.1}%  freq = {freq_a:6.0} MHz\n"
    ));
    text.push_str(&format!(
        "  phase B (both active):          V20 = {v20_b:5.1}%  V70 = {v70_b:5.1}%  freq = {freq_b:6.0} MHz\n"
    ));
    text.push_str(&format!(
        "  frequency transitions over the run: {transitions}\n\n"
    ));
    text.push_str(&ascii::chart_many(&[&v20s, &v70s], 72, 14));

    if extra_cap_series {
        let cap = sc.cap_series(sc.v20, "v20_cap_pct");
        if let Some(c) = cap.mean_between(a0, a1) {
            report.scalar("v20_cap_phase_a_pct", c);
            text.push_str(&format!(
                "\n  PAS grants V20 a cap of {c:.1}% in phase A (paper: ~33% at 1600 MHz)\n"
            ));
        }
        report.series.push(cap);
    }

    report.series.push(v20s);
    report.series.push(v70s);
    report.series.push(freq);
    report.text = text;
    report
}

/// Figure 2 — load profile at the maximum frequency (no DVFS).
#[must_use]
pub fn fig2(fidelity: Fidelity) -> ExperimentReport {
    let sc = build(
        ScenarioConfig::new(SchedulerKind::Credit, Intensity::Exact, fidelity)
            .with_governor(Box::new(governors::Performance)),
    );
    render(
        "fig2",
        "Figure 2: Load profile (at the maximum frequency)",
        sc,
        View::Global,
        false,
    )
}

/// Figure 3 — stock ondemand + Credit, exact (bursty) load:
/// "aggressive and unstable".
#[must_use]
pub fn fig3(fidelity: Fidelity) -> ExperimentReport {
    let sc = build(
        ScenarioConfig::new(SchedulerKind::Credit, Intensity::Exact, fidelity)
            .with_governor(Box::new(Ondemand::default()))
            .with_bursty_arrivals(42),
    );
    let mut r = render(
        "fig3",
        "Figure 3: Global loads with Ondemand governor / Credit scheduler / exact load",
        sc,
        View::Global,
        false,
    );
    r.notes.push(
        "Oscillation arises from bursty Poisson arrivals sampled over short windows, \
         reproducing the instability the paper attributes to the stock governor."
            .to_owned(),
    );
    r
}

/// Figure 4 — the paper's stabilised governor + Credit, exact load.
#[must_use]
pub fn fig4(fidelity: Fidelity) -> ExperimentReport {
    let sc = build(
        ScenarioConfig::new(SchedulerKind::Credit, Intensity::Exact, fidelity)
            .with_governor(Box::new(StableOndemand::new()))
            .with_bursty_arrivals(42),
    );
    render(
        "fig4",
        "Figure 4: Global loads with our governor / Credit scheduler / exact load",
        sc,
        View::Global,
        false,
    )
}

/// Figure 5 — same configuration as Figure 4, absolute-load view:
/// V20 only gets half its booked capacity while V70 is lazy.
#[must_use]
pub fn fig5(fidelity: Fidelity) -> ExperimentReport {
    let sc = build(
        ScenarioConfig::new(SchedulerKind::Credit, Intensity::Exact, fidelity)
            .with_governor(Box::new(StableOndemand::new())),
    );
    render(
        "fig5",
        "Figure 5: Absolute loads with our governor / Credit scheduler / exact load",
        sc,
        View::Absolute,
        false,
    )
}

/// Figure 6 — SEDF global loads, exact load: unused slices lift V20
/// to ~35% at the low frequency.
#[must_use]
pub fn fig6(fidelity: Fidelity) -> ExperimentReport {
    let sc = build(
        ScenarioConfig::new(
            SchedulerKind::Sedf { extra: true },
            Intensity::Exact,
            fidelity,
        )
        .with_governor(Box::new(StableOndemand::new())),
    );
    render(
        "fig6",
        "Figure 6: Global loads with our governor / SEDF scheduler / exact load",
        sc,
        View::Global,
        false,
    )
}

/// Figure 7 — SEDF absolute loads, exact load: V20 holds 20%
/// throughout.
#[must_use]
pub fn fig7(fidelity: Fidelity) -> ExperimentReport {
    let sc = build(
        ScenarioConfig::new(
            SchedulerKind::Sedf { extra: true },
            Intensity::Exact,
            fidelity,
        )
        .with_governor(Box::new(StableOndemand::new())),
    );
    render(
        "fig7",
        "Figure 7: Absolute loads with our governor / SEDF scheduler / exact load",
        sc,
        View::Absolute,
        false,
    )
}

/// Figure 8 — SEDF under thrashing: V20 consumes far beyond its
/// credit and pins the frequency at maximum.
#[must_use]
pub fn fig8(fidelity: Fidelity) -> ExperimentReport {
    let sc = build(
        ScenarioConfig::new(
            SchedulerKind::Sedf { extra: true },
            Intensity::Thrashing,
            fidelity,
        )
        .with_governor(Box::new(StableOndemand::new())),
    );
    let mut r = render(
        "fig8",
        "Figure 8: Global/absolute loads with our governor / SEDF scheduler / thrashing load",
        sc,
        View::Global,
        false,
    );
    r.notes.push(
        "The paper reports V20 at ~85% in phase A (Dom0 proxies the full httperf stream); \
         our Dom0 management load is lighter, so V20 reaches the mid-90s. The structural \
         claim — V20 far above its 20% credit, frequency pinned at maximum — is unchanged."
            .to_owned(),
    );
    r
}

/// Figure 9 — PAS under thrashing, global view: V20 granted ~33% at
/// 1600 MHz.
#[must_use]
pub fn fig9(fidelity: Fidelity) -> ExperimentReport {
    let sc = build(ScenarioConfig::new(
        SchedulerKind::Pas,
        Intensity::Thrashing,
        fidelity,
    ));
    render(
        "fig9",
        "Figure 9: Global loads with the PAS scheduler / thrashing load",
        sc,
        View::Global,
        true,
    )
}

/// Figure 10 — PAS under thrashing, absolute view: every VM's
/// absolute load matches its booked credit.
#[must_use]
pub fn fig10(fidelity: Fidelity) -> ExperimentReport {
    let sc = build(ScenarioConfig::new(
        SchedulerKind::Pas,
        Intensity::Thrashing,
        fidelity,
    ));
    render(
        "fig10",
        "Figure 10: Absolute loads with the PAS scheduler / thrashing load",
        sc,
        View::Absolute,
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use metrics::summary::within_pct;

    #[test]
    fn fig2_loads_at_max_frequency() {
        let r = fig2(Fidelity::Quick);
        assert!(within_pct(
            r.get_scalar("v20_phase_a_pct").unwrap(),
            20.0,
            12.0
        ));
        assert!(within_pct(
            r.get_scalar("v70_phase_b_pct").unwrap(),
            70.0,
            12.0
        ));
        assert!(
            r.get_scalar("freq_phase_a_mhz").unwrap() > 2600.0,
            "performance governor"
        );
    }

    #[test]
    fn fig3_unstable_vs_fig4_stable() {
        let r3 = fig3(Fidelity::Quick);
        let r4 = fig4(Fidelity::Quick);
        let t3 = r3.get_scalar("freq_transitions").unwrap();
        let t4 = r4.get_scalar("freq_transitions").unwrap();
        assert!(
            t3 >= 2.0 * t4.max(1.0),
            "ondemand ({t3}) should switch much more than stable ({t4})"
        );
    }

    #[test]
    fn fig5_v20_absolute_halved_in_phase_a() {
        let r = fig5(Fidelity::Quick);
        let a = r.get_scalar("v20_phase_a_pct").unwrap();
        let b = r.get_scalar("v20_phase_b_pct").unwrap();
        // Paper: absolute ~10-12% at 1600 MHz, 20% once V70 wakes up.
        assert!(a < 14.0, "phase A absolute {a} (paper ~10-12%)");
        assert!(within_pct(b, 20.0, 12.0), "phase B absolute {b}");
        assert!(r.get_scalar("freq_phase_a_mhz").unwrap() < 1700.0);
    }

    #[test]
    fn fig6_sedf_lifts_v20_global() {
        let r = fig6(Fidelity::Quick);
        let a = r.get_scalar("v20_phase_a_pct").unwrap();
        // Paper: ~35% at the low frequency.
        assert!((30.0..45.0).contains(&a), "phase A global {a} (paper ~35%)");
    }

    #[test]
    fn fig7_sedf_preserves_absolute() {
        let r = fig7(Fidelity::Quick);
        let a = r.get_scalar("v20_phase_a_pct").unwrap();
        let b = r.get_scalar("v20_phase_b_pct").unwrap();
        assert!(within_pct(a, 20.0, 15.0), "phase A absolute {a}");
        assert!(within_pct(b, 20.0, 15.0), "phase B absolute {b}");
    }

    #[test]
    fn fig8_sedf_thrashing_pins_max_freq() {
        let r = fig8(Fidelity::Quick);
        assert!(
            r.get_scalar("freq_phase_a_mhz").unwrap() > 2600.0,
            "frequency pinned"
        );
        assert!(
            r.get_scalar("v20_phase_a_pct").unwrap() > 60.0,
            "V20 far beyond its 20% credit"
        );
    }

    #[test]
    fn fig9_pas_grants_compensated_credit() {
        let r = fig9(Fidelity::Quick);
        let freq_a = r.get_scalar("freq_phase_a_mhz").unwrap();
        assert!(
            freq_a < 1700.0,
            "PAS keeps the frequency low in phase A: {freq_a}"
        );
        let cap = r.get_scalar("v20_cap_phase_a_pct").unwrap();
        assert!(
            (cap - 33.0).abs() < 3.0,
            "granted credit {cap} (paper: 33%)"
        );
        let v20_a = r.get_scalar("v20_phase_a_pct").unwrap();
        assert!(
            (30.0..38.0).contains(&v20_a),
            "V20 global {v20_a} (paper: ~33%)"
        );
    }

    #[test]
    fn fig10_pas_absolute_matches_booking() {
        let r = fig10(Fidelity::Quick);
        let a = r.get_scalar("v20_phase_a_pct").unwrap();
        let b = r.get_scalar("v20_phase_b_pct").unwrap();
        assert!(within_pct(a, 20.0, 15.0), "phase A absolute {a}");
        assert!(within_pct(b, 20.0, 15.0), "phase B absolute {b}");
        let v70_b = r.get_scalar("v70_phase_b_pct").unwrap();
        assert!(
            within_pct(v70_b, 70.0, 15.0),
            "V70 phase B absolute {v70_b}"
        );
    }
}
