//! Extension X4 — Section 2.3: consolidation and DVFS are
//! complementary because **memory bounds consolidation**.
//!
//! The paper argues: a perfect consolidator would pack VMs until every
//! active host is CPU-full and DVFS would be useless — but VMs need
//! physical memory even when CPU-idle, so active hosts end up
//! memory-full yet CPU-underloaded, and DVFS (and PAS) still pay off.
//!
//! The study: a fleet of VMs with a fixed memory footprint and low CPU
//! demand is first-fit packed onto hosts by **memory**. Each active
//! host is then simulated under (a) the performance governor and
//! (b) PAS, and we report fleet-wide energy:
//!
//! * unconsolidated (one VM per host) vs consolidated: big saving —
//!   consolidation works;
//! * consolidated + performance vs consolidated + PAS: a further
//!   saving — DVFS still matters, exactly the paper's point.

use cluster::placement::{HostCapacity, PlacementPolicy, VmSpec};
use hypervisor::host::{HostConfig, SchedulerKind};
use hypervisor::vm::VmConfig;
use hypervisor::work::ConstantDemand;
use pas_core::Credit;
use simkernel::SimDuration;

use crate::report::ExperimentReport;
use crate::scenario::Fidelity;

/// A VM of the fleet; re-exported from the cluster crate's placement
/// controller (memory footprint, CPU demand, booked credit).
pub type FleetVm = VmSpec;

/// The default fleet: 12 VMs, each 4 GiB / ~5% CPU — the
/// "underutilized most of the time (below 30%)" population the paper
/// cites.
#[must_use]
pub fn default_fleet() -> Vec<FleetVm> {
    (0..12)
        .map(|i| VmSpec::new(format!("vm{i}"), 4.0, 0.04 + 0.005 * f64::from(i % 4)))
        .collect()
}

/// First-fit decreasing pack by memory; returns per-host VM index
/// lists.
///
/// This is the cluster crate's global placement controller
/// ([`PlacementPolicy::FirstFit`]) with the CPU dimension left
/// unconstrained — the historical single-dimension packing this
/// experiment was first written with, kept for the memory-bound
/// argument the paper makes.
#[must_use]
pub fn pack_by_memory(fleet: &[FleetVm], host_mem_gib: f64) -> Vec<Vec<usize>> {
    let capacity = HostCapacity {
        mem_gib: host_mem_gib,
        cpu_frac: f64::INFINITY,
    };
    PlacementPolicy::FirstFit.place(fleet, capacity).hosts
}

/// Simulates one packed host for `secs` and returns its energy (J).
fn host_energy(fleet: &[FleetVm], vm_idxs: &[usize], pas: bool, secs: u64) -> f64 {
    let scheduler = if pas {
        SchedulerKind::Pas
    } else {
        SchedulerKind::Credit
    };
    let mut cfg = HostConfig::optiplex_defaults(scheduler);
    if !pas {
        cfg = cfg.with_governor(Box::new(governors::Performance));
    }
    let mut host = cfg.build();
    let fmax = host.fmax_mcps();
    for &i in vm_idxs {
        let credit = Credit::percent((fleet[i].cpu_frac * 100.0).clamp(1.0, 95.0));
        host.add_vm(
            VmConfig::new(format!("vm{i}"), credit),
            Box::new(ConstantDemand::new(fleet[i].cpu_frac * fmax)),
        );
    }
    host.run_for(SimDuration::from_secs(secs));
    host.cpu().energy().joules()
}

/// Runs the consolidation study serially (see [`run_with`]).
#[must_use]
pub fn run(fidelity: Fidelity) -> ExperimentReport {
    run_with(fidelity, 1)
}

/// Runs the consolidation study, simulating independent hosts on up
/// to `jobs` worker threads. Every per-host simulation is
/// deterministic and the sums walk hosts in index order, so the
/// report is byte-identical for every `jobs` value.
#[must_use]
pub fn run_with(fidelity: Fidelity, jobs: usize) -> ExperimentReport {
    let secs = match fidelity {
        Fidelity::Full => 600,
        Fidelity::Quick => 60,
    };
    let fleet = default_fleet();
    let host_mem_gib = 16.0;

    // Unconsolidated: one VM per host, performance governor.
    let unconsolidated: f64 = cluster::parallel_map(jobs, (0..fleet.len()).collect(), |_, i| {
        host_energy(&fleet, &[i], false, secs)
    })
    .into_iter()
    .sum();

    // Memory-bound packing, then both governors' host simulations —
    // one work item per (host, scheduler) pair.
    let packing = pack_by_memory(&fleet, host_mem_gib);
    let mut items: Vec<(usize, bool)> = Vec::new();
    for h in 0..packing.len() {
        items.push((h, false));
        items.push((h, true));
    }
    let energies = cluster::parallel_map(jobs, items, |_, (h, pas)| {
        (pas, host_energy(&fleet, &packing[h], pas, secs))
    });
    let consolidated_perf: f64 = energies.iter().filter(|(p, _)| !p).map(|(_, e)| e).sum();
    let consolidated_pas: f64 = energies.iter().filter(|(p, _)| *p).map(|(_, e)| e).sum();

    // How CPU-underloaded did memory-bound packing leave the hosts?
    let cpu_per_host: Vec<f64> = packing
        .iter()
        .map(|vms| vms.iter().map(|&i| fleet[i].cpu_frac).sum::<f64>() * 100.0)
        .collect();

    let mut report = ExperimentReport::new(
        "consolidation",
        "Extension X4: consolidation is memory-bound, so DVFS/PAS still pays (Section 2.3)",
    );
    report.scalar("hosts_unconsolidated", fleet.len() as f64);
    report.scalar("hosts_consolidated", packing.len() as f64);
    report.scalar("energy_j/unconsolidated", unconsolidated);
    report.scalar("energy_j/consolidated+performance", consolidated_perf);
    report.scalar("energy_j/consolidated+pas", consolidated_pas);
    let extra_saving = 100.0 * (1.0 - consolidated_pas / consolidated_perf);
    report.scalar("pas_extra_saving_pct", extra_saving);

    let mut text = format!(
        "Consolidation study: {} VMs (4 GiB, ~5% CPU each), hosts with {host_mem_gib} GiB\n\n",
        fleet.len()
    );
    text.push_str(&format!(
        "  unconsolidated:            {:2} hosts, {unconsolidated:9.0} J\n",
        fleet.len()
    ));
    text.push_str(&format!(
        "  consolidated+performance:  {:2} hosts, {consolidated_perf:9.0} J\n",
        packing.len()
    ));
    text.push_str(&format!(
        "  consolidated+PAS:          {:2} hosts, {consolidated_pas:9.0} J  ({extra_saving:.1}% further saving)\n",
        packing.len()
    ));
    text.push_str(&format!(
        "\n  CPU load per consolidated host: {:?}%\n  \
         Memory filled the hosts long before CPU did — the residual headroom is\n  \
         what DVFS/PAS harvests, which is the paper's Section 2.3 argument.\n",
        cpu_per_host.iter().map(|c| c.round()).collect::<Vec<_>>()
    ));
    report.text = text;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_respects_memory() {
        let fleet = default_fleet();
        let packing = pack_by_memory(&fleet, 16.0);
        for host in &packing {
            let mem: f64 = host.iter().map(|&i| fleet[i].mem_gib).sum();
            assert!(mem <= 16.0 + 1e-9);
        }
        let placed: usize = packing.iter().map(Vec::len).sum();
        assert_eq!(placed, fleet.len(), "every VM placed");
        // 12 VMs × 4 GiB into 16 GiB hosts = 3 hosts.
        assert_eq!(packing.len(), 3);
    }

    #[test]
    fn consolidation_saves_then_pas_saves_more() {
        let r = run(Fidelity::Quick);
        let un = r.get_scalar("energy_j/unconsolidated").unwrap();
        let cons = r.get_scalar("energy_j/consolidated+performance").unwrap();
        let pas = r.get_scalar("energy_j/consolidated+pas").unwrap();
        assert!(
            cons < 0.5 * un,
            "consolidation alone saves >50%: {cons} vs {un}"
        );
        assert!(pas < cons, "PAS saves further on the memory-bound hosts");
        let extra = r.get_scalar("pas_extra_saving_pct").unwrap();
        assert!(
            extra > 3.0,
            "the residual DVFS saving is material: {extra}%"
        );
    }

    #[test]
    fn parallel_run_is_byte_identical_to_serial() {
        let a = run_with(Fidelity::Quick, 1);
        let b = run_with(Fidelity::Quick, 4);
        assert_eq!(a.text, b.text);
        assert_eq!(a.scalars, b.scalars);
    }

    #[test]
    fn consolidated_hosts_remain_cpu_underloaded() {
        let fleet = default_fleet();
        let packing = pack_by_memory(&fleet, 16.0);
        for host in &packing {
            let cpu: f64 = host.iter().map(|&i| fleet[i].cpu_frac).sum();
            assert!(cpu < 0.5, "memory-bound packing leaves CPU headroom: {cpu}");
        }
    }
}
