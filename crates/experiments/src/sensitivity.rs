//! Extension X7 — sensitivity of PAS to its two design knobs.
//!
//! The paper fixes two constants without ablation: the load-smoothing
//! window (footnote 5: "an average of three successive processor
//! utilization") and the planner's headroom (Listing 1.1 picks the
//! first state whose capacity merely *exceeds* the absolute load).
//! This study sweeps both on the three-phase thrashing scenario and
//! reports, per configuration:
//!
//! * **SLA error** — V20's phase-A absolute load minus its booked 20%
//!   (the paper's headline quantity; 0 is perfect),
//! * **energy** — joules over the run,
//! * **transitions** — P-state changes (hardware wear / latency
//!   proxy).
//!
//! Expected shape: short windows track the (noiseless, fluid) load
//! cleanly; *long* windows conflict with the saturation rescue — after
//! V70 wakes, the lagging average keeps voting for a low frequency
//! while the pegged processor forces one-step climbs, and the two
//! policies flap against each other until the window fills. Headroom
//! buys stability at a small energy premium. The paper's (3, 0%) sits
//! near the low-churn knee.

use hypervisor::host::SchedulerKind;
use workloads::Intensity;

use crate::report::ExperimentReport;
use crate::scenario::{build, Fidelity, ScenarioConfig};

/// Outcome of one (window, headroom) configuration.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// Smoothing window, samples.
    pub window: usize,
    /// Planner headroom, percent.
    pub headroom_pct: f64,
    /// V20's phase-A mean absolute load minus its 20% booking.
    pub sla_error_pp: f64,
    /// Total energy, joules.
    pub energy_j: f64,
    /// P-state transitions over the run.
    pub transitions: u64,
}

fn run_config(window: usize, headroom_pct: f64, fidelity: Fidelity) -> SensitivityRow {
    let mut sc = build(
        ScenarioConfig::new(SchedulerKind::Pas, Intensity::Thrashing, fidelity)
            .with_pas_tuning(Some(window), Some(headroom_pct)),
    );
    sc.run();
    let (a0, a1) = sc.timeline.phase_a();
    let v20_abs = sc
        .absolute_load_series(sc.v20, "v20_abs")
        .mean_between(a0, a1)
        .unwrap_or(0.0);
    SensitivityRow {
        window,
        headroom_pct,
        sla_error_pp: v20_abs - 20.0,
        energy_j: sc.total_energy_j(),
        transitions: sc.host.cpu().transitions(),
    }
}

/// The sweep grid: windows × headrooms (the paper's point is window 3,
/// headroom 0).
const WINDOWS: [usize; 4] = [1, 3, 10, 30];
const HEADROOMS: [f64; 3] = [0.0, 5.0, 15.0];

/// Runs the sensitivity sweep.
#[must_use]
pub fn run(fidelity: Fidelity) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "sensitivity",
        "Extension X7: PAS sensitivity to smoothing window and planner headroom",
    );
    let mut text = String::from(
        "PAS design-knob sweep (three-phase thrashing scenario)\n\n  \
         window   headroom%   SLA error (pp, phase A)   energy(J)   transitions\n",
    );
    for &window in &WINDOWS {
        for &headroom in &HEADROOMS {
            let row = run_config(window, headroom, fidelity);
            text.push_str(&format!(
                "  {:>6}   {:>8.1}   {:>+23.2}   {:>9.0}   {:>11}\n",
                row.window, row.headroom_pct, row.sla_error_pp, row.energy_j, row.transitions
            ));
            let key = format!("w{}_h{}", row.window, row.headroom_pct as i64);
            report.scalar(format!("sla_error/{key}"), row.sla_error_pp);
            report.scalar(format!("energy_j/{key}"), row.energy_j);
            report.scalar(format!("transitions/{key}"), row.transitions as f64);
        }
    }
    text.push_str(
        "\n  The paper's configuration (window 3, headroom 0) sits at the\n  \
         low-churn knee; oversmoothed windows flap against the saturation\n  \
         rescue, and energy rises with headroom.\n",
    );
    report.text = text;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentReport {
        run(Fidelity::Quick)
    }

    #[test]
    fn paper_config_holds_the_sla() {
        let r = quick();
        let err = r.get_scalar("sla_error/w3_h0").unwrap();
        assert!(err.abs() < 2.0, "paper config SLA error {err}pp");
    }

    #[test]
    fn every_config_keeps_sla_error_bounded() {
        // PAS's compensation works at every knob setting; the knobs
        // trade churn and energy, not steady-state correctness.
        let r = quick();
        for &w in &WINDOWS {
            for &h in &HEADROOMS {
                let err = r
                    .get_scalar(&format!("sla_error/w{w}_h{}", h as i64))
                    .unwrap();
                assert!(err > -5.0, "w{w} h{h}: SLA error {err}pp too negative");
                assert!(err < 5.0, "w{w} h{h}: SLA error {err}pp too positive");
            }
        }
    }

    #[test]
    fn headroom_costs_energy() {
        let r = quick();
        let lean = r.get_scalar("energy_j/w3_h0").unwrap();
        let padded = r.get_scalar("energy_j/w3_h15").unwrap();
        assert!(
            padded >= lean * 0.999,
            "headroom must not save energy: {padded} vs {lean}"
        );
    }

    #[test]
    fn oversmoothing_fights_the_saturation_rescue() {
        // A 30-sample window lags the thrashing load so badly that the
        // planner keeps voting "down" while the pegged CPU forces
        // "up" — visible as P-state churn the paper-sized window
        // avoids.
        let r = quick();
        let paper = r.get_scalar("transitions/w3_h0").unwrap();
        let oversmoothed = r.get_scalar("transitions/w30_h0").unwrap();
        assert!(
            oversmoothed > paper,
            "expected rescue/planner flapping at w30: {oversmoothed} vs w3 {paper}"
        );
    }
}
