//! The reproduction harness: one module per paper artefact.
//!
//! | module | paper artefact |
//! |--------|----------------|
//! | [`validation`] | §5.2 proportionality checks (Eqs. 1–3) |
//! | [`fig1`] | Figure 1 — credit compensation of a frequency drop |
//! | [`figures`] | Figures 2–10 — the three-phase V20/V70 scenario under Credit / SEDF / PAS |
//! | [`table1`] | Table 1 — `cf_min` on five processors |
//! | [`table2`] | Table 2 — execution times on seven platform configs |
//! | [`energy`] | extension X1 — the energy ablation the paper motivates |
//! | [`placement`] | extension X2 — §4.1's three controller placements |
//! | [`multicore`] | extension X3 — §7's multi-core / per-core DVFS perspective |
//! | [`consolidation`] | extension X4 — §2.3's consolidation-is-memory-bound argument |
//! | [`churn`] | extension X5 — tenant arrival/departure churn |
//! | [`smt`] | extension X6 — §7's hyper-threading perspective |
//! | [`sensitivity`] | extension X7 — PAS design-knob sensitivity sweep |
//! | [`overbooking`] | extension X8 — the enforceable floor of a booking set |
//! | [`cluster_energy`] | extension X9 — §2.3 at fleet scale, under the `cluster` placement controller |
//! | [`migration`] | extension X10 — load-triggered live migration across the fleet |
//!
//! Every experiment returns an [`report::ExperimentReport`] with
//! paper-style text, machine-readable series and a JSON summary; the
//! `repro` binary (this crate's `src/bin/repro.rs`) runs them by name.
//! All experiments accept a [`Fidelity`] so the test-suite and benches
//! can run scaled-down versions of the full paper-scale runs, and
//! the fleet-scale ones additionally take a `jobs` worker-thread
//! count ([`run_experiment_jobs`]) — output is byte-identical for
//! every `jobs` value.

#![deny(missing_docs)]

pub mod churn;
pub mod cluster_energy;
pub mod consolidation;
pub mod energy;
pub mod fig1;
pub mod figures;
pub mod migration;
pub mod multicore;
pub mod overbooking;
pub mod placement;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod sensitivity;
pub mod smt;
pub mod table1;
pub mod table2;
pub mod validation;

pub use report::ExperimentReport;
pub use runner::{
    all_experiment_names, experiment_description, run_experiment, run_experiment_jobs,
};
pub use scenario::Fidelity;
