//! Figure 1 — "Compensation of Frequency Reduction with Credit
//! Allocation" (Section 5.2).
//!
//! The paper runs pi-app at the maximum frequency (2667 MHz) with
//! initial credits 10, 20, …, 100, then repeats at 2133 MHz with the
//! Equation 4 compensated credits (13, 25, 38, 50, 63, 75, 88, 100,
//! 113, 125) and shows the execution-time curves coincide.
//!
//! Note the paper plots compensated credits of 113% and 125%: on a
//! single core a cap above 100% of wall time cannot actually be
//! granted, so the top two points diverge by construction; the paper's
//! curve shows the same flattening. We report both and flag the
//! clamped region.

use cpumodel::PStateIdx;
use governors::Userspace;
use hypervisor::host::{HostConfig, SchedulerKind};
use hypervisor::vm::VmConfig;
use metrics::TimeSeries;
use pas_core::{equations, Credit};
use simkernel::SimTime;
use workloads::PiApp;

use crate::report::ExperimentReport;
use crate::scenario::Fidelity;

/// Executes pi-app in a VM with credit `credit` at P-state `pstate`;
/// returns the execution time in seconds.
fn run_one(credit: Credit, pstate: Option<PStateIdx>, job_secs: f64) -> f64 {
    let mut cfg = HostConfig::optiplex_defaults(SchedulerKind::Credit);
    if let Some(p) = pstate {
        cfg = cfg.with_governor(Box::new(Userspace::new(p)));
    }
    let mut host = cfg.build();
    let fmax = host.fmax_mcps();
    let vm = host.add_vm(
        VmConfig::new("pi", credit),
        Box::new(PiApp::sized_for_seconds(job_secs, fmax)),
    );
    let limit = SimTime::from_secs_f64(job_secs * 60.0);
    let done = host
        .run_until_vm_finished(vm, limit)
        .expect("pi-app finishes within the limit");
    done.as_secs_f64()
}

/// Runs the Figure 1 sweep.
#[must_use]
pub fn run(fidelity: Fidelity) -> ExperimentReport {
    // Job sized so the paper's y-axis scale appears at full fidelity
    // (~110 s at 100% credit → ~1100 s at 10%).
    let job_secs = match fidelity {
        Fidelity::Full => 110.0,
        Fidelity::Quick => 11.0,
    };
    let table = cpumodel::machines::optiplex_755().pstate_table();
    let new_pstate = PStateIdx(2); // 2133 MHz
    let ratio = table.ratio(new_pstate);
    let cf = table.cf(new_pstate);

    let mut base = TimeSeries::new("t_exec_at_2667_s");
    let mut comp = TimeSeries::new("t_exec_at_2133_compensated_s");
    let mut rows = String::new();
    rows.push_str("  init%  new%   T@2667(s)  T@2133comp(s)  gap%\n");

    let mut report = ExperimentReport::new(
        "fig1",
        "Figure 1: Compensation of Frequency Reduction with Credit Allocation",
    );
    let mut max_gap_unclamped: f64 = 0.0;
    for step in 1..=10 {
        let init_pct = 10.0 * f64::from(step);
        let init = Credit::percent(init_pct);
        let compensated = equations::compensated_credit(init, ratio, cf);
        let t_base = run_one(init, None, job_secs);
        let t_comp = run_one(compensated.clamped_to(100.0), Some(new_pstate), job_secs);
        base.push(init_pct, t_base);
        comp.push(init_pct, t_comp);
        let gap = 100.0 * (t_comp - t_base) / t_base;
        let clamped = compensated.as_percent() > 100.0;
        if !clamped {
            max_gap_unclamped = max_gap_unclamped.max(gap.abs());
        }
        rows.push_str(&format!(
            "  {init_pct:5.0}  {:5.0}  {t_base:9.1}  {t_comp:12.1}  {gap:5.1}{}\n",
            compensated.as_percent().round(),
            if clamped {
                "  (cap clamped at 100%)"
            } else {
                ""
            },
        ));
    }

    report.scalar("max_gap_unclamped_pct", max_gap_unclamped);
    report.text = format!(
        "Figure 1: pi-app execution times, initial credits at 2667 MHz vs \
         Equation-4 compensated credits at 2133 MHz\n{rows}\n  \
         max |gap| over the unclamped range: {max_gap_unclamped:.2}%\n"
    );
    report.notes.push(
        "Compensated credits above 100% cannot be granted on one core; the paper's \
         113%/125% points flatten identically."
            .to_owned(),
    );
    report.series.push(base);
    report.series.push(comp);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compensation_restores_execution_time() {
        let r = run(Fidelity::Quick);
        let gap = r.get_scalar("max_gap_unclamped_pct").unwrap();
        assert!(
            gap < 5.0,
            "compensated runs within 5% of fmax runs (gap {gap}%)"
        );
    }

    #[test]
    fn execution_time_scales_inversely_with_credit() {
        let r = run(Fidelity::Quick);
        let base = &r.series[0];
        let t10 = base.value_at(10.0).unwrap();
        let t100 = base.value_at(100.0).unwrap();
        let ratio = t10 / t100;
        assert!(
            (ratio - 10.0).abs() < 1.5,
            "T(10%) / T(100%) = {ratio} (expected ~10)"
        );
    }
}
