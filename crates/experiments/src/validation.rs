//! Section 5.2 — verification of the proportionality assumptions.
//!
//! Three sweeps, exactly as the paper describes:
//!
//! * **freq-load** (Eq. 1): run web-app workloads at every frequency,
//!   measure the loads, and check that
//!   `cf = L_max / (L_i · ratio_i)` is constant across workloads;
//! * **freq-time** (Eq. 2): run pi-app at every frequency and compare
//!   execution-time ratios with frequency ratios;
//! * **credit-time** (Eq. 3): run pi-app under credits 10–100% and
//!   compare execution-time ratios with credit ratios.

use cpumodel::PStateIdx;
use governors::Userspace;
use hypervisor::host::{HostConfig, SchedulerKind};
use hypervisor::vm::VmConfig;
use pas_core::{CfCalibrator, Credit};
use simkernel::{SimDuration, SimTime};
use workloads::{ArrivalModel, Intensity, PiApp, Profile, WebApp};

use crate::report::ExperimentReport;
use crate::scenario::Fidelity;

fn measure_load_at(pstate: PStateIdx, demand_fraction: f64, run: SimDuration) -> f64 {
    let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit)
        .with_governor(Box::new(Userspace::new(pstate)))
        .build();
    let fmax = host.fmax_mcps();
    let profile = Profile::active_for(run * 2, Intensity::Fraction(1.0));
    host.add_vm(
        // Uncapped VM: we want the raw load the demand imposes.
        VmConfig::new("probe", Credit::ZERO),
        Box::new(WebApp::new(
            profile,
            demand_fraction * fmax,
            fmax,
            ArrivalModel::Fluid,
        )),
    );
    host.run_for(run);
    100.0 * host.stats().global_busy_fraction()
}

fn measure_time_at(pstate: PStateIdx, credit: Credit, job_secs: f64) -> f64 {
    let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit)
        .with_governor(Box::new(Userspace::new(pstate)))
        .build();
    let fmax = host.fmax_mcps();
    let vm = host.add_vm(
        VmConfig::new("pi", credit),
        Box::new(PiApp::sized_for_seconds(job_secs, fmax)),
    );
    host.run_until_vm_finished(vm, SimTime::from_secs_f64(job_secs * 100.0))
        .expect("pi-app finishes")
        .as_secs_f64()
}

/// Eq. 1 validation: `cf` constant across workloads at each frequency.
#[must_use]
pub fn freq_load(fidelity: Fidelity) -> ExperimentReport {
    let run = match fidelity {
        Fidelity::Full => SimDuration::from_secs(300),
        Fidelity::Quick => SimDuration::from_secs(30),
    };
    let table = cpumodel::machines::optiplex_755().pstate_table();
    let max_idx = table.max_idx();
    let mut cal = CfCalibrator::new();
    let workload_fractions = [0.10, 0.20, 0.30, 0.40, 0.50];

    let mut text = String::from(
        "Section 5.2 / Equation 1: cf from load measurements, per frequency\n\
         (cf must be constant across workloads)\n\n  state   freq   mean cf   stddev   n\n",
    );
    for idx in table.indices() {
        if idx == max_idx {
            continue;
        }
        for &w in &workload_fractions {
            let l_max = measure_load_at(max_idx, w, run);
            let l_i = measure_load_at(idx, w, run);
            cal.record_loads(idx, table.ratio(idx), l_max, l_i);
        }
    }

    let mut report = ExperimentReport::new(
        "validation-freq-load",
        "Validation of Equation 1 (freq/load)",
    );
    let mut worst_spread: f64 = 0.0;
    for (idx, est) in cal.estimates() {
        text.push_str(&format!(
            "  {idx}   {}   {:7.4}   {:6.4}   {}\n",
            table.state(idx).frequency,
            est.mean,
            est.stddev,
            est.samples
        ));
        worst_spread = worst_spread.max(est.stddev / est.mean);
        report.scalar(
            format!("cf_{}", table.state(idx).frequency.as_mhz()),
            est.mean,
        );
    }
    report.scalar("worst_relative_spread", worst_spread);
    text.push_str(&format!(
        "\n  worst relative spread: {:.3}%\n",
        worst_spread * 100.0
    ));
    report.text = text;
    report
}

/// Eq. 2 validation: execution-time ratios track frequency ratios.
#[must_use]
pub fn freq_time(fidelity: Fidelity) -> ExperimentReport {
    let job_secs = match fidelity {
        Fidelity::Full => 100.0,
        Fidelity::Quick => 10.0,
    };
    let table = cpumodel::machines::optiplex_755().pstate_table();
    let t_max = measure_time_at(table.max_idx(), Credit::percent(100.0), job_secs);
    let mut cal = CfCalibrator::new();
    let mut text = String::from(
        "Section 5.2 / Equation 2: execution time vs frequency (pi-app, 100% credit)\n\n  \
         freq      T(s)    T_max/T   ratio·cf\n",
    );
    let mut report = ExperimentReport::new(
        "validation-freq-time",
        "Validation of Equation 2 (freq/time)",
    );
    let mut worst_err: f64 = 0.0;
    for idx in table.indices() {
        let t_i = measure_time_at(idx, Credit::percent(100.0), job_secs);
        if idx != table.max_idx() {
            cal.record_times(idx, table.ratio(idx), t_max, t_i);
        }
        let lhs = t_max / t_i;
        let rhs = table.ratio(idx) * table.cf(idx);
        worst_err = worst_err.max(((lhs - rhs) / rhs).abs());
        text.push_str(&format!(
            "  {}  {t_i:8.1}  {lhs:7.4}   {rhs:7.4}\n",
            table.state(idx).frequency
        ));
    }
    report.scalar("worst_relative_error", worst_err);
    text.push_str(&format!(
        "\n  worst relative error: {:.3}%\n",
        worst_err * 100.0
    ));
    report.text = text;
    report
}

/// Eq. 3 validation: execution-time ratios track credit ratios.
#[must_use]
pub fn credit_time(fidelity: Fidelity) -> ExperimentReport {
    let job_secs = match fidelity {
        Fidelity::Full => 60.0,
        Fidelity::Quick => 6.0,
    };
    let table = cpumodel::machines::optiplex_755().pstate_table();
    let c_init = Credit::percent(10.0);
    let t_init = measure_time_at(table.max_idx(), c_init, job_secs);
    let mut text = String::from(
        "Section 5.2 / Equation 3: execution time vs credit (pi-app at 2667 MHz)\n\n  \
         credit    T(s)    T_init/T   C_j/C_init\n",
    );
    let mut report = ExperimentReport::new(
        "validation-credit-time",
        "Validation of Equation 3 (credit/time)",
    );
    let mut worst_err: f64 = 0.0;
    for step in 1..=10 {
        let c = Credit::percent(10.0 * f64::from(step));
        let t = measure_time_at(table.max_idx(), c, job_secs);
        let lhs = t_init / t;
        let rhs = c.as_percent() / c_init.as_percent();
        worst_err = worst_err.max(((lhs - rhs) / rhs).abs());
        text.push_str(&format!("  {c}  {t:8.1}  {lhs:8.4}   {rhs:8.4}\n"));
    }
    report.scalar("worst_relative_error", worst_err);
    text.push_str(&format!(
        "\n  worst relative error: {:.3}%\n",
        worst_err * 100.0
    ));
    report.text = text;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_cf_constant_across_workloads() {
        let r = freq_load(Fidelity::Quick);
        let spread = r.get_scalar("worst_relative_spread").unwrap();
        assert!(spread < 0.05, "cf spread across workloads {spread}");
        // And the measured cf at 1600 MHz matches the machine preset.
        let cf1600 = r.get_scalar("cf_1600").unwrap();
        let table = cpumodel::machines::optiplex_755().pstate_table();
        let want = table.cf(PStateIdx(0));
        assert!((cf1600 - want).abs() < 0.05, "cf {cf1600} vs preset {want}");
    }

    #[test]
    fn eq2_time_tracks_frequency() {
        let r = freq_time(Fidelity::Quick);
        assert!(r.get_scalar("worst_relative_error").unwrap() < 0.05);
    }

    #[test]
    fn eq3_time_tracks_credit() {
        let r = credit_time(Fidelity::Quick);
        assert!(r.get_scalar("worst_relative_error").unwrap() < 0.06);
    }
}
