//! End-to-end tests of the `repro` binary: flag handling and the
//! acceptance criterion that `--jobs 1` and `--jobs 4` produce
//! byte-identical stdout and artefacts for the full quick pipeline.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

/// Reads every artefact in `dir` into a name → bytes map.
fn artefacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("artefact dir exists") {
        let entry = entry.expect("readable entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(entry.path()).expect("readable file"));
    }
    out
}

#[test]
fn list_names_every_experiment_including_the_cluster_ones() {
    let out = repro(&["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let names: Vec<&str> = stdout.lines().collect();
    assert_eq!(names.len(), 25);
    for expected in [
        "fig9",
        "consolidation",
        "churn",
        "cluster-energy",
        "migration",
    ] {
        assert!(names.contains(&expected), "missing {expected}");
    }
}

#[test]
fn valueless_out_flag_fails_with_a_clear_error() {
    let out = repro(&["fig9", "--out"]);
    assert!(!out.status.success(), "trailing --out must be rejected");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--out needs a directory"),
        "clear error, got: {stderr}"
    );
}

#[test]
fn out_swallowing_a_flag_fails_before_any_work() {
    let out = repro(&["fig9", "--out", "--quick"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("--quick"), "names the culprit: {stderr}");
}

#[test]
fn unknown_experiment_fails_up_front() {
    let out = repro(&["fig9", "nonsense", "--quick"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("nonsense"), "{stderr}");
}

/// The acceptance criterion: the full quick pipeline with `--jobs 1`
/// and `--jobs 4` produces byte-identical stdout and byte-identical
/// CSV/JSON artefacts.
#[test]
fn repro_all_quick_is_byte_identical_across_job_counts() {
    let base = std::env::temp_dir().join(format!("repro-cli-test-{}", std::process::id()));
    let dir1 = base.join("jobs1");
    let dir4 = base.join("jobs4");
    let _ = std::fs::remove_dir_all(&base);

    let out1 = repro(&[
        "all",
        "--quick",
        "--out",
        dir1.to_str().unwrap(),
        "--jobs",
        "1",
    ]);
    assert!(out1.status.success(), "jobs=1 run succeeds");
    let out4 = repro(&[
        "all",
        "--quick",
        "--out",
        dir4.to_str().unwrap(),
        "--jobs",
        "4",
    ]);
    assert!(out4.status.success(), "jobs=4 run succeeds");

    assert_eq!(out1.stdout, out4.stdout, "stdout must not depend on --jobs");

    let a1 = artefacts(&dir1);
    let a4 = artefacts(&dir4);
    assert_eq!(
        a1.keys().collect::<Vec<_>>(),
        a4.keys().collect::<Vec<_>>(),
        "same artefact set"
    );
    assert!(
        a1.keys().any(|k| k == "cluster-energy.json"),
        "cluster experiments write artefacts"
    );
    for (name, bytes) in &a1 {
        assert_eq!(
            bytes, &a4[name],
            "{name} must be byte-identical across job counts"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}
