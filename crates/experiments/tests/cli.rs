//! End-to-end tests of the `repro` binary: flag handling and the
//! acceptance criterion that `--jobs 1` and `--jobs 4` produce
//! byte-identical stdout and artefacts for the full quick pipeline.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

/// Reads every artefact in `dir` into a name → bytes map.
fn artefacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("artefact dir exists") {
        let entry = entry.expect("readable entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(name, std::fs::read(entry.path()).expect("readable file"));
    }
    out
}

#[test]
fn list_names_and_describes_every_experiment() {
    let out = repro(&["list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 25);
    let names: Vec<&str> = lines
        .iter()
        .map(|l| l.split_whitespace().next().expect("non-empty line"))
        .collect();
    for expected in [
        "fig9",
        "consolidation",
        "churn",
        "cluster-energy",
        "migration",
    ] {
        assert!(names.contains(&expected), "missing {expected}");
    }
    // Every line carries a one-line description after the name.
    for line in &lines {
        let (name, rest) = line.split_once(' ').expect("name plus description");
        assert!(
            rest.trim_start().len() >= 10,
            "{name} lacks a description: {line:?}"
        );
    }
    // Spot-check a headline so the descriptions are real, not filler.
    assert!(
        stdout.contains("Table 1") && stdout.contains("live migration"),
        "{stdout}"
    );
}

#[test]
fn valueless_out_flag_fails_with_a_clear_error() {
    let out = repro(&["fig9", "--out"]);
    assert!(!out.status.success(), "trailing --out must be rejected");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--out needs a directory"),
        "clear error, got: {stderr}"
    );
}

#[test]
fn out_swallowing_a_flag_fails_before_any_work() {
    let out = repro(&["fig9", "--out", "--quick"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("--quick"), "names the culprit: {stderr}");
}

#[test]
fn unknown_experiment_fails_up_front() {
    let out = repro(&["fig9", "nonsense", "--quick"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("nonsense"), "{stderr}");
}

/// The acceptance criterion: the full quick pipeline with `--jobs 1`
/// and `--jobs 4` produces byte-identical stdout and byte-identical
/// CSV/JSON artefacts.
#[test]
fn repro_all_quick_is_byte_identical_across_job_counts() {
    let base = std::env::temp_dir().join(format!("repro-cli-test-{}", std::process::id()));
    let dir1 = base.join("jobs1");
    let dir4 = base.join("jobs4");
    let _ = std::fs::remove_dir_all(&base);

    let out1 = repro(&[
        "all",
        "--quick",
        "--out",
        dir1.to_str().unwrap(),
        "--jobs",
        "1",
    ]);
    assert!(out1.status.success(), "jobs=1 run succeeds");
    let out4 = repro(&[
        "all",
        "--quick",
        "--out",
        dir4.to_str().unwrap(),
        "--jobs",
        "4",
    ]);
    assert!(out4.status.success(), "jobs=4 run succeeds");

    assert_eq!(out1.stdout, out4.stdout, "stdout must not depend on --jobs");

    let a1 = artefacts(&dir1);
    let a4 = artefacts(&dir4);
    assert_eq!(
        a1.keys().collect::<Vec<_>>(),
        a4.keys().collect::<Vec<_>>(),
        "same artefact set"
    );
    assert!(
        a1.keys().any(|k| k == "cluster-energy.json"),
        "cluster experiments write artefacts"
    );
    for (name, bytes) in &a1 {
        assert_eq!(
            bytes, &a4[name],
            "{name} must be byte-identical across job counts"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}

fn example_spec(name: &str) -> String {
    // CARGO_MANIFEST_DIR is crates/experiments; the specs live at the
    // workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/campaigns")
        .join(name)
        .to_str()
        .expect("utf8 path")
        .to_owned()
}

/// The campaign acceptance criterion: a spec with two sweep axes and
/// three seeds per point runs end-to-end through `repro campaign`,
/// emits per-point statistics, and produces byte-identical stdout and
/// artefacts for `--jobs 1` vs `--jobs 4`.
#[test]
fn campaign_is_byte_identical_across_job_counts() {
    let base = std::env::temp_dir().join(format!("repro-campaign-test-{}", std::process::id()));
    let dir1 = base.join("jobs1");
    let dir4 = base.join("jobs4");
    let _ = std::fs::remove_dir_all(&base);
    let spec = example_spec("credit-sweep.json");

    let out1 = repro(&[
        "campaign",
        &spec,
        "--quick",
        "--out",
        dir1.to_str().unwrap(),
        "--jobs",
        "1",
    ]);
    assert!(
        out1.status.success(),
        "jobs=1 campaign succeeds: {}",
        String::from_utf8_lossy(&out1.stderr)
    );
    let out4 = repro(&[
        "campaign",
        &spec,
        "--quick",
        "--out",
        dir4.to_str().unwrap(),
        "--jobs",
        "4",
    ]);
    assert!(out4.status.success(), "jobs=4 campaign succeeds");

    assert_eq!(out1.stdout, out4.stdout, "stdout must not depend on --jobs");
    let stdout = String::from_utf8(out1.stdout).expect("utf8");
    assert!(
        stdout.contains("9 design points x 3 seeds = 27 runs"),
        "explicit count report: {stdout}"
    );
    assert!(stdout.contains("ranked by mean energy_j"), "{stdout}");
    assert!(stdout.contains("ci95="), "per-point statistics: {stdout}");

    let a1 = artefacts(&dir1);
    let a4 = artefacts(&dir4);
    assert_eq!(
        a1.keys().collect::<Vec<_>>(),
        vec![
            "credit-sweep-runs.csv",
            "credit-sweep-summary.csv",
            "credit-sweep-summary.json"
        ],
        "the three campaign artefacts"
    );
    for (name, bytes) in &a1 {
        assert_eq!(
            bytes, &a4[name],
            "{name} must be byte-identical across job counts"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}

/// The fleet example spec also runs end-to-end (placement × migration
/// axes over a seed-generated population).
#[test]
fn fleet_campaign_example_runs_quick() {
    let spec = example_spec("fleet-placement-sweep.json");
    let out = repro(&["campaign", &spec, "--quick", "--jobs", "4"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        stdout.contains("4 design points x 3 seeds = 12 runs"),
        "{stdout}"
    );
    assert!(stdout.contains("migration=on"), "{stdout}");
}

/// Every shipped example spec must parse and validate (expansion
/// included), so a typo'd machine name or over-cap sweep can't ship
/// green and fail only on a user's machine.
#[test]
fn every_example_campaign_spec_is_valid() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/campaigns");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/campaigns exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable spec");
        campaign::CampaignSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("{} must be valid: {e}", path.display()));
        seen += 1;
    }
    assert!(seen >= 3, "expected the three shipped specs, found {seen}");
}

/// Spawns the repro binary while sampling the child's peak RSS
/// (`VmHWM` from `/proc/<pid>/status`, monotone over the child's
/// lifetime). Returns the process output and the last observed
/// high-water mark in KiB — 0 where `/proc` does not exist.
fn repro_with_rss(args: &[&str]) -> (Output, u64) {
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("repro binary spawns");
    let status_path = format!("/proc/{}/status", child.id());
    let mut hwm_kb = 0u64;
    loop {
        if let Ok(Some(_)) = child.try_wait() {
            break;
        }
        if let Ok(status) = std::fs::read_to_string(&status_path) {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb = rest.trim().trim_end_matches("kB").trim();
                    hwm_kb = hwm_kb.max(kb.parse().unwrap_or(0));
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let out = child.wait_with_output().expect("repro binary runs");
    (out, hwm_kb)
}

/// The datacenter-scale smoke (ignored by default: it simulates a
/// ~2.9k-host fleet three times and wants a release binary; CI runs it
/// explicitly via `cargo test --release -p experiments --test cli --
/// --ignored`). The committed `fleet-scale.json` sweep is trimmed to
/// its middle point — 10 000 VMs, which places onto ≥1k hosts — and
/// run end-to-end through `repro campaign --quick`:
///
/// * the three artefacts exist and the summary CSV parses,
/// * the placed fleet really is ≥1k hosts,
/// * artefacts are byte-identical across `--jobs 1` vs `--jobs 2`
///   and across shard counts 16 vs 4 (sharding is pure partitioning),
/// * peak RSS of the run stays under the documented 512 MiB ceiling
///   (the bounded-statistics guarantee at this scale; the store-all
///   path would grow with epochs × hosts instead).
#[test]
#[ignore = "scale smoke: minutes of simulation; run with --release -- --ignored (CI does)"]
fn fleet_scale_campaign_quick_point_is_a_bounded_memory_smoke() {
    let base = std::env::temp_dir().join(format!("repro-fleet-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    let text = std::fs::read_to_string(example_spec("fleet-scale.json")).expect("readable spec");
    let full_axis = "\"values\": [1000, 10000, 100000]";
    assert!(
        text.contains(full_axis) && text.contains("\"shards\": 16"),
        "fleet-scale.json drifted from what this smoke trims: {text}"
    );
    let trimmed = text.replace(full_axis, "\"values\": [10000]");
    let spec1 = base.join("fleet-scale-10k.json");
    std::fs::write(&spec1, &trimmed).unwrap();
    let spec_shards4 = base.join("fleet-scale-10k-shards4.json");
    std::fs::write(
        &spec_shards4,
        trimmed.replace("\"shards\": 16", "\"shards\": 4"),
    )
    .unwrap();

    let dir1 = base.join("jobs1");
    let (out1, hwm_kb) = repro_with_rss(&[
        "campaign",
        spec1.to_str().unwrap(),
        "--quick",
        "--jobs",
        "1",
        "--out",
        dir1.to_str().unwrap(),
    ]);
    assert!(
        out1.status.success(),
        "quick point runs: {}",
        String::from_utf8_lossy(&out1.stderr)
    );

    // Artefacts exist and the summary CSV parses row-by-row.
    let a1 = artefacts(&dir1);
    for name in [
        "fleet-scale-runs.csv",
        "fleet-scale-summary.csv",
        "fleet-scale-summary.json",
    ] {
        assert!(
            a1.get(name).is_some_and(|b| !b.is_empty()),
            "{name} exists and is non-empty"
        );
    }
    let summary = String::from_utf8(a1["fleet-scale-summary.csv"].clone()).expect("utf8");
    let mut lines = summary.lines();
    let header = lines.next().expect("header row");
    assert_eq!(
        header, "point,label,metric,n,mean,stddev,ci95_half,p50,p95,p99,min,max,dropped",
        "summary schema"
    );
    let mut host_count = None;
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 13, "malformed row: {line}");
        let mean: f64 = fields[4]
            .parse()
            .unwrap_or_else(|_| panic!("numeric mean: {line}"));
        if fields[2] == "host_count" {
            host_count = Some(mean);
        }
    }
    let hosts = host_count.expect("host_count metric present");
    assert!(hosts >= 1000.0, "the quick point is ≥1k hosts, got {hosts}");

    // Byte-identical across worker counts.
    let dir2 = base.join("jobs2");
    let out2 = repro(&[
        "campaign",
        spec1.to_str().unwrap(),
        "--quick",
        "--jobs",
        "2",
        "--out",
        dir2.to_str().unwrap(),
    ]);
    assert!(out2.status.success());
    let a2 = artefacts(&dir2);
    for (name, bytes) in &a1 {
        assert_eq!(bytes, &a2[name], "{name} must not depend on --jobs");
    }

    // Byte-identical across shard counts (the summary JSON echoes the
    // spec, shards included, so only the measurement artefacts apply).
    let dir3 = base.join("shards4");
    let out3 = repro(&[
        "campaign",
        spec_shards4.to_str().unwrap(),
        "--quick",
        "--jobs",
        "1",
        "--out",
        dir3.to_str().unwrap(),
    ]);
    assert!(out3.status.success());
    let a3 = artefacts(&dir3);
    for name in ["fleet-scale-runs.csv", "fleet-scale-summary.csv"] {
        assert_eq!(
            &a1[name], &a3[name],
            "{name} must not depend on shard count"
        );
    }

    // The documented bounded-statistics ceiling for this smoke.
    if hwm_kb > 0 {
        assert!(
            hwm_kb < 512 * 1024,
            "peak RSS {hwm_kb} KiB exceeds the 512 MiB ceiling"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}

/// Tracing acceptance: a traced quick campaign writes the trace JSONL
/// and profile artefacts next to the campaign set, the trace is
/// byte-identical across `--jobs`, and `repro trace-summary` analyses
/// the artefact it just produced.
#[test]
fn traced_campaign_artefact_is_jobs_invariant_and_summarisable() {
    let base = std::env::temp_dir().join(format!("repro-trace-test-{}", std::process::id()));
    let dir1 = base.join("jobs1");
    let dir2 = base.join("jobs2");
    let _ = std::fs::remove_dir_all(&base);
    let spec = example_spec("credit-sweep.json");

    for (dir, jobs) in [(&dir1, "1"), (&dir2, "2")] {
        let out = repro(&[
            "campaign",
            &spec,
            "--quick",
            "--jobs",
            jobs,
            "--out",
            dir.to_str().unwrap(),
            "--trace",
        ]);
        assert!(
            out.status.success(),
            "jobs={jobs} traced campaign succeeds: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let a1 = artefacts(&dir1);
    let a2 = artefacts(&dir2);
    assert_eq!(
        a1.keys().collect::<Vec<_>>(),
        vec![
            "credit-sweep-profile.json",
            "credit-sweep-runs.csv",
            "credit-sweep-summary.csv",
            "credit-sweep-summary.json",
            "credit-sweep-trace.jsonl",
        ],
        "trace + profile artefacts ride alongside the campaign set"
    );
    assert_eq!(
        a1["credit-sweep-trace.jsonl"], a2["credit-sweep-trace.jsonl"],
        "trace JSONL must be byte-identical across --jobs"
    );
    let trace = String::from_utf8(a1["credit-sweep-trace.jsonl"].clone()).expect("utf8");
    assert!(
        trace.starts_with("{\"schema\":\"pas-repro-trace/v1\""),
        "schema header first: {}",
        trace.lines().next().unwrap_or("")
    );
    // The wall-clock profile exists in both runs but is intentionally
    // outside the byte-identity contract (timings differ).
    let profile = String::from_utf8(a1["credit-sweep-profile.json"].clone()).expect("utf8");
    assert!(profile.contains("pas-repro-profile/v1"), "{profile}");

    let trace_path = dir1.join("credit-sweep-trace.jsonl");
    let out = repro(&["trace-summary", trace_path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "trace-summary reads its own artefact: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("events by kind"), "{stdout}");
    assert!(stdout.contains("sched_pick"), "{stdout}");

    let _ = std::fs::remove_dir_all(&base);
}

/// `repro run` executes a single spec (no sweep) and `--trace-out`
/// implies tracing, writing the two trace artefacts into that directory.
#[test]
fn run_single_spec_with_trace_out_writes_the_trace_artefacts() {
    let base = std::env::temp_dir().join(format!("repro-run-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let spec = example_spec("credit-sweep.json");

    let out = repro(&[
        "run",
        &spec,
        "--quick",
        "--trace-out",
        base.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("run: credit-sweep (seed 42)"), "{stdout}");
    assert!(stdout.contains(" = "), "scalar lines present: {stdout}");

    let a = artefacts(&base);
    assert!(
        a.get("credit-sweep-trace.jsonl")
            .is_some_and(|b| !b.is_empty()),
        "trace artefact written"
    );
    assert!(
        a.get("credit-sweep-profile.json")
            .is_some_and(|b| !b.is_empty()),
        "profile artefact written"
    );

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn valueless_trace_out_flag_fails_with_a_clear_error() {
    let out = repro(&["campaign", "spec.json", "--trace-out"]);
    assert!(
        !out.status.success(),
        "trailing --trace-out must be rejected"
    );
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--trace-out needs a directory"),
        "clear error, got: {stderr}"
    );
}

#[test]
fn trace_flag_on_a_registry_experiment_is_rejected() {
    let out = repro(&["fig9", "--quick", "--trace"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("--trace applies to"),
        "names the restriction: {stderr}"
    );
}

#[test]
fn campaign_with_missing_spec_file_fails_cleanly() {
    let out = repro(&["campaign", "/nonexistent/spec.json"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn campaign_with_malformed_spec_reports_the_field() {
    let base = std::env::temp_dir().join(format!("repro-campaign-bad-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let path = base.join("bad.json");
    std::fs::write(
        &path,
        r#"{ "name": "bad",
             "scenario": { "kind": "host", "scheduler": "cfs", "vms": [] },
             "seeds": { "replicates": 1 } }"#,
    )
    .unwrap();
    let out = repro(&["campaign", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("unknown scheduler `cfs`"), "{stderr}");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn campaign_requires_exactly_one_spec() {
    let out = repro(&["campaign"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("exactly one spec file"), "{stderr}");
}

/// Sends one raw HTTP/1.1 request to `addr`, returning
/// `(status, body)`. The server closes each connection after the
/// response, so reading to EOF is the framing.
fn http_request(addr: &str, raw: &str) -> (u16, String) {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to repro serve");
    stream.write_all(raw.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// The serve acceptance criterion, end to end against the real
/// binary: `repro serve` boots on an ephemeral port and prints the
/// bound address; an unauthenticated request is rejected; a campaign
/// POSTed over HTTP runs to completion and its served summary — and
/// the `--out` artefact — are byte-identical to what `repro campaign`
/// writes for the same spec; `POST /shutdown` exits cleanly.
#[test]
fn serve_runs_a_posted_campaign_byte_identical_to_the_cli() {
    use std::io::BufRead as _;
    use std::process::Stdio;

    let base = std::env::temp_dir().join(format!("repro-serve-test-{}", std::process::id()));
    let cli_dir = base.join("cli");
    let srv_dir = base.join("srv");
    let _ = std::fs::remove_dir_all(&base);
    let spec = example_spec("credit-sweep.json");

    // The reference run through the existing subcommand.
    let out = repro(&[
        "campaign",
        &spec,
        "--quick",
        "--jobs",
        "2",
        "--out",
        cli_dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "serve",
            "--port",
            "0",
            "--quick",
            "--jobs",
            "2",
            "--token",
            "s3cret",
            "--out",
            srv_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("repro serve spawns");
    let mut boot_line = String::new();
    std::io::BufReader::new(child.stdout.take().expect("piped stdout"))
        .read_line(&mut boot_line)
        .expect("boot line");
    let addr = boot_line
        .trim()
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected boot line {boot_line:?}"))
        .to_owned();

    let (status, _) = http_request(&addr, "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(status, 401, "the token guards the whole API");

    let auth = "authorization: Bearer s3cret\r\n";
    let (status, body) = http_request(
        &addr,
        &format!("GET /healthz HTTP/1.1\r\nhost: t\r\n{auth}\r\n"),
    );
    assert_eq!(status, 200, "{body}");

    let spec_json = std::fs::read_to_string(&spec).expect("readable spec");
    let (status, body) = http_request(
        &addr,
        &format!(
            "POST /campaigns HTTP/1.1\r\nhost: t\r\n{auth}content-length: {}\r\n\r\n{spec_json}",
            spec_json.len()
        ),
    );
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"id\":1"), "{body}");

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(300);
    loop {
        let (status, body) = http_request(
            &addr,
            &format!("GET /campaigns/1 HTTP/1.1\r\nhost: t\r\n{auth}\r\n"),
        );
        assert_eq!(status, 200, "{body}");
        if body.contains("\"state\":\"done\"") {
            break;
        }
        assert!(
            !body.contains("\"state\":\"failed\""),
            "campaign failed: {body}"
        );
        assert!(std::time::Instant::now() < deadline, "never finished");
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    let (status, served_summary) = http_request(
        &addr,
        &format!("GET /campaigns/1/summary HTTP/1.1\r\nhost: t\r\n{auth}\r\n"),
    );
    assert_eq!(status, 200);
    let cli_summary =
        std::fs::read_to_string(cli_dir.join("credit-sweep-summary.json")).expect("CLI artefact");
    assert_eq!(
        served_summary, cli_summary,
        "the served summary must be byte-identical to `repro campaign`'s"
    );

    // The server's --out directory holds the same three artefacts.
    let cli_artefacts = artefacts(&cli_dir);
    let srv_artefacts = artefacts(&srv_dir);
    assert_eq!(
        cli_artefacts.keys().collect::<Vec<_>>(),
        srv_artefacts.keys().collect::<Vec<_>>()
    );
    for (name, bytes) in &cli_artefacts {
        assert_eq!(bytes, &srv_artefacts[name], "{name} must match the CLI's");
    }

    let (status, _) = http_request(
        &addr,
        &format!("POST /shutdown HTTP/1.1\r\nhost: t\r\n{auth}\r\n"),
    );
    assert_eq!(status, 200);
    let exit = child.wait().expect("serve exits after /shutdown");
    assert!(exit.success(), "clean exit, got {exit:?}");

    let _ = std::fs::remove_dir_all(&base);
}
