//! The `cf` proportionality factor (Equation 1 of the paper).
//!
//! The paper defines `cf_i` by `L_max / L_i = (F_i / F_max) · cf_i`:
//! the correction on top of perfect frequency/performance
//! proportionality. Table 1 reports `cf_min` for five processors, all
//! ≤ 1 and machine-dependent.
//!
//! Two models are provided:
//!
//! * [`CfModel::Table`] — the measured values, interpolated per P-state
//!   (what the PAS scheduler consumes at run time);
//! * [`CfModel::Microarch`] — a two-parameter stall model from which
//!   `cf` *emerges*, used to re-run the paper's calibration procedure.
//!   Normalised execution time of one unit of work at ratio `r`:
//!
//!   ```text
//!   t(r) = (1 − α − β)/r + α + β/r²
//!   ```
//!
//!   where `α` is the frequency-insensitive fraction (memory stalls
//!   whose latency does not scale with core frequency — these *help*
//!   at low frequency) and `β` a super-linear penalty (uncore/bus
//!   effects that get *worse* faster than the frequency drops — these
//!   produce the `cf < 1` values of Table 1). The resulting factor is
//!   `cf(r) = 1 / ((1 − α − β) + α·r + β/r)`, with `cf(1) = 1` exactly.

use serde::{Deserialize, Serialize};

/// Where the per-frequency `cf_i` factors come from.
///
/// # Example
///
/// ```
/// use cpumodel::CfModel;
/// // A machine that loses 20% efficiency at half frequency:
/// let m = CfModel::microarch(0.0, 0.2);
/// assert!((m.cf_at_ratio(1.0) - 1.0).abs() < 1e-12);
/// assert!(m.cf_at_ratio(0.5) < 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum CfModel {
    /// Perfect proportionality: `cf = 1` at every frequency.
    #[default]
    Ideal,
    /// Explicit per-P-state values, lowest frequency first. The last
    /// entry corresponds to the maximum frequency and should be `1.0`.
    Table(Vec<f64>),
    /// The micro-architectural stall model described in the module
    /// docs.
    Microarch {
        /// Frequency-insensitive stall fraction `α ∈ [0, 1)`.
        alpha: f64,
        /// Super-linear penalty fraction `β ∈ [0, 1)`, with `α + β < 1`.
        beta: f64,
    },
}

impl CfModel {
    /// Builds the micro-architectural model.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` or `beta` is outside `[0, 1)` or they sum to
    /// `1` or more.
    #[must_use]
    pub fn microarch(alpha: f64, beta: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha {alpha} out of [0,1)");
        assert!((0.0..1.0).contains(&beta), "beta {beta} out of [0,1)");
        assert!(alpha + beta < 1.0, "alpha + beta must be < 1");
        CfModel::Microarch { alpha, beta }
    }

    /// Derives the `β` that makes the micro-architectural model (with
    /// `α = 0`) reproduce a measured `cf` value at frequency ratio `r`.
    ///
    /// This is how the machine presets embed Table 1: given the paper's
    /// `cf_min` and the machine's minimum-frequency ratio, the preset
    /// stores the `β` that *produces* that `cf_min`, and the calibration
    /// experiment re-measures it.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not in `(0, 1)` or `cf` not in `(0, 1]`.
    #[must_use]
    pub fn microarch_matching(cf: f64, r: f64) -> Self {
        assert!(r > 0.0 && r < 1.0, "ratio {r} out of (0,1)");
        assert!(cf > 0.0 && cf <= 1.0, "cf {cf} out of (0,1]");
        // cf(r) = 1 / ((1-β) + β/r)  ⇒  β = r·(1−cf) / (cf·(1−r))
        let beta = r * (1.0 - cf) / (cf * (1.0 - r));
        CfModel::microarch(0.0, beta.min(0.999_999))
    }

    /// The `cf` factor at frequency ratio `r = F_i / F_max`.
    ///
    /// For [`CfModel::Table`] the ratio is normally resolved against
    /// the table by index via [`PStateTable::cf`](crate::PStateTable::cf);
    /// calling `cf_at_ratio` on a table interpolates linearly over the
    /// implied equally-spaced grid and is mainly useful for plotting.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not in `(0, 1]`.
    ///
    /// [`PStateTable`]: crate::PStateTable
    #[must_use]
    pub fn cf_at_ratio(&self, r: f64) -> f64 {
        assert!(r > 0.0 && r <= 1.0, "ratio {r} out of (0,1]");
        match self {
            CfModel::Ideal => 1.0,
            CfModel::Table(values) => {
                if values.is_empty() {
                    return 1.0;
                }
                if values.len() == 1 {
                    return values[0];
                }
                // Interpolate assuming the table spans ratios uniformly
                // up to 1.0.
                let pos = r * (values.len() - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = (lo + 1).min(values.len() - 1);
                let frac = pos - lo as f64;
                values[lo] * (1.0 - frac) + values[hi] * frac
            }
            CfModel::Microarch { alpha, beta } => {
                1.0 / ((1.0 - alpha - beta) + alpha * r + beta / r)
            }
        }
    }

    /// Normalised execution time of one unit of work at ratio `r`
    /// (`t(1) = 1`): the quantity Equation 2 of the paper relates
    /// across frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not in `(0, 1]`.
    #[must_use]
    pub fn time_factor(&self, r: f64) -> f64 {
        1.0 / (r * self.cf_at_ratio(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_one_everywhere() {
        let m = CfModel::Ideal;
        for r in [0.1, 0.5, 0.9, 1.0] {
            assert!((m.cf_at_ratio(r) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn microarch_is_one_at_fmax() {
        let m = CfModel::microarch(0.3, 0.1);
        assert!((m.cf_at_ratio(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_raises_cf_below_fmax() {
        // Memory-bound work: slowing the core hurts less than linear.
        let m = CfModel::microarch(0.4, 0.0);
        assert!(m.cf_at_ratio(0.5) > 1.0);
    }

    #[test]
    fn beta_lowers_cf_below_fmax() {
        let m = CfModel::microarch(0.0, 0.3);
        assert!(m.cf_at_ratio(0.5) < 1.0);
    }

    #[test]
    fn matching_reproduces_target_cf() {
        // E5-2620 from Table 1: cf_min = 0.80338 at ratio 1200/2000.
        let r = 1200.0 / 2000.0;
        let m = CfModel::microarch_matching(0.80338, r);
        assert!((m.cf_at_ratio(r) - 0.80338).abs() < 1e-9);
        assert!((m.cf_at_ratio(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_interpolation() {
        let m = CfModel::Table(vec![0.8, 0.9, 1.0]);
        assert!((m.cf_at_ratio(1.0) - 1.0).abs() < 1e-12);
        assert!((m.cf_at_ratio(0.5) - 0.9).abs() < 1e-12);
        assert!((m.cf_at_ratio(0.75) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn time_factor_inverse_of_capacity() {
        let m = CfModel::microarch(0.1, 0.1);
        let r = 0.6;
        let t = m.time_factor(r);
        // Doing work at ratio r takes t× longer; capacity ratio is 1/t.
        assert!((1.0 / t - r * m.cf_at_ratio(r)).abs() < 1e-12);
        assert!(t > 1.0);
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn zero_ratio_rejected() {
        let _ = CfModel::Ideal.cf_at_ratio(0.0);
    }

    #[test]
    #[should_panic(expected = "alpha + beta")]
    fn saturated_stalls_rejected() {
        let _ = CfModel::microarch(0.6, 0.5);
    }
}
