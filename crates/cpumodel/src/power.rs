//! Power and energy accounting.
//!
//! The paper motivates PAS with energy savings but never plots them;
//! we add the standard CMOS model so the workspace can run the energy
//! ablation the paper leaves implicit:
//!
//! ```text
//! P(f, V, u) = P_static + u · C_eff · f · V²
//! ```
//!
//! where `u` is the busy fraction. `P_static` covers leakage plus the
//! platform floor; `C_eff` is an effective switched capacitance fitted
//! so that the preset machines land at plausible desktop/server TDPs.

use serde::{Deserialize, Serialize};

use crate::pstate::{PState, PStateIdx, PStateTable};

/// The CMOS-style power model described in the module docs.
///
/// # Example
///
/// ```
/// use cpumodel::PowerModel;
/// let m = PowerModel::new(40.0, 65.0);
/// // Idle floor is the static power.
/// let table = cpumodel::machines::optiplex_755().pstate_table();
/// let idle = m.power_w(table.max(), 0.0);
/// assert!((idle - 40.0).abs() < 1e-9);
/// // Fully busy at fmax hits the dynamic budget on top.
/// let busy = m.power_w(table.max(), 1.0);
/// assert!((busy - 105.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static (frequency-independent) power in watts.
    pub p_static_w: f64,
    /// Dynamic power at maximum frequency, maximum voltage, 100% busy,
    /// in watts. The effective capacitance is derived from it lazily.
    pub p_dynamic_max_w: f64,
}

impl PowerModel {
    /// Creates a model from its static floor and its full-tilt dynamic
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if either component is negative or not finite.
    #[must_use]
    pub fn new(p_static_w: f64, p_dynamic_max_w: f64) -> Self {
        assert!(
            p_static_w.is_finite() && p_static_w >= 0.0,
            "bad static power"
        );
        assert!(
            p_dynamic_max_w.is_finite() && p_dynamic_max_w >= 0.0,
            "bad dynamic power"
        );
        PowerModel {
            p_static_w,
            p_dynamic_max_w,
        }
    }

    /// Instantaneous power in watts at P-state `state` with busy
    /// fraction `busy` — but note the `f·V²` scaling needs to know the
    /// *maximum* state; use [`power_scaled`](Self::power_scaled) when
    /// you have the table. This convenience assumes `state` *is* the
    /// reference (used by doctests and simple cases).
    #[must_use]
    pub fn power_w(&self, state: &PState, busy: f64) -> f64 {
        self.power_scaled(state, state, busy)
    }

    /// Instantaneous power in watts, with `fmax_state` as the reference
    /// operating point for the dynamic budget.
    ///
    /// # Panics
    ///
    /// Panics if `busy` is outside `[0, 1]`.
    #[must_use]
    pub fn power_scaled(&self, state: &PState, fmax_state: &PState, busy: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&busy),
            "busy fraction {busy} out of [0,1]"
        );
        let f_ratio = state.frequency.as_mhz() as f64 / fmax_state.frequency.as_mhz() as f64;
        let v_ratio = state.voltage / fmax_state.voltage;
        self.p_static_w + busy * self.p_dynamic_max_w * f_ratio * v_ratio * v_ratio
    }
}

impl Default for PowerModel {
    /// A nominal 40 W-static / 65 W-dynamic desktop processor.
    fn default() -> Self {
        PowerModel::new(40.0, 65.0)
    }
}

/// Integrates energy over a run.
///
/// The host simulator calls [`advance`](Self::advance) once per
/// scheduling quantum with the P-state and busy fraction that held over
/// the elapsed span.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    joules: f64,
    busy_seconds: f64,
    total_seconds: f64,
}

impl EnergyMeter {
    /// A meter at zero.
    #[must_use]
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Accounts `dt_secs` seconds spent at `state` with the given busy
    /// fraction.
    ///
    /// # Panics
    ///
    /// Panics if `dt_secs` is negative or `busy` outside `[0, 1]`.
    pub fn advance(
        &mut self,
        model: &PowerModel,
        table: &PStateTable,
        state: PStateIdx,
        busy: f64,
        dt_secs: f64,
    ) {
        assert!(dt_secs >= 0.0, "negative time span");
        let p = model.power_scaled(table.state(state), table.max(), busy);
        self.joules += p * dt_secs;
        self.busy_seconds += busy * dt_secs;
        self.total_seconds += dt_secs;
    }

    /// Total energy consumed so far, in joules.
    #[must_use]
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Mean power over the run, in watts (zero for an empty run).
    #[must_use]
    pub fn mean_power_w(&self) -> f64 {
        if self.total_seconds == 0.0 {
            0.0
        } else {
            self.joules / self.total_seconds
        }
    }

    /// Aggregate busy fraction over the run (zero for an empty run).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.total_seconds == 0.0 {
            0.0
        } else {
            self.busy_seconds / self.total_seconds
        }
    }

    /// Wall-clock seconds accounted.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.total_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cf::CfModel;
    use crate::freq::Frequency;

    fn table() -> PStateTable {
        PStateTable::from_frequencies([1600, 2667].map(Frequency::mhz), &CfModel::Ideal).unwrap()
    }

    #[test]
    fn idle_power_is_static_only() {
        let m = PowerModel::new(30.0, 70.0);
        let t = table();
        assert!((m.power_scaled(t.min(), t.max(), 0.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn lower_frequency_draws_less_dynamic_power() {
        let m = PowerModel::default();
        let t = table();
        let hi = m.power_scaled(t.max(), t.max(), 1.0);
        let lo = m.power_scaled(t.min(), t.max(), 1.0);
        assert!(lo < hi);
        // f·V² scaling: strictly better than linear-in-f savings.
        let linear = m.p_static_w + m.p_dynamic_max_w * (1600.0 / 2667.0);
        assert!(lo < linear);
    }

    #[test]
    fn meter_integrates() {
        let m = PowerModel::new(10.0, 0.0);
        let t = table();
        let mut e = EnergyMeter::new();
        e.advance(&m, &t, t.max_idx(), 0.5, 100.0);
        assert!((e.joules() - 1000.0).abs() < 1e-9);
        assert!((e.mean_power_w() - 10.0).abs() < 1e-9);
        assert!((e.utilization() - 0.5).abs() < 1e-12);
        assert!((e.seconds() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_meter_reports_zero() {
        let e = EnergyMeter::new();
        assert_eq!(e.joules(), 0.0);
        assert_eq!(e.mean_power_w(), 0.0);
        assert_eq!(e.utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn busy_fraction_validated() {
        let m = PowerModel::default();
        let t = table();
        let _ = m.power_scaled(t.min(), t.max(), 1.5);
    }
}
