//! Processor substrate: frequencies, P-states, DVFS, power and energy.
//!
//! The paper models hardware through two quantities (Section 4.2):
//!
//! * the **frequency ratio** `ratio_i = F_i / F_max`, and
//! * the per-frequency **proportionality factor** `cf_i` of Equation 1
//!   (`L_max / L_i = ratio_i · cf_i`), measured per machine in Table 1.
//!
//! This crate provides both a *table-driven* `cf` (plug in Table 1
//! values directly) and a *micro-architectural* model from which `cf`
//! emerges (a frequency-insensitive stall fraction plus a super-linear
//! penalty term), so the paper's calibration procedure (Section 5.2)
//! can be re-run as an experiment rather than assumed.
//!
//! The exported pieces:
//!
//! * [`Frequency`], [`PState`], [`PStateTable`] — the DVFS ladder,
//! * [`CfModel`] — where `cf_i` comes from,
//! * [`Cpu`] — a single core with a current P-state, transition
//!   accounting and an [`EnergyMeter`],
//! * [`machines`] — presets for every machine the paper measures,
//! * [`topology`] — multi-core hosts and DVFS domains (the paper's
//!   "perspectives" extension),
//! * [`smt`] — the hyper-threading capacity model (the other §7
//!   perspective): sibling contention as a second Equation 4 factor.
//!
//! # Example
//!
//! ```
//! use cpumodel::machines;
//!
//! let spec = machines::optiplex_755();
//! let cpu = spec.build_cpu();
//! // The Optiplex 755 ladder from the paper's figures.
//! let mhz: Vec<u32> = cpu.pstates().frequencies().map(|f| f.as_mhz()).collect();
//! assert_eq!(mhz, vec![1600, 1867, 2133, 2400, 2667]);
//! ```

#![deny(missing_docs)]

mod cf;
mod cpu;
mod freq;
pub mod machines;
mod power;
mod pstate;
pub mod smt;
pub mod topology;

pub use cf::CfModel;
pub use cpu::{Cpu, CpuError};
pub use freq::Frequency;
pub use machines::MachineSpec;
pub use power::{EnergyMeter, PowerModel};
pub use pstate::{PState, PStateIdx, PStateTable, PStateTableError};
pub use smt::{SmtSpec, SmtSpecError};
