//! The DVFS ladder: P-states and their table.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cf::CfModel;
use crate::freq::Frequency;

/// Index of a P-state within a [`PStateTable`], `0` being the *lowest*
/// frequency. This matches the paper's iteration order in Listing 1.1
/// (`for i = 1..fmax`, lowest first).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PStateIdx(pub usize);

impl fmt::Display for PStateIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// One operating point: frequency, supply voltage and the `cf` factor
/// at that frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PState {
    /// Core frequency.
    pub frequency: Frequency,
    /// Supply voltage in volts (used by the power model).
    pub voltage: f64,
    /// The paper's `cf_i` at this frequency (Equation 1).
    pub cf: f64,
}

impl PState {
    /// Effective computing capacity at this state, in mega-cycles per
    /// second *of maximum-frequency-equivalent work*: `F_i · cf_i`.
    #[must_use]
    pub fn effective_mcps(&self) -> f64 {
        self.frequency.as_mhz() as f64 * self.cf
    }
}

/// Errors constructing a [`PStateTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PStateTableError {
    /// The table must contain at least one state.
    Empty,
    /// Frequencies must be strictly ascending.
    NotAscending {
        /// Index at which monotonicity broke.
        index: usize,
    },
}

impl fmt::Display for PStateTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PStateTableError::Empty => write!(f, "p-state table is empty"),
            PStateTableError::NotAscending { index } => {
                write!(
                    f,
                    "p-state frequencies not strictly ascending at index {index}"
                )
            }
        }
    }
}

impl std::error::Error for PStateTableError {}

/// The ordered set of P-states a processor supports, lowest frequency
/// first.
///
/// # Example
///
/// ```
/// use cpumodel::{CfModel, Frequency, PStateTable};
///
/// let table = PStateTable::from_frequencies(
///     [1600, 2133, 2667].map(Frequency::mhz),
///     &CfModel::Ideal,
/// )?;
/// assert_eq!(table.len(), 3);
/// assert_eq!(table.max().frequency, Frequency::mhz(2667));
/// assert!((table.ratio(table.min_idx()) - 1600.0 / 2667.0).abs() < 1e-12);
/// # Ok::<(), cpumodel::PStateTableError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PStateTable {
    states: Vec<PState>,
}

impl PStateTable {
    /// Builds a table from explicit states.
    ///
    /// # Errors
    ///
    /// Returns [`PStateTableError::Empty`] for an empty list and
    /// [`PStateTableError::NotAscending`] if frequencies are not
    /// strictly increasing.
    pub fn new(states: Vec<PState>) -> Result<Self, PStateTableError> {
        if states.is_empty() {
            return Err(PStateTableError::Empty);
        }
        for (i, pair) in states.windows(2).enumerate() {
            if pair[1].frequency <= pair[0].frequency {
                return Err(PStateTableError::NotAscending { index: i + 1 });
            }
        }
        Ok(PStateTable { states })
    }

    /// Builds a table from bare frequencies, deriving `cf` from the
    /// given model and voltages on a linear 0.85 V – 1.25 V ramp (a
    /// typical desktop VID range; only the power model consumes them).
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn from_frequencies(
        freqs: impl IntoIterator<Item = Frequency>,
        cf_model: &CfModel,
    ) -> Result<Self, PStateTableError> {
        let freqs: Vec<Frequency> = freqs.into_iter().collect();
        if freqs.is_empty() {
            return Err(PStateTableError::Empty);
        }
        let fmax = *freqs.last().expect("non-empty");
        let fmin = freqs[0];
        let states = freqs
            .iter()
            .map(|&f| {
                let ratio = f.ratio_to(fmax);
                let vrange = (fmax.as_mhz() - fmin.as_mhz()).max(1) as f64;
                let vfrac = (f.as_mhz() - fmin.as_mhz()) as f64 / vrange;
                PState {
                    frequency: f,
                    voltage: 0.85 + 0.40 * vfrac,
                    cf: cf_model.cf_at_ratio(ratio),
                }
            })
            .collect();
        PStateTable::new(states)
    }

    /// Number of P-states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always `false`: construction rejects empty tables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The state at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range; use [`get`](Self::get) for a
    /// checked lookup.
    #[must_use]
    pub fn state(&self, idx: PStateIdx) -> &PState {
        &self.states[idx.0]
    }

    /// Checked lookup.
    #[must_use]
    pub fn get(&self, idx: PStateIdx) -> Option<&PState> {
        self.states.get(idx.0)
    }

    /// The lowest-frequency state.
    #[must_use]
    pub fn min(&self) -> &PState {
        &self.states[0]
    }

    /// The highest-frequency state.
    #[must_use]
    pub fn max(&self) -> &PState {
        self.states.last().expect("non-empty by construction")
    }

    /// Index of the lowest-frequency state.
    #[must_use]
    pub fn min_idx(&self) -> PStateIdx {
        PStateIdx(0)
    }

    /// Index of the highest-frequency state.
    #[must_use]
    pub fn max_idx(&self) -> PStateIdx {
        PStateIdx(self.states.len() - 1)
    }

    /// The maximum frequency (`F_max`).
    #[must_use]
    pub fn fmax(&self) -> Frequency {
        self.max().frequency
    }

    /// The frequency ratio `F_idx / F_max` of Equation 1.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn ratio(&self, idx: PStateIdx) -> f64 {
        self.state(idx).frequency.ratio_to(self.fmax())
    }

    /// The `cf` factor at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn cf(&self, idx: PStateIdx) -> f64 {
        self.state(idx).cf
    }

    /// Iterates over state indices, lowest frequency first.
    pub fn indices(&self) -> impl Iterator<Item = PStateIdx> + '_ {
        (0..self.states.len()).map(PStateIdx)
    }

    /// Iterates over frequencies, lowest first.
    pub fn frequencies(&self) -> impl Iterator<Item = Frequency> + '_ {
        self.states.iter().map(|s| s.frequency)
    }

    /// Iterates over the states themselves.
    pub fn iter(&self) -> std::slice::Iter<'_, PState> {
        self.states.iter()
    }

    /// The index of the state with exactly frequency `f`, if present.
    #[must_use]
    pub fn index_of(&self, f: Frequency) -> Option<PStateIdx> {
        self.states
            .iter()
            .position(|s| s.frequency == f)
            .map(PStateIdx)
    }

    /// The lowest state whose frequency is `>= f`, or the maximum state
    /// if none is (mirrors Linux cpufreq's `CPUFREQ_RELATION_L`).
    #[must_use]
    pub fn lowest_at_least(&self, f: Frequency) -> PStateIdx {
        for (i, s) in self.states.iter().enumerate() {
            if s.frequency >= f {
                return PStateIdx(i);
            }
        }
        self.max_idx()
    }
}

impl<'a> IntoIterator for &'a PStateTable {
    type Item = &'a PState;
    type IntoIter = std::slice::Iter<'a, PState>;
    fn into_iter(self) -> Self::IntoIter {
        self.states.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> PStateTable {
        PStateTable::from_frequencies(
            [1600, 1867, 2133, 2400, 2667].map(Frequency::mhz),
            &CfModel::Ideal,
        )
        .unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let t = ladder();
        assert_eq!(t.len(), 5);
        assert_eq!(t.min().frequency, Frequency::mhz(1600));
        assert_eq!(t.max().frequency, Frequency::mhz(2667));
        assert_eq!(t.max_idx(), PStateIdx(4));
        assert_eq!(t.index_of(Frequency::mhz(2133)), Some(PStateIdx(2)));
        assert_eq!(t.index_of(Frequency::mhz(9999)), None);
    }

    #[test]
    fn empty_rejected() {
        let err = PStateTable::new(vec![]).unwrap_err();
        assert_eq!(err, PStateTableError::Empty);
    }

    #[test]
    fn non_ascending_rejected() {
        let mk = |f| PState {
            frequency: Frequency::mhz(f),
            voltage: 1.0,
            cf: 1.0,
        };
        let err = PStateTable::new(vec![mk(2000), mk(1500)]).unwrap_err();
        assert_eq!(err, PStateTableError::NotAscending { index: 1 });
        let err2 = PStateTable::new(vec![mk(2000), mk(2000)]).unwrap_err();
        assert_eq!(err2, PStateTableError::NotAscending { index: 1 });
    }

    #[test]
    fn ratio_and_cf() {
        let t = ladder();
        assert!((t.ratio(t.max_idx()) - 1.0).abs() < 1e-12);
        assert!((t.ratio(PStateIdx(0)) - 1600.0 / 2667.0).abs() < 1e-12);
        assert!((t.cf(PStateIdx(0)) - 1.0).abs() < 1e-12, "ideal model");
    }

    #[test]
    fn cf_model_applied_per_state() {
        let t = PStateTable::from_frequencies(
            [1000, 2000].map(Frequency::mhz),
            &CfModel::microarch(0.0, 0.2),
        )
        .unwrap();
        assert!(t.cf(PStateIdx(0)) < 1.0);
        assert!((t.cf(PStateIdx(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn voltages_ramp() {
        let t = ladder();
        let volts: Vec<f64> = t.iter().map(|s| s.voltage).collect();
        assert!(volts.windows(2).all(|w| w[1] > w[0]));
        assert!((volts[0] - 0.85).abs() < 1e-12);
        assert!((volts[4] - 1.25).abs() < 1e-12);
    }

    #[test]
    fn lowest_at_least() {
        let t = ladder();
        assert_eq!(t.lowest_at_least(Frequency::mhz(1)), PStateIdx(0));
        assert_eq!(t.lowest_at_least(Frequency::mhz(1900)), PStateIdx(2));
        assert_eq!(t.lowest_at_least(Frequency::mhz(2667)), PStateIdx(4));
        assert_eq!(t.lowest_at_least(Frequency::mhz(9000)), PStateIdx(4));
    }

    #[test]
    fn effective_mcps() {
        let s = PState {
            frequency: Frequency::mhz(2000),
            voltage: 1.0,
            cf: 0.9,
        };
        assert!((s.effective_mcps() - 1800.0).abs() < 1e-9);
    }
}
