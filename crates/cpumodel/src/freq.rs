//! Processor frequency newtype.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A processor frequency in MHz.
///
/// A newtype (rather than a bare `u32`) so that frequencies, credits
/// and percentages cannot be mixed up in the scheduler code.
///
/// # Example
///
/// ```
/// use cpumodel::Frequency;
/// let f = Frequency::mhz(2667);
/// assert_eq!(f.as_mhz(), 2667);
/// assert!((f.as_ghz() - 2.667).abs() < 1e-9);
/// assert_eq!(format!("{f}"), "2667 MHz");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Frequency(u32);

impl Frequency {
    /// Creates a frequency from MHz.
    #[must_use]
    pub const fn mhz(mhz: u32) -> Self {
        Frequency(mhz)
    }

    /// This frequency in MHz.
    #[must_use]
    pub const fn as_mhz(self) -> u32 {
        self.0
    }

    /// This frequency in GHz.
    #[must_use]
    pub fn as_ghz(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Mega-cycles elapsed in `secs` seconds at this frequency.
    ///
    /// 1 MHz is by definition one mega-cycle per second, so this is the
    /// natural work unit of the whole simulator.
    #[must_use]
    pub fn mcycles_in(self, secs: f64) -> f64 {
        self.0 as f64 * secs
    }

    /// The ratio of this frequency to `fmax` — the paper's `ratio_i`.
    ///
    /// # Panics
    ///
    /// Panics if `fmax` is zero.
    #[must_use]
    pub fn ratio_to(self, fmax: Frequency) -> f64 {
        assert!(fmax.0 > 0, "fmax must be non-zero");
        self.0 as f64 / fmax.0 as f64
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MHz", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let f = Frequency::mhz(1600);
        assert_eq!(f.as_mhz(), 1600);
        assert!((f.as_ghz() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn ratio() {
        let f = Frequency::mhz(1600);
        let fmax = Frequency::mhz(2667);
        let r = f.ratio_to(fmax);
        assert!((r - 1600.0 / 2667.0).abs() < 1e-12);
        assert!((fmax.ratio_to(fmax) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mcycles() {
        assert!((Frequency::mhz(2000).mcycles_in(0.5) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn ordering() {
        assert!(Frequency::mhz(1600) < Frequency::mhz(2667));
    }

    #[test]
    #[should_panic(expected = "fmax must be non-zero")]
    fn zero_fmax_rejected() {
        let _ = Frequency::mhz(1).ratio_to(Frequency::mhz(0));
    }
}
