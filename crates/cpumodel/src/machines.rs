//! Machine presets for every processor the paper measures.
//!
//! Table 1 of the paper reports `cf_min` for five Grid'5000 / desktop
//! processors; the evaluation testbeds are a DELL Optiplex 755
//! (Core 2 Duo, ladder 1600–2667 MHz, Figures 1–10) and an HP Compaq
//! Elite 8300 (i7-3770, Table 2). Each preset stores the DVFS ladder
//! and a [`CfModel`] whose parameters are chosen so that *re-running
//! the paper's calibration procedure on the simulated machine
//! reproduces the published `cf_min`* (see `experiments::table1`).

use serde::{Deserialize, Serialize};

use crate::cf::CfModel;
use crate::cpu::Cpu;
use crate::freq::Frequency;
use crate::power::PowerModel;
use crate::pstate::PStateTable;

/// A complete description of a simulated machine.
///
/// # Example
///
/// ```
/// use cpumodel::machines;
/// let spec = machines::intel_xeon_e5_2620();
/// let table = spec.pstate_table();
/// // Table 1: the E5-2620 deviates hardest from proportionality.
/// assert!(table.cf(table.min_idx()) < 0.81);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable model name as the paper prints it.
    pub name: String,
    /// Available frequencies, ascending, in MHz.
    pub frequencies_mhz: Vec<u32>,
    /// The cf model for this micro-architecture.
    pub cf_model: CfModel,
    /// The power model.
    pub power: PowerModel,
}

impl MachineSpec {
    /// Builds the P-state table for this machine.
    ///
    /// # Panics
    ///
    /// Panics if the preset's frequency list is invalid — presets are
    /// validated by unit tests, so this indicates a bug in a custom
    /// spec.
    #[must_use]
    pub fn pstate_table(&self) -> PStateTable {
        PStateTable::from_frequencies(
            self.frequencies_mhz.iter().map(|&m| Frequency::mhz(m)),
            &self.cf_model,
        )
        .expect("machine preset has a valid frequency ladder")
    }

    /// Builds a [`Cpu`] at this machine's operating points.
    #[must_use]
    pub fn build_cpu(&self) -> Cpu {
        Cpu::new(self.pstate_table(), self.power)
    }

    /// The minimum-to-maximum frequency ratio.
    #[must_use]
    pub fn min_ratio(&self) -> f64 {
        let t = self.pstate_table();
        t.ratio(t.min_idx())
    }
}

/// The paper's main testbed: DELL Optiplex 755, Intel Core 2 Duo
/// 2.66 GHz, single-processor mode, ladder {1600, 1867, 2133, 2400,
/// 2667} MHz (the frequency axis of Figures 2–10).
///
/// Figure 1 shows exact `C/ratio` credit compensation at 2133 MHz
/// (13, 25, 38, … = credit/0.8), i.e. `cf ≈ 1` on this machine, so the
/// preset uses a near-ideal model with a 1% penalty.
#[must_use]
pub fn optiplex_755() -> MachineSpec {
    MachineSpec {
        name: "Intel Core 2 Duo E6750 (DELL Optiplex 755)".to_owned(),
        frequencies_mhz: vec![1600, 1867, 2133, 2400, 2667],
        cf_model: CfModel::microarch_matching(0.99, 1600.0 / 2667.0),
        power: PowerModel::new(45.0, 65.0),
    }
}

fn grid5000(name: &str, freqs: Vec<u32>, cf_min: f64, power: PowerModel) -> MachineSpec {
    let r_min = freqs[0] as f64 / *freqs.last().expect("non-empty ladder") as f64;
    MachineSpec {
        name: name.to_owned(),
        frequencies_mhz: freqs,
        cf_model: CfModel::microarch_matching(cf_min, r_min),
        power,
    }
}

/// Intel Xeon X3440 (Grid'5000): `cf_min = 0.94867` in Table 1.
#[must_use]
pub fn intel_xeon_x3440() -> MachineSpec {
    grid5000(
        "Intel Xeon X3440",
        vec![1197, 2533],
        0.94867,
        PowerModel::new(50.0, 95.0),
    )
}

/// Intel Xeon L5420 (Grid'5000): `cf_min = 0.99903` in Table 1.
#[must_use]
pub fn intel_xeon_l5420() -> MachineSpec {
    grid5000(
        "Intel Xeon L5420",
        vec![2000, 2500],
        0.99903,
        PowerModel::new(40.0, 50.0),
    )
}

/// Intel Xeon E5-2620 (Grid'5000): `cf_min = 0.80338` in Table 1 — the
/// strongest deviation from proportionality the paper observed.
#[must_use]
pub fn intel_xeon_e5_2620() -> MachineSpec {
    grid5000(
        "Intel Xeon E5-2620",
        vec![1200, 2000],
        0.80338,
        PowerModel::new(45.0, 95.0),
    )
}

/// AMD Opteron 6164 HE (Grid'5000): `cf_min = 0.99508` in Table 1.
#[must_use]
pub fn amd_opteron_6164_he() -> MachineSpec {
    grid5000(
        "AMD Opteron 6164 HE",
        vec![800, 1700],
        0.99508,
        PowerModel::new(50.0, 85.0),
    )
}

/// Intel Core i7-3770 (Table 1 and the HP Elite 8300 testbed of
/// Table 2): `cf_min = 0.86206`.
#[must_use]
pub fn intel_core_i7_3770() -> MachineSpec {
    grid5000(
        "Intel Core i7-3770 (HP Compaq Elite 8300)",
        vec![1600, 1800, 2000, 2200, 2400, 2600, 2800, 3000, 3200, 3400],
        0.86206,
        PowerModel::new(35.0, 77.0),
    )
}

/// All Table 1 machines in the paper's column order.
#[must_use]
pub fn table1_machines() -> Vec<MachineSpec> {
    vec![
        intel_xeon_x3440(),
        intel_xeon_l5420(),
        intel_xeon_e5_2620(),
        amd_opteron_6164_he(),
        intel_core_i7_3770(),
    ]
}

/// The `cf_min` values printed in Table 1, same order as
/// [`table1_machines`].
pub const TABLE1_CF_MIN: [f64; 5] = [0.94867, 0.99903, 0.80338, 0.99508, 0.86206];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build() {
        for spec in table1_machines()
            .into_iter()
            .chain(std::iter::once(optiplex_755()))
        {
            let cpu = spec.build_cpu();
            assert!(
                cpu.pstates().len() >= 2,
                "{} needs >= 2 p-states",
                spec.name
            );
            assert!((cpu.pstates().cf(cpu.pstates().max_idx()) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn presets_embed_table1_cf_min() {
        for (spec, expected) in table1_machines().iter().zip(TABLE1_CF_MIN) {
            let t = spec.pstate_table();
            let got = t.cf(t.min_idx());
            assert!(
                (got - expected).abs() < 1e-4,
                "{}: cf_min {got} != {expected}",
                spec.name
            );
        }
    }

    #[test]
    fn optiplex_ladder_matches_figures() {
        let spec = optiplex_755();
        assert_eq!(spec.frequencies_mhz, vec![1600, 1867, 2133, 2400, 2667]);
        // cf ≈ 1 so Figure 1's credits are C/ratio to within a credit point.
        let t = spec.pstate_table();
        assert!(t.cf(t.min_idx()) > 0.98);
    }

    #[test]
    fn e5_2620_is_least_proportional() {
        let cfs: Vec<f64> = table1_machines()
            .iter()
            .map(|s| {
                let t = s.pstate_table();
                t.cf(t.min_idx())
            })
            .collect();
        let min = cfs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((min - 0.80338).abs() < 1e-4);
    }
}
