//! Multi-core topology and DVFS domains.
//!
//! The paper's closing perspective ("we plan to extend our scheduler
//! and take into account … multi-core, per-socket DVFS, and per-core
//! DVFS") is implemented here: a host may have several cores, and
//! frequency is set per *DVFS domain* — globally, per socket, or per
//! core. The multi-core experiments in `experiments::multicore` build
//! on this module.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cpu::Cpu;
use crate::machines::MachineSpec;
use crate::pstate::PStateIdx;

/// Identifies one core of a multi-core host.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Identifies a frequency domain (a set of cores that must share one
/// P-state).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DomainId(pub usize);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dvfs-domain{}", self.0)
    }
}

/// How frequency domains map onto cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DvfsGranularity {
    /// One frequency for the whole machine (the paper's evaluated
    /// configuration: "a single processor mode").
    Global,
    /// One frequency per socket.
    PerSocket,
    /// One frequency per core (the finest-grained perspective).
    PerCore,
}

/// Physical layout of a host.
///
/// # Example
///
/// ```
/// use cpumodel::topology::{DvfsGranularity, Topology};
/// let t = Topology::new(2, 4, DvfsGranularity::PerSocket);
/// assert_eq!(t.n_cores(), 8);
/// assert_eq!(t.n_domains(), 2);
/// assert_eq!(t.domain_of(cpumodel::topology::CoreId(5)).0, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    sockets: usize,
    cores_per_socket: usize,
    granularity: DvfsGranularity,
}

impl Topology {
    /// Creates a topology.
    ///
    /// # Panics
    ///
    /// Panics if `sockets` or `cores_per_socket` is zero.
    #[must_use]
    pub fn new(sockets: usize, cores_per_socket: usize, granularity: DvfsGranularity) -> Self {
        assert!(sockets > 0, "at least one socket");
        assert!(cores_per_socket > 0, "at least one core per socket");
        Topology {
            sockets,
            cores_per_socket,
            granularity,
        }
    }

    /// A single-core, single-domain host — the paper's testbed shape.
    #[must_use]
    pub fn single_core() -> Self {
        Topology::new(1, 1, DvfsGranularity::Global)
    }

    /// Total number of cores.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Number of independent frequency domains.
    #[must_use]
    pub fn n_domains(&self) -> usize {
        match self.granularity {
            DvfsGranularity::Global => 1,
            DvfsGranularity::PerSocket => self.sockets,
            DvfsGranularity::PerCore => self.n_cores(),
        }
    }

    /// The DVFS granularity.
    #[must_use]
    pub fn granularity(&self) -> DvfsGranularity {
        self.granularity
    }

    /// The domain a core belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn domain_of(&self, core: CoreId) -> DomainId {
        assert!(core.0 < self.n_cores(), "core {core} out of range");
        match self.granularity {
            DvfsGranularity::Global => DomainId(0),
            DvfsGranularity::PerSocket => DomainId(core.0 / self.cores_per_socket),
            DvfsGranularity::PerCore => DomainId(core.0),
        }
    }

    /// The cores belonging to `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is out of range.
    #[must_use]
    pub fn cores_in(&self, domain: DomainId) -> Vec<CoreId> {
        assert!(domain.0 < self.n_domains(), "domain {domain} out of range");
        (0..self.n_cores())
            .map(CoreId)
            .filter(|&c| self.domain_of(c) == domain)
            .collect()
    }
}

/// A multi-core package: one [`Cpu`] per core, with P-state changes
/// applied per DVFS domain.
#[derive(Debug, Clone)]
pub struct CpuPackage {
    topology: Topology,
    cores: Vec<Cpu>,
}

impl CpuPackage {
    /// Builds a package of identical cores from a machine spec.
    #[must_use]
    pub fn new(spec: &MachineSpec, topology: Topology) -> Self {
        let cores = (0..topology.n_cores()).map(|_| spec.build_cpu()).collect();
        CpuPackage { topology, cores }
    }

    /// The topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn core(&self, core: CoreId) -> &Cpu {
        &self.cores[core.0]
    }

    /// Mutable access to one core (for accounting).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_mut(&mut self, core: CoreId) -> &mut Cpu {
        &mut self.cores[core.0]
    }

    /// Iterates over `(CoreId, &Cpu)`.
    pub fn iter(&self) -> impl Iterator<Item = (CoreId, &Cpu)> {
        self.cores.iter().enumerate().map(|(i, c)| (CoreId(i), c))
    }

    /// Sets the P-state of every core in `domain`.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`](crate::CpuError) if `idx` is invalid;
    /// cores before the failing one keep the new state (the error is
    /// only possible with an index invalid for *all* cores, as cores
    /// are identical).
    pub fn set_domain_pstate(
        &mut self,
        domain: DomainId,
        idx: PStateIdx,
    ) -> Result<(), crate::CpuError> {
        for core in self.topology.cores_in(domain) {
            self.cores[core.0].set_pstate(idx)?;
        }
        Ok(())
    }

    /// Total energy across all cores, in joules.
    #[must_use]
    pub fn total_joules(&self) -> f64 {
        self.cores.iter().map(|c| c.energy().joules()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    #[test]
    fn domain_mapping_global() {
        let t = Topology::new(2, 2, DvfsGranularity::Global);
        assert_eq!(t.n_domains(), 1);
        for c in 0..4 {
            assert_eq!(t.domain_of(CoreId(c)), DomainId(0));
        }
        assert_eq!(t.cores_in(DomainId(0)).len(), 4);
    }

    #[test]
    fn domain_mapping_per_socket() {
        let t = Topology::new(2, 3, DvfsGranularity::PerSocket);
        assert_eq!(t.n_domains(), 2);
        assert_eq!(t.domain_of(CoreId(2)), DomainId(0));
        assert_eq!(t.domain_of(CoreId(3)), DomainId(1));
        assert_eq!(
            t.cores_in(DomainId(1)),
            vec![CoreId(3), CoreId(4), CoreId(5)]
        );
    }

    #[test]
    fn domain_mapping_per_core() {
        let t = Topology::new(1, 4, DvfsGranularity::PerCore);
        assert_eq!(t.n_domains(), 4);
        assert_eq!(t.domain_of(CoreId(3)), DomainId(3));
        assert_eq!(t.cores_in(DomainId(2)), vec![CoreId(2)]);
    }

    #[test]
    fn single_core_shape() {
        let t = Topology::single_core();
        assert_eq!(t.n_cores(), 1);
        assert_eq!(t.n_domains(), 1);
    }

    #[test]
    fn package_sets_pstate_per_domain() {
        let spec = machines::optiplex_755();
        let topo = Topology::new(2, 2, DvfsGranularity::PerSocket);
        let mut pkg = CpuPackage::new(&spec, topo);
        let min = pkg.core(CoreId(0)).pstates().min_idx();
        pkg.set_domain_pstate(DomainId(0), min).unwrap();
        assert_eq!(pkg.core(CoreId(0)).pstate(), min);
        assert_eq!(pkg.core(CoreId(1)).pstate(), min);
        // Other socket untouched (still at max).
        let max = pkg.core(CoreId(2)).pstates().max_idx();
        assert_eq!(pkg.core(CoreId(2)).pstate(), max);
        assert_eq!(pkg.core(CoreId(3)).pstate(), max);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let _ = Topology::single_core().domain_of(CoreId(1));
    }
}
