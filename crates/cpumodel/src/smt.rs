//! Simultaneous multi-threading (hyper-threading) model — the first
//! technology factor named in the paper's perspectives ("we plan to
//! extend our scheduler and take into account other technology factors
//! such as hyper-threading, …", Section 7).
//!
//! SMT breaks the paper's Equation 1 in a way DVFS does not: two
//! logical CPUs share one physical core's execution resources, so the
//! *capacity of a logical CPU depends on what its sibling is doing*.
//! A core with both siblings busy delivers more aggregate throughput
//! than one thread alone (typically ~1.25× on Intel parts) but each
//! sibling individually runs much slower than a non-contended thread
//! (~0.625×). A credit booked as "20% of a logical CPU at maximum
//! frequency" is therefore ambiguous unless contention is accounted
//! for — exactly the same accounting gap the paper identifies for
//! frequency, one level down.
//!
//! [`SmtSpec`] captures the standard symmetric model: `n` hardware
//! threads per core and an *aggregate speedup* `s` when all threads
//! are busy. A thread running alone gets factor 1; with `k ≥ 2` busy
//! siblings each gets `s(k)/k`, with `s(·)` interpolated linearly
//! between 1 (one thread) and `s` (all threads).
//!
//! # Example
//!
//! ```
//! use cpumodel::smt::SmtSpec;
//!
//! let smt = SmtSpec::intel_typical(); // 2 threads, 1.25× aggregate
//! assert_eq!(smt.per_thread_factor(1), 1.0);
//! assert_eq!(smt.per_thread_factor(2), 0.625);
//! // Aggregate throughput still rises when the sibling wakes:
//! assert!(2.0 * smt.per_thread_factor(2) > smt.per_thread_factor(1));
//! ```

use std::fmt;

/// Error building an [`SmtSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum SmtSpecError {
    /// `threads` was zero.
    NoThreads,
    /// The aggregate speedup was not in `[1, threads]`.
    ///
    /// Below 1 the core would lose throughput by using a second
    /// thread (not SMT, that is interference worth disabling); above
    /// `threads` a sibling would be faster than a dedicated core.
    SpeedupOutOfRange {
        /// The rejected speedup.
        speedup: f64,
        /// The thread count it must not exceed.
        threads: usize,
    },
}

impl fmt::Display for SmtSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmtSpecError::NoThreads => write!(f, "smt spec needs at least one thread"),
            SmtSpecError::SpeedupOutOfRange { speedup, threads } => write!(
                f,
                "aggregate speedup {speedup} outside [1, {threads}] for {threads} threads"
            ),
        }
    }
}

impl std::error::Error for SmtSpecError {}

/// The symmetric SMT capacity model for one physical core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmtSpec {
    threads: usize,
    aggregate_speedup: f64,
}

impl SmtSpec {
    /// Builds a spec with `threads` hardware threads per core and the
    /// given aggregate speedup when all of them are busy.
    ///
    /// # Errors
    ///
    /// Returns [`SmtSpecError`] if `threads` is zero or the speedup
    /// lies outside `[1, threads]`.
    pub fn new(threads: usize, aggregate_speedup: f64) -> Result<Self, SmtSpecError> {
        if threads == 0 {
            return Err(SmtSpecError::NoThreads);
        }
        if !(1.0..=threads as f64).contains(&aggregate_speedup) {
            return Err(SmtSpecError::SpeedupOutOfRange {
                speedup: aggregate_speedup,
                threads,
            });
        }
        Ok(SmtSpec {
            threads,
            aggregate_speedup,
        })
    }

    /// The common Intel configuration: 2 threads per core, 1.25×
    /// aggregate throughput with both busy.
    #[must_use]
    pub fn intel_typical() -> Self {
        SmtSpec {
            threads: 2,
            aggregate_speedup: 1.25,
        }
    }

    /// SMT disabled: one thread per core, factor always 1.
    #[must_use]
    pub fn off() -> Self {
        SmtSpec {
            threads: 1,
            aggregate_speedup: 1.0,
        }
    }

    /// Hardware threads per core.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Aggregate core speedup with every thread busy.
    #[must_use]
    pub fn aggregate_speedup(&self) -> f64 {
        self.aggregate_speedup
    }

    /// Aggregate core throughput (relative to one non-contended
    /// thread) with `busy` threads running: linear interpolation from
    /// 1 at one thread to the full speedup at `threads`.
    ///
    /// `busy` above `threads` is clamped; zero busy threads yield zero
    /// aggregate throughput.
    #[must_use]
    pub fn aggregate_factor(&self, busy: usize) -> f64 {
        let busy = busy.min(self.threads);
        match busy {
            0 => 0.0,
            1 => 1.0,
            _ if self.threads == 1 => 1.0,
            _ => {
                let t = (busy - 1) as f64 / (self.threads - 1) as f64;
                1.0 + t * (self.aggregate_speedup - 1.0)
            }
        }
    }

    /// The capacity factor each busy thread receives when `busy`
    /// threads share the core (`aggregate_factor(busy) / busy`).
    ///
    /// `per_thread_factor(0)` is 1 by convention (an idle thread is
    /// not slowed); the value only multiplies actual busy time.
    #[must_use]
    pub fn per_thread_factor(&self, busy: usize) -> f64 {
        if busy <= 1 {
            1.0
        } else {
            let busy = busy.min(self.threads);
            self.aggregate_factor(busy) / busy as f64
        }
    }

    /// The Equation 4 denominator extension: the factor by which a
    /// VM's credit must additionally be divided so that its *delivered*
    /// capacity under the observed sibling contention matches its
    /// booking on a non-contended thread.
    ///
    /// `overlap` is the fraction of the VM's busy time during which
    /// all sibling threads were also busy (0 = always alone, 1 =
    /// always contended); values are clamped to `[0, 1]`.
    #[must_use]
    pub fn contention_factor(&self, overlap: f64) -> f64 {
        let overlap = overlap.clamp(0.0, 1.0);
        let contended = self.per_thread_factor(self.threads);
        1.0 - overlap + overlap * contended
    }
}

impl Default for SmtSpec {
    fn default() -> Self {
        SmtSpec::off()
    }
}

impl fmt::Display for SmtSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "smt({}t, {:.2}x)", self.threads, self.aggregate_speedup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_threads() {
        assert_eq!(SmtSpec::new(0, 1.0), Err(SmtSpecError::NoThreads));
    }

    #[test]
    fn rejects_speedup_below_one() {
        let err = SmtSpec::new(2, 0.9).unwrap_err();
        assert!(matches!(err, SmtSpecError::SpeedupOutOfRange { .. }));
    }

    #[test]
    fn rejects_speedup_above_thread_count() {
        let err = SmtSpec::new(2, 2.1).unwrap_err();
        assert!(matches!(err, SmtSpecError::SpeedupOutOfRange { .. }));
        // Exactly `threads` is legal: perfect scaling, factor 1 each.
        let perfect = SmtSpec::new(2, 2.0).unwrap();
        assert_eq!(perfect.per_thread_factor(2), 1.0);
    }

    #[test]
    fn off_is_identity() {
        let off = SmtSpec::off();
        for busy in 0..4 {
            assert_eq!(off.per_thread_factor(busy), 1.0);
        }
        assert_eq!(off.aggregate_factor(3), 1.0, "clamped to one thread");
    }

    #[test]
    fn intel_typical_values() {
        let smt = SmtSpec::intel_typical();
        assert_eq!(smt.aggregate_factor(2), 1.25);
        assert_eq!(smt.per_thread_factor(2), 0.625);
    }

    #[test]
    fn aggregate_interpolates_for_four_way_smt() {
        // POWER-style 4-way SMT, 1.6x aggregate at full occupancy.
        let smt = SmtSpec::new(4, 1.6).unwrap();
        assert_eq!(smt.aggregate_factor(1), 1.0);
        assert!((smt.aggregate_factor(2) - 1.2).abs() < 1e-12);
        assert!((smt.aggregate_factor(3) - 1.4).abs() < 1e-12);
        assert!((smt.aggregate_factor(4) - 1.6).abs() < 1e-12);
        // Per-thread factor strictly decreases with occupancy.
        let f: Vec<f64> = (1..=4).map(|b| smt.per_thread_factor(b)).collect();
        assert!(f.windows(2).all(|w| w[1] < w[0]), "{f:?}");
    }

    #[test]
    fn aggregate_never_decreases_with_occupancy() {
        let smt = SmtSpec::intel_typical();
        let a: Vec<f64> = (0..=2).map(|b| smt.aggregate_factor(b)).collect();
        assert!(a.windows(2).all(|w| w[1] >= w[0]), "{a:?}");
    }

    #[test]
    fn contention_factor_endpoints() {
        let smt = SmtSpec::intel_typical();
        assert_eq!(smt.contention_factor(0.0), 1.0);
        assert_eq!(smt.contention_factor(1.0), 0.625);
        // Midpoint is the mean of the endpoints (linear mix).
        assert!((smt.contention_factor(0.5) - 0.8125).abs() < 1e-12);
        // Out-of-range overlaps are clamped, not amplified.
        assert_eq!(smt.contention_factor(-3.0), 1.0);
        assert_eq!(smt.contention_factor(7.0), 0.625);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(SmtSpec::intel_typical().to_string(), "smt(2t, 1.25x)");
    }
}
