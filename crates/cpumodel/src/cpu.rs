//! A single simulated core.

use std::fmt;

use simkernel::SimDuration;

use crate::power::{EnergyMeter, PowerModel};
use crate::pstate::{PStateIdx, PStateTable};

/// Errors from [`Cpu`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// Requested P-state index does not exist in this CPU's table.
    UnknownPState {
        /// The invalid index.
        requested: PStateIdx,
        /// Number of states the table actually has.
        available: usize,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::UnknownPState {
                requested,
                available,
            } => {
                write!(
                    f,
                    "unknown p-state {requested} (table has {available} states)"
                )
            }
        }
    }
}

impl std::error::Error for CpuError {}

/// A single core with a DVFS ladder, a current operating point, and
/// power/energy accounting.
///
/// Work is measured in **mega-cycles of maximum-frequency-equivalent
/// work**: running for `Δt` at state `i` completes
/// `F_i · cf_i · Δt` mega-cycles (Equation 1 restated as a capacity).
///
/// # Example
///
/// ```
/// use cpumodel::machines;
/// use simkernel::SimDuration;
///
/// let mut cpu = machines::optiplex_755().build_cpu();
/// let max = cpu.pstates().max_idx();
/// let min = cpu.pstates().min_idx();
/// cpu.set_pstate(max)?;
/// let fast = cpu.work_capacity(SimDuration::from_secs(1));
/// cpu.set_pstate(min)?;
/// let slow = cpu.work_capacity(SimDuration::from_secs(1));
/// assert!(slow < fast);
/// # Ok::<(), cpumodel::CpuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    pstates: PStateTable,
    power: PowerModel,
    current: PStateIdx,
    transitions: u64,
    transition_latency: SimDuration,
    energy: EnergyMeter,
}

impl Cpu {
    /// Creates a CPU starting at the **maximum** frequency (matching
    /// Linux's boot state before a governor takes over).
    #[must_use]
    pub fn new(pstates: PStateTable, power: PowerModel) -> Self {
        let current = pstates.max_idx();
        Cpu {
            pstates,
            power,
            current,
            transitions: 0,
            transition_latency: SimDuration::from_micros(100),
            energy: EnergyMeter::new(),
        }
    }

    /// Overrides the (informational) frequency-transition latency.
    #[must_use]
    pub fn with_transition_latency(mut self, latency: SimDuration) -> Self {
        self.transition_latency = latency;
        self
    }

    /// The DVFS ladder.
    #[must_use]
    pub fn pstates(&self) -> &PStateTable {
        &self.pstates
    }

    /// The power model.
    #[must_use]
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The current P-state index.
    #[must_use]
    pub fn pstate(&self) -> PStateIdx {
        self.current
    }

    /// The current frequency ratio `F_cur / F_max`.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.pstates.ratio(self.current)
    }

    /// The `cf` factor at the current frequency.
    #[must_use]
    pub fn cf(&self) -> f64 {
        self.pstates.cf(self.current)
    }

    /// Number of completed frequency transitions.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The (informational) per-transition latency.
    #[must_use]
    pub fn transition_latency(&self) -> SimDuration {
        self.transition_latency
    }

    /// Switches to P-state `idx`. A no-op (not counted as a transition)
    /// when `idx` is already current.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError::UnknownPState`] when `idx` is out of range.
    pub fn set_pstate(&mut self, idx: PStateIdx) -> Result<(), CpuError> {
        if self.pstates.get(idx).is_none() {
            return Err(CpuError::UnknownPState {
                requested: idx,
                available: self.pstates.len(),
            });
        }
        if idx != self.current {
            self.current = idx;
            self.transitions += 1;
        }
        Ok(())
    }

    /// Mega-cycles of fmax-equivalent work this core can complete in
    /// `dt` at its current P-state: `F_cur · cf_cur · dt`.
    #[must_use]
    pub fn work_capacity(&self, dt: SimDuration) -> f64 {
        self.pstates.state(self.current).effective_mcps() * dt.as_secs_f64()
    }

    /// Mega-cycles the core would complete in `dt` at its **maximum**
    /// frequency — the denominator of every "absolute load" computation.
    #[must_use]
    pub fn work_capacity_at_max(&self, dt: SimDuration) -> f64 {
        self.pstates.max().effective_mcps() * dt.as_secs_f64()
    }

    /// Accounts `dt` of wall-clock time at the current state with the
    /// given busy fraction, integrating energy.
    ///
    /// # Panics
    ///
    /// Panics if `busy` is outside `[0, 1]`.
    pub fn account(&mut self, busy: f64, dt: SimDuration) {
        self.energy.advance(
            &self.power,
            &self.pstates,
            self.current,
            busy,
            dt.as_secs_f64(),
        );
    }

    /// The energy meter.
    #[must_use]
    pub fn energy(&self) -> &EnergyMeter {
        &self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cf::CfModel;
    use crate::freq::Frequency;

    fn cpu() -> Cpu {
        let t =
            PStateTable::from_frequencies([1600, 2133, 2667].map(Frequency::mhz), &CfModel::Ideal)
                .unwrap();
        Cpu::new(t, PowerModel::default())
    }

    #[test]
    fn starts_at_max() {
        let c = cpu();
        assert_eq!(c.pstate(), c.pstates().max_idx());
        assert!((c.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_pstate_counts_transitions() {
        let mut c = cpu();
        c.set_pstate(PStateIdx(0)).unwrap();
        c.set_pstate(PStateIdx(0)).unwrap(); // no-op
        c.set_pstate(PStateIdx(2)).unwrap();
        assert_eq!(c.transitions(), 2);
    }

    #[test]
    fn unknown_pstate_is_error() {
        let mut c = cpu();
        let err = c.set_pstate(PStateIdx(9)).unwrap_err();
        assert_eq!(
            err,
            CpuError::UnknownPState {
                requested: PStateIdx(9),
                available: 3
            }
        );
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn capacity_scales_with_frequency() {
        let mut c = cpu();
        let dt = SimDuration::from_secs(1);
        let at_max = c.work_capacity(dt);
        assert!((at_max - 2667.0).abs() < 1e-9);
        c.set_pstate(PStateIdx(0)).unwrap();
        assert!((c.work_capacity(dt) - 1600.0).abs() < 1e-9);
        assert!((c.work_capacity_at_max(dt) - 2667.0).abs() < 1e-9);
    }

    #[test]
    fn cf_reduces_capacity() {
        let t = PStateTable::from_frequencies(
            [1000, 2000].map(Frequency::mhz),
            &CfModel::microarch(0.0, 0.2),
        )
        .unwrap();
        let mut c = Cpu::new(t, PowerModel::default());
        c.set_pstate(PStateIdx(0)).unwrap();
        let dt = SimDuration::from_secs(1);
        assert!(c.work_capacity(dt) < 1000.0, "beta penalty bites");
    }

    #[test]
    fn energy_accumulates() {
        let mut c = cpu();
        c.account(1.0, SimDuration::from_secs(10));
        let at_max = c.energy().joules();
        assert!(at_max > 0.0);
        let mut c2 = cpu();
        c2.set_pstate(PStateIdx(0)).unwrap();
        c2.account(1.0, SimDuration::from_secs(10));
        assert!(c2.energy().joules() < at_max, "lower freq, lower energy");
    }
}
