//! Property tests on the processor substrate: the DVFS ladder, the
//! `cf` proportionality models, the SMT capacity model, and the power
//! model must satisfy their structural invariants for *any* legal
//! configuration, not just the paper's machines.

use cpumodel::smt::SmtSpec;
use cpumodel::{machines, CfModel, Frequency, PStateIdx, PStateTable};
use proptest::prelude::*;

/// Strategy: a strictly increasing ladder of 2..=8 frequencies in the
/// 800..4000 MHz range.
fn ladders() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::btree_set(800u32..4000, 2..=8).prop_map(|set| set.into_iter().collect())
}

fn table_from(mhz: &[u32]) -> PStateTable {
    PStateTable::from_frequencies(mhz.iter().map(|&m| Frequency::mhz(m)), &CfModel::Ideal)
        .expect("strictly increasing ladder")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Frequency ratios are in (0, 1], reach exactly 1 at fmax, and
    /// increase with the P-state index.
    #[test]
    fn ratios_are_normalised_and_monotone(mhz in ladders()) {
        let t = table_from(&mhz);
        let ratios: Vec<f64> = t.indices().map(|i| t.ratio(i)).collect();
        prop_assert!(ratios.iter().all(|&r| r > 0.0 && r <= 1.0));
        prop_assert!((ratios.last().expect("nonempty") - 1.0).abs() < 1e-12);
        prop_assert!(ratios.windows(2).all(|w| w[0] < w[1]));
    }

    /// `lowest_at_least` returns the first state meeting the request,
    /// clamped to fmax for impossible requests.
    #[test]
    fn lowest_at_least_is_correct(mhz in ladders(), want in 500u32..5000) {
        let t = table_from(&mhz);
        let idx = t.lowest_at_least(Frequency::mhz(want));
        let got = t.state(idx).frequency.as_mhz();
        if want <= *mhz.last().expect("nonempty") {
            prop_assert!(got >= want, "state {got} below request {want}");
            if idx > t.min_idx() {
                let below = t.state(PStateIdx(idx.0 - 1)).frequency.as_mhz();
                prop_assert!(below < want, "{below} also satisfies {want}; not lowest");
            }
        } else {
            prop_assert_eq!(idx, t.max_idx(), "impossible request clamps to fmax");
        }
    }

    /// The micro-architectural cf model: cf(1) = 1, cf ∈ (0, ·], and
    /// the execution-time factor 1/(r·cf) decreases as frequency rises
    /// (running faster never slows a job down).
    #[test]
    fn microarch_cf_is_sane(alpha in 0.0f64..0.6, beta in 0.0f64..0.39) {
        let m = CfModel::microarch(alpha, beta);
        prop_assert!((m.cf_at_ratio(1.0) - 1.0).abs() < 1e-12, "normalised at fmax");
        let mut prev_time = f64::INFINITY;
        for step in 1..=20 {
            let r = step as f64 / 20.0;
            let cf = m.cf_at_ratio(r);
            prop_assert!(cf > 0.0, "cf must stay positive, got {cf} at {r}");
            let time = m.time_factor(r);
            prop_assert!(
                time <= prev_time + 1e-9,
                "time factor must fall with frequency: {time} after {prev_time}"
            );
            prev_time = time;
        }
    }

    /// `microarch_matching` recovers the measured cf exactly at the
    /// anchoring ratio — the paper's Table 1 embedding round-trips.
    ///
    /// The embedding requires `cf > r` (β = r(1−cf)/(cf(1−r)) must stay
    /// below 1); every Table 1 measurement satisfies this by a wide
    /// margin, so the strategy enforces it too.
    #[test]
    fn microarch_matching_round_trips((r, cf) in (0.2f64..0.9).prop_flat_map(|r| {
        ((Just(r)), (r + 0.05).min(0.99)..=1.0)
    })) {
        let m = CfModel::microarch_matching(cf, r);
        let got = m.cf_at_ratio(r);
        prop_assert!((got - cf).abs() < 1e-6, "{got} vs {cf}");
        prop_assert!((m.cf_at_ratio(1.0) - 1.0).abs() < 1e-12);
    }

    /// SMT per-thread factor: 1 when alone, strictly below 1 under any
    /// genuine contention, never below `speedup / threads`, and the
    /// aggregate never exceeds the configured speedup.
    #[test]
    fn smt_factors_bounded(threads in 2usize..=8, extra in 0.0f64..1.0) {
        let speedup = 1.0 + extra * (threads as f64 - 1.0);
        let smt = SmtSpec::new(threads, speedup).expect("legal spec");
        let floor = speedup / threads as f64;
        for busy in 0..=threads + 2 {
            let per = smt.per_thread_factor(busy);
            let agg = smt.aggregate_factor(busy);
            prop_assert!(per <= 1.0 + 1e-12);
            prop_assert!(per >= floor - 1e-12, "per {per} under floor {floor}");
            prop_assert!(agg <= speedup + 1e-12, "aggregate {agg} over speedup {speedup}");
        }
        prop_assert_eq!(smt.per_thread_factor(1), 1.0);
    }

    /// The contention factor is a monotone interpolation between the
    /// contended per-thread factor and 1.
    #[test]
    fn smt_contention_factor_monotone(overlaps in proptest::collection::vec(0.0f64..=1.0, 2..10)) {
        let smt = SmtSpec::intel_typical();
        let mut sorted = overlaps.clone();
        sorted.sort_by(f64::total_cmp);
        let factors: Vec<f64> = sorted.iter().map(|&o| smt.contention_factor(o)).collect();
        prop_assert!(factors.windows(2).all(|w| w[1] <= w[0] + 1e-12), "{factors:?}");
        for f in factors {
            prop_assert!((0.625..=1.0).contains(&f));
        }
    }

    /// Power rises with both frequency and utilisation on every paper
    /// machine, and idle power equals the static floor.
    #[test]
    fn power_is_monotone_on_paper_machines(machine_idx in 0usize..6, busy in 0.0f64..=1.0) {
        let all = machines::table1_machines();
        let spec = if machine_idx < all.len() { &all[machine_idx] } else { &machines::optiplex_755() };
        let cpu = spec.build_cpu();
        let table = cpu.pstates();
        let model = cpu.power_model();
        let fmax = table.max();
        let mut prev = 0.0;
        for i in table.indices() {
            let p = model.power_scaled(table.state(i), fmax, busy);
            prop_assert!(p >= prev, "power must rise with frequency");
            prop_assert!(p >= model.power_scaled(table.state(i), fmax, 0.0) - 1e-12);
            prev = p;
        }
        let idle = model.power_scaled(table.state(table.min_idx()), fmax, 0.0);
        let idle_max = model.power_scaled(fmax, fmax, 0.0);
        prop_assert!((idle - idle_max).abs() < 1e-9, "idle power is the static floor");
    }

    /// Energy integration is additive: splitting a span into two
    /// advances yields the same joules as one advance.
    #[test]
    fn energy_meter_is_additive(busy in 0.0f64..=1.0, secs in 0.1f64..100.0, split in 0.1f64..0.9) {
        use cpumodel::EnergyMeter;
        let spec = machines::optiplex_755();
        let cpu = spec.build_cpu();
        let table = cpu.pstates();
        let model = cpu.power_model();
        let state = table.min_idx();

        let mut whole = EnergyMeter::new();
        whole.advance(model, table, state, busy, secs);

        let mut parts = EnergyMeter::new();
        parts.advance(model, table, state, busy, secs * split);
        parts.advance(model, table, state, busy, secs * (1.0 - split));

        prop_assert!((whole.joules() - parts.joules()).abs() < 1e-6 * whole.joules().max(1.0));
    }
}

/// The paper's Table 1 presets anchor their cf models on the measured
/// `cf_min`: re-deriving it from the preset must reproduce the paper's
/// number (regression companion to the proptests).
#[test]
fn table1_presets_reproduce_paper_cf_min() {
    let expected = [
        ("Intel Xeon X3440", 0.948_67),
        ("Intel Xeon L5420", 0.999_03),
        ("Intel Xeon E5-2620", 0.803_38),
        ("AMD Opteron 6164 HE", 0.995_08),
        ("Intel Core i7-3770", 0.862_06),
    ];
    for (spec, (name, cf_min)) in machines::table1_machines().iter().zip(expected) {
        let table = spec.pstate_table();
        let got = table.cf(table.min_idx());
        assert!(
            (got - cf_min).abs() < 5e-3,
            "{name}: preset cf_min {got} vs paper {cf_min}"
        );
    }
}
