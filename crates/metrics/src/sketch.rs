//! A mergeable streaming quantile sketch with bounded memory.
//!
//! [`Samples`](crate::histogram::Samples) stores every observation, so
//! its memory grows linearly with the run: fine for a single host's
//! response times, ruinous for a 100k-host fleet streaming one load
//! sample per host per control epoch. [`Sketch`] is the bounded
//! alternative: a DDSketch-style collection of logarithmic buckets
//! whose size depends only on the *dynamic range* of the data, never
//! on the sample count.
//!
//! # Accuracy contract
//!
//! A sketch built with relative accuracy `alpha` answers
//! [`Sketch::percentile`] within `alpha` **relative** error of the
//! value the store-all nearest-rank estimator would return: if the
//! true rank-`r` sample is `v`, the sketch returns a value in
//! `[v / (1 + alpha) … v · (1 + alpha)]` (mirrored for negative `v`).
//! `len`, `dropped`, `min` and `max` are exact; `mean` is within
//! `alpha` relative error per contributing sample.
//!
//! # Merge semantics
//!
//! Two sketches built with the same `alpha` merge by *integer* bucket
//! addition — no floating-point accumulation order is involved — so
//! merging is exactly associative and commutative, and a merged sketch
//! is **identical** (`==`) to a single sketch fed the concatenated
//! stream. That is the property the fleet layer leans on: per-shard
//! sketches merged in any order produce byte-identical artefacts
//! across `--jobs` values and shard counts.
//!
//! # Example
//!
//! ```
//! use metrics::sketch::Sketch;
//! let mut a = Sketch::new(0.01);
//! let mut b = Sketch::new(0.01);
//! for v in 1..=50 {
//!     a.push(f64::from(v));
//! }
//! for v in 51..=100 {
//!     b.push(f64::from(v));
//! }
//! a.merge(&b);
//! let p50 = a.percentile(50.0).unwrap();
//! assert!((p50 - 50.0).abs() <= 0.01 * 50.0);
//! assert_eq!(a.len(), 100);
//! assert_eq!(a.max(), Some(100.0));
//! ```

use std::collections::BTreeMap;

/// The default relative accuracy used by the fleet and campaign
/// layers: percentiles within 1% of the store-all answer.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// A mergeable DDSketch-style quantile sketch.
///
/// Mirrors the query surface of
/// [`Samples`](crate::histogram::Samples) (`len` / `dropped` / `mean`
/// / `min` / `max` / `percentile` / `summary`) so call sites can swap
/// the store-all accumulator for the bounded one without rewriting
/// their reporting. Equality is exact structural equality, which —
/// because the state is integer bucket counts plus exact min/max — is
/// the right notion for "same stream, any merge order".
#[derive(Debug, Clone, PartialEq)]
pub struct Sketch {
    /// Relative accuracy `alpha`; fixed at construction.
    alpha: f64,
    /// `ln(gamma)` with `gamma = (1 + alpha) / (1 - alpha)`, cached.
    gamma_ln: f64,
    /// Bucket key → count for positive samples. Key `k` covers the
    /// interval `(gamma^(k-1), gamma^k]`.
    pos: BTreeMap<i32, u64>,
    /// Bucket key → count for the magnitudes of negative samples.
    neg: BTreeMap<i32, u64>,
    /// Count of exact zeros (both signs normalised to `+0.0`).
    zero: u64,
    /// Total finite samples (`pos + neg + zero` counts).
    count: u64,
    /// Exact smallest finite sample (`+inf` when empty).
    min: f64,
    /// Exact largest finite sample (`-inf` when empty).
    max: f64,
    /// Non-finite pushes rejected, mirroring `Samples::dropped`.
    dropped: u64,
}

impl Sketch {
    /// An empty sketch with relative accuracy `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "sketch accuracy {alpha} out of (0,1)"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Sketch {
            alpha,
            gamma_ln: gamma.ln(),
            pos: BTreeMap::new(),
            neg: BTreeMap::new(),
            zero: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            dropped: 0,
        }
    }

    /// The relative accuracy this sketch was built with.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Adds one sample.
    ///
    /// Non-finite values (NaN, ±∞) are dropped and counted, exactly
    /// like [`Samples::add`](crate::histogram::Samples::add): one
    /// poisoned sample must not panic a campaign mid-run, and drops
    /// are surfaced by [`Sketch::summary`] so they never pass
    /// silently.
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            self.dropped += 1;
            return;
        }
        // Normalise -0.0 so min/max stay merge-order independent.
        let value = if value == 0.0 { 0.0 } else { value };
        if value == 0.0 {
            self.zero += 1;
        } else if value > 0.0 {
            *self.pos.entry(self.key(value)).or_insert(0) += 1;
        } else {
            *self.neg.entry(self.key(-value)).or_insert(0) += 1;
        }
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The log-bucket key of a positive magnitude.
    fn key(&self, magnitude: f64) -> i32 {
        // ceil(ln(v) / ln(gamma)): bucket k covers (gamma^(k-1),
        // gamma^k]. Keys stay well inside i32 for every finite f64
        // (|ln v| ≤ ~745, and gamma_ln ≥ alpha).
        (magnitude.ln() / self.gamma_ln).ceil() as i32
    }

    /// The representative value of bucket `k`: the midpoint
    /// `2·gamma^k / (gamma + 1)`, within `alpha` relative error of
    /// every sample the bucket absorbed.
    fn representative(&self, k: i32) -> f64 {
        let gamma = self.gamma_ln.exp();
        2.0 * (f64::from(k) * self.gamma_ln).exp() / (gamma + 1.0)
    }

    /// Number of finite samples pushed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Number of non-finite values rejected by [`Sketch::push`].
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.dropped as usize
    }

    /// `true` when no finite samples have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of live buckets — the memory footprint, proportional to
    /// the data's dynamic range and independent of sample count.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.pos.len() + self.neg.len() + usize::from(self.zero > 0)
    }

    /// Exact smallest sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the samples, within `alpha` relative error per sample
    /// (`None` when empty).
    ///
    /// Derived from the integer bucket counts in sorted key order at
    /// query time — never from a running float sum — so the result is
    /// identical regardless of push interleaving or merge history.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mut sum = 0.0;
        for (&k, &n) in self.neg.iter().rev() {
            sum -= self.representative(k) * n as f64;
        }
        for (&k, &n) in &self.pos {
            sum += self.representative(k) * n as f64;
        }
        Some(sum / self.count as f64)
    }

    /// The `p`-th percentile (nearest-rank method, the same rank rule
    /// as [`Samples::percentile`](crate::histogram::Samples::percentile)),
    /// within `alpha` relative error of the store-all answer; `None`
    /// when empty. The result is clamped to the exact `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0,100]");
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        // Walk buckets in ascending value order: negatives from the
        // largest magnitude down, then zeros, then positives up.
        let mut seen = 0u64;
        for (&k, &n) in self.neg.iter().rev() {
            seen += n;
            if seen >= rank {
                return Some((-self.representative(k)).clamp(self.min, self.max));
            }
        }
        seen += self.zero;
        if seen >= rank {
            return Some(0.0f64.clamp(self.min, self.max));
        }
        for (&k, &n) in &self.pos {
            seen += n;
            if seen >= rank {
                return Some(self.representative(k).clamp(self.min, self.max));
            }
        }
        // Counts always sum to `count`, so the walk cannot fall out.
        unreachable!("rank {rank} beyond {} samples", self.count)
    }

    /// Absorbs `other` into `self` by integer bucket addition.
    ///
    /// Exactly associative and commutative: any merge tree over the
    /// same set of pushes yields a sketch that compares `==` to a
    /// single sketch fed the concatenated stream.
    ///
    /// # Panics
    ///
    /// Panics if the sketches were built with different `alpha`s —
    /// their buckets would not be commensurable.
    pub fn merge(&mut self, other: &Sketch) {
        assert!(
            self.alpha == other.alpha,
            "cannot merge sketches with alpha {} and {}",
            self.alpha,
            other.alpha
        );
        for (&k, &n) in &other.pos {
            *self.pos.entry(k).or_insert(0) += n;
        }
        for (&k, &n) in &other.neg {
            *self.neg.entry(k).or_insert(0) += n;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.dropped += other.dropped;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Renders the same compact textual summary as
    /// [`Samples::summary`](crate::histogram::Samples::summary):
    /// `n / mean / p50 / p95 / max`, with a trailing `dropped=k`
    /// whenever non-finite values were rejected.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut text = match (
            self.mean(),
            self.percentile(50.0),
            self.percentile(95.0),
            self.max(),
        ) {
            (Some(mean), Some(p50), Some(p95), Some(max)) => format!(
                "n={} mean={mean:.3} p50={p50:.3} p95={p95:.3} max={max:.3}",
                self.len()
            ),
            _ => String::from("n=0"),
        };
        if self.dropped > 0 {
            text.push_str(&format!(" dropped={}", self.dropped));
        }
        text
    }
}

impl Extend<f64> for Sketch {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queries_are_none() {
        let s = Sketch::new(0.01);
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.summary(), "n=0");
        assert_eq!(s.bucket_count(), 0);
    }

    #[test]
    fn percentiles_track_nearest_rank_within_alpha() {
        let mut s = Sketch::new(0.01);
        s.extend((1..=1000).map(f64::from));
        for (p, truth) in [(10.0, 100.0), (50.0, 500.0), (95.0, 950.0)] {
            let got = s.percentile(p).unwrap();
            assert!(
                (got - truth).abs() <= 0.01 * truth + 1e-9,
                "p{p}: {got} vs {truth}"
            );
        }
        assert_eq!(s.percentile(100.0), Some(1000.0), "max is exact");
        assert_eq!(s.percentile(0.0), Some(1.0), "min is exact via clamp");
    }

    #[test]
    fn min_max_len_are_exact() {
        let mut s = Sketch::new(0.05);
        s.extend([3.5, -2.25, 0.0, 17.0, -0.0]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.min(), Some(-2.25));
        assert_eq!(s.max(), Some(17.0));
    }

    #[test]
    fn negative_and_zero_samples_are_ordered_correctly() {
        let mut s = Sketch::new(0.01);
        s.extend([-100.0, -10.0, 0.0, 10.0, 100.0]);
        let p50 = s.percentile(50.0).unwrap();
        assert_eq!(p50, 0.0, "median of the symmetric set is the zero");
        let p10 = s.percentile(10.0).unwrap();
        assert!((p10 + 100.0).abs() <= 1.0, "p10 {p10} near -100");
    }

    #[test]
    fn non_finite_dropped_and_counted_like_samples() {
        let mut s = Sketch::new(0.01);
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(f64::NEG_INFINITY);
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.summary(), "n=0 dropped=3");
        s.push(2.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.percentile(50.0), Some(2.0));
        assert!(s.summary().ends_with("dropped=3"), "{}", s.summary());
    }

    #[test]
    fn merge_equals_single_pass() {
        let mut whole = Sketch::new(0.02);
        let mut left = Sketch::new(0.02);
        let mut right = Sketch::new(0.02);
        for i in 0..500 {
            let v = (f64::from(i) * 0.37).sin() * 50.0;
            whole.push(v);
            if i % 2 == 0 {
                left.push(v);
            } else {
                right.push(v);
            }
        }
        left.push(f64::NAN);
        whole.push(f64::NAN);
        left.merge(&right);
        assert_eq!(left, whole, "merged == single-pass over concatenation");
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Sketch::new(0.01);
        let mut b = Sketch::new(0.01);
        a.extend([1.0, 2.0, 3.0]);
        b.extend([-4.0, 0.0, 5.0]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    #[should_panic(expected = "cannot merge sketches with alpha")]
    fn merge_rejects_mismatched_alpha() {
        let mut a = Sketch::new(0.01);
        a.merge(&Sketch::new(0.02));
    }

    #[test]
    fn bucket_count_is_bounded_by_dynamic_range_not_samples() {
        let mut s = Sketch::new(0.01);
        for i in 0..100_000 {
            s.push(1.0 + f64::from(i % 1000) / 100.0);
        }
        assert_eq!(s.len(), 100_000);
        assert!(
            s.bucket_count() < 200,
            "range [1,11) at alpha 0.01 needs ~{} buckets",
            s.bucket_count()
        );
    }

    #[test]
    fn summary_matches_samples_format() {
        let mut s = Sketch::new(0.001);
        s.extend((1..=100).map(f64::from));
        let text = s.summary();
        assert!(text.starts_with("n=100 mean="), "{text}");
        assert!(text.contains("p50="), "{text}");
        assert!(text.contains("max=100.000"), "{text}");
    }

    #[test]
    #[should_panic(expected = "out of [0,100]")]
    fn percentile_rejects_out_of_range() {
        let mut s = Sketch::new(0.01);
        s.push(1.0);
        let _ = s.percentile(101.0);
    }

    #[test]
    #[should_panic(expected = "out of (0,1)")]
    fn new_rejects_bad_alpha() {
        let _ = Sketch::new(1.5);
    }
}
