//! Summary statistics and reproduction-assertion helpers.

use crate::series::TimeSeries;

/// The paper's Table 2 degradation: `1 − T_performance / T_ondemand`,
/// in percent. Zero when ondemand is at least as fast.
///
/// # Panics
///
/// Panics if either time is not strictly positive and finite.
///
/// # Example
///
/// ```
/// use metrics::summary::degradation_pct;
/// // Hyper-V row of Table 2: 1601 s vs 3212 s → ≈ 50%.
/// let d = degradation_pct(1601.0, 3212.0);
/// assert!((d - 50.0).abs() < 1.0);
/// ```
#[must_use]
pub fn degradation_pct(t_performance: f64, t_ondemand: f64) -> f64 {
    assert!(
        t_performance.is_finite() && t_performance > 0.0,
        "invalid performance time {t_performance}"
    );
    assert!(
        t_ondemand.is_finite() && t_ondemand > 0.0,
        "invalid ondemand time {t_ondemand}"
    );
    (100.0 * (1.0 - t_performance / t_ondemand)).max(0.0)
}

/// Relative error `|got − want| / |want|`.
///
/// # Panics
///
/// Panics if `want` is zero.
#[must_use]
pub fn relative_error(got: f64, want: f64) -> f64 {
    assert!(want != 0.0, "relative error against zero");
    ((got - want) / want).abs()
}

/// `true` if `got` is within `tol_pct` percent of `want`.
#[must_use]
pub fn within_pct(got: f64, want: f64, tol_pct: f64) -> bool {
    if want == 0.0 {
        got.abs() <= tol_pct / 100.0
    } else {
        relative_error(got, want) * 100.0 <= tol_pct
    }
}

/// Phase means of a series over explicit `[start, end)` windows —
/// the standard reduction of a three-phase figure.
#[must_use]
pub fn phase_means(series: &TimeSeries, phases: &[(f64, f64)]) -> Vec<Option<f64>> {
    phases
        .iter()
        .map(|&(a, b)| series.mean_between(a, b))
        .collect()
}

/// Sample standard deviation of a series' values (0 for < 2 points).
#[must_use]
pub fn stddev(series: &TimeSeries) -> f64 {
    let n = series.len();
    if n < 2 {
        return 0.0;
    }
    let mean = series.mean();
    let var = series
        .points()
        .iter()
        .map(|&(_, v)| (v - mean).powi(2))
        .sum::<f64>()
        / (n - 1) as f64;
    var.sqrt()
}

/// Pearson correlation of two equally-timed series (`None` if lengths
/// differ, fewer than 2 points, or either side is constant).
#[must_use]
pub fn correlation(a: &TimeSeries, b: &TimeSeries) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let ma = a.mean();
    let mb = b.mean();
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&(_, x), &(_, y)) in a.points().iter().zip(b.points()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_degradations() {
        // The three fix-credit columns of Table 2.
        assert!((degradation_pct(1601.0, 3212.0) - 50.2).abs() < 0.5); // Hyper-V
        assert!((degradation_pct(1550.0, 2132.0) - 27.3).abs() < 0.5); // VMware
        assert!((degradation_pct(1559.0, 2599.0) - 40.0).abs() < 0.5); // Xen/credit
        assert_eq!(degradation_pct(1559.0, 1560.0).round(), 0.0); // Xen/PAS
    }

    #[test]
    fn degradation_clamps_at_zero() {
        assert_eq!(
            degradation_pct(100.0, 90.0),
            0.0,
            "speedups are not degradation"
        );
    }

    #[test]
    fn tolerance_helpers() {
        assert!(within_pct(102.0, 100.0, 5.0));
        assert!(!within_pct(110.0, 100.0, 5.0));
        assert!(within_pct(0.0, 0.0, 1.0));
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn phase_means_reduce_figures() {
        let s = TimeSeries::from_points(
            "load",
            (0..30)
                .map(|i| {
                    (
                        i as f64,
                        if i < 10 {
                            0.0
                        } else if i < 20 {
                            35.0
                        } else {
                            20.0
                        },
                    )
                })
                .collect(),
        );
        let means = phase_means(&s, &[(0.0, 10.0), (10.0, 20.0), (20.0, 30.0)]);
        assert_eq!(means, vec![Some(0.0), Some(35.0), Some(20.0)]);
    }

    #[test]
    fn stddev_and_correlation() {
        let a = TimeSeries::from_points("a", vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        let b = TimeSeries::from_points("b", vec![(0.0, 2.0), (1.0, 4.0), (2.0, 6.0)]);
        assert!((stddev(&a) - 1.0).abs() < 1e-12);
        let c = correlation(&a, &b).unwrap();
        assert!((c - 1.0).abs() < 1e-9, "perfectly correlated");
        let flat = TimeSeries::from_points("f", vec![(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]);
        assert_eq!(correlation(&a, &flat), None);
    }

    #[test]
    #[should_panic(expected = "invalid performance time")]
    fn degradation_validates() {
        let _ = degradation_pct(0.0, 10.0);
    }
}
