//! Wall-clock self-profiling: phase spans and a counter registry.
//!
//! The simulator's artefacts are byte-identical across `--jobs` and
//! shard counts, so wall-clock timings can never appear in them. This
//! module is the escape hatch: a [`Profiler`] collects named spans
//! (elapsed milliseconds per phase — parse, simulate, reduce, render)
//! and named counters (events recorded, events dropped, runs
//! executed), and renders them as a [`ProfileReport`] with schema
//! `pas-repro-profile/v1`. The report is written to a separate
//! `<name>-profile.json` file next to the deterministic artefacts, and
//! every byte-identity test excludes `-profile.json` files from its
//! comparisons.
//!
//! Spans with the same name accumulate (per-run timings under a
//! shared label sum up); counters add. Registration order is
//! first-touch, so a serial profiler produces a stable report layout.

use std::time::Instant;

use serde::Serialize;

/// Schema identifier written into every profile report.
pub const SCHEMA: &str = "pas-repro-profile/v1";

/// One named wall-clock span, in milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpanRecord {
    /// Phase name, e.g. `"simulate"`.
    pub name: String,
    /// Total elapsed wall-clock milliseconds accumulated under this
    /// name.
    pub ms: f64,
}

/// One named counter.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterRecord {
    /// Counter name, e.g. `"trace_events"`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// The self-profile of one CLI invocation: schema tag, phase spans
/// and counters, serializable with [`crate::export::to_json`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProfileReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Phase spans in first-touch order.
    pub spans: Vec<SpanRecord>,
    /// Counters in first-touch order.
    pub counters: Vec<CounterRecord>,
}

/// Collects spans and counters; see the [module docs](self).
///
/// # Example
///
/// ```
/// use metrics::profile::Profiler;
/// let mut p = Profiler::new();
/// let answer = p.span("work", || 6 * 7);
/// p.count("answers", 1);
/// let report = p.report();
/// assert_eq!(answer, 42);
/// assert_eq!(report.schema, metrics::profile::SCHEMA);
/// assert_eq!(report.spans[0].name, "work");
/// assert_eq!(report.counters[0].value, 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Profiler {
    spans: Vec<SpanRecord>,
    counters: Vec<CounterRecord>,
}

impl Profiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Times `f` with a monotonic clock and accumulates the elapsed
    /// milliseconds under `name`, returning `f`'s result.
    pub fn span<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add_span_ms(name, start.elapsed().as_secs_f64() * 1e3);
        out
    }

    /// Accumulates an externally measured duration (milliseconds)
    /// under `name` — for spans timed inside worker closures where the
    /// profiler itself cannot travel.
    pub fn add_span_ms(&mut self, name: &str, ms: f64) {
        if let Some(s) = self.spans.iter_mut().find(|s| s.name == name) {
            s.ms += ms;
        } else {
            self.spans.push(SpanRecord {
                name: name.to_owned(),
                ms,
            });
        }
    }

    /// Adds `n` to the counter `name` (registering it at zero first).
    pub fn count(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.iter_mut().find(|c| c.name == name) {
            c.value += n;
        } else {
            self.counters.push(CounterRecord {
                name: name.to_owned(),
                value: n,
            });
        }
    }

    /// Renders the accumulated spans and counters as a report.
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            schema: SCHEMA.to_owned(),
            spans: self.spans.clone(),
            counters: self.counters.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_under_one_name() {
        let mut p = Profiler::new();
        p.add_span_ms("simulate", 10.0);
        p.add_span_ms("simulate", 5.0);
        p.add_span_ms("report", 1.0);
        let r = p.report();
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.spans[0].name, "simulate");
        assert!((r.spans[0].ms - 15.0).abs() < 1e-12);
        assert_eq!(r.spans[1].name, "report");
    }

    #[test]
    fn counters_add_and_keep_first_touch_order() {
        let mut p = Profiler::new();
        p.count("events", 3);
        p.count("dropped", 0);
        p.count("events", 2);
        let r = p.report();
        assert_eq!(r.counters.len(), 2);
        assert_eq!(r.counters[0].name, "events");
        assert_eq!(r.counters[0].value, 5);
        assert_eq!(r.counters[1].value, 0);
    }

    #[test]
    fn span_times_and_returns_the_closure_result() {
        let mut p = Profiler::new();
        let v = p.span("work", || 41 + 1);
        assert_eq!(v, 42);
        let r = p.report();
        assert_eq!(r.spans.len(), 1);
        assert!(r.spans[0].ms >= 0.0);
    }

    #[test]
    fn report_serializes_with_schema_tag() {
        let mut p = Profiler::new();
        p.add_span_ms("simulate", 1.5);
        let json = crate::export::to_json(&p.report()).expect("serializes");
        assert!(json.contains("pas-repro-profile/v1"));
        assert!(json.contains("simulate"));
    }
}
