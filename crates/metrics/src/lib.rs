//! Telemetry: time series, summaries, export and terminal plots.
//!
//! The experiments crate converts host snapshots into named
//! [`TimeSeries`], then uses:
//!
//! * [`summary`] — phase means, degradation percentages and the
//!   tolerance helpers the reproduction assertions are written with,
//! * [`export`] — CSV and gnuplot-style `.dat` writers (the artefacts
//!   recorded next to `EXPERIMENTS.md`) and JSON via serde,
//! * [`ascii`] — a quick terminal chart so `repro fig9` shows the
//!   figure's shape without leaving the shell,
//! * [`histogram`] — order statistics for tail-sensitive metrics
//!   (response times),
//! * [`stats`] — replication statistics (mean / stddev / Student-t 95%
//!   CI / interpolated percentiles) for the campaign subsystem's
//!   multi-seed design points,
//! * [`sketch`] — a mergeable DDSketch-style quantile sketch: the
//!   bounded-memory counterpart to [`histogram`] that fleet-scale runs
//!   stream per-host samples through, with exactly associative merges
//!   so sharded results stay byte-identical,
//! * [`profile`] — a wall-clock self-profiling side-channel (phase
//!   spans + named counters) kept strictly out of the deterministic
//!   artefacts: it is written to its own `-profile.json` file so
//!   byte-identity comparisons never see host-dependent timings.

#![deny(missing_docs)]

pub mod ascii;
pub mod export;
pub mod histogram;
pub mod profile;
mod series;
pub mod sketch;
pub mod stats;
pub mod summary;

pub use series::TimeSeries;
