//! Terminal charts.
//!
//! `repro fig9` prints the figure's shape straight into the shell; the
//! renderer is intentionally simple (one character column per time
//! bucket, rows top-down from the maximum).

use crate::series::TimeSeries;

/// Renders one series as a fixed-size character chart with an axis
/// label gutter.
///
/// # Example
///
/// ```
/// use metrics::{ascii, TimeSeries};
/// let s = TimeSeries::from_points("x", (0..100).map(|i| (i as f64, i as f64)).collect());
/// let chart = ascii::chart(&s, 40, 10);
/// assert!(chart.contains('*'));
/// assert!(chart.lines().count() >= 10);
/// ```
#[must_use]
pub fn chart(series: &TimeSeries, width: usize, height: usize) -> String {
    chart_many(&[series], width, height)
}

/// Renders several series on shared axes; series are drawn with the
/// glyphs `*`, `+`, `o`, `x`, `#` in order.
#[must_use]
pub fn chart_many(series: &[&TimeSeries], width: usize, height: usize) -> String {
    let width = width.max(10);
    let height = height.max(4);
    let glyphs = ['*', '+', 'o', 'x', '#'];

    let (mut tmin, mut tmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut vmin, mut vmax) = (0.0f64, f64::NEG_INFINITY);
    for s in series {
        for &(t, v) in s.points() {
            tmin = tmin.min(t);
            tmax = tmax.max(t);
            vmin = vmin.min(v);
            vmax = vmax.max(v);
        }
    }
    if !tmin.is_finite() || tmax <= tmin {
        return String::from("(no data)\n");
    }
    if vmax <= vmin {
        vmax = vmin + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for &(t, v) in s.points() {
            let col = (((t - tmin) / (tmax - tmin)) * (width - 1) as f64).round() as usize;
            let row_f = ((v - vmin) / (vmax - vmin)) * (height - 1) as f64;
            let row = height - 1 - row_f.round().min((height - 1) as f64) as usize;
            let cell = &mut grid[row][col.min(width - 1)];
            // Keep the first glyph on collision so overlapping series
            // stay distinguishable where they diverge.
            if *cell == ' ' {
                *cell = glyph;
            }
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{vmax:>8.1} |")
        } else if i == height - 1 {
            format!("{vmin:>8.1} |")
        } else {
            String::from("         |")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "         +{}\n          t: {:.0}s .. {:.0}s   ",
        "-".repeat(width),
        tmin,
        tmax
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("[{}] {}  ", glyphs[si % glyphs.len()], s.name()));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_shape() {
        let s = TimeSeries::from_points(
            "step",
            (0..100)
                .map(|i| (i as f64, if i < 50 { 10.0 } else { 90.0 }))
                .collect(),
        );
        let c = chart(&s, 50, 12);
        let lines: Vec<&str> = c.lines().collect();
        // High plateau appears near the top, low plateau near the bottom.
        assert!(lines[0].contains('*') || lines[1].contains('*'));
        assert!(lines[10].contains('*') || lines[11].contains('*'));
    }

    #[test]
    fn empty_series_says_so() {
        let s = TimeSeries::new("empty");
        assert_eq!(chart(&s, 40, 10), "(no data)\n");
    }

    #[test]
    fn multi_series_legend() {
        let a = TimeSeries::from_points("v20", vec![(0.0, 1.0), (1.0, 2.0)]);
        let b = TimeSeries::from_points("v70", vec![(0.0, 3.0), (1.0, 4.0)]);
        let c = chart_many(&[&a, &b], 30, 8);
        assert!(c.contains("[*] v20"));
        assert!(c.contains("[+] v70"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = TimeSeries::from_points("flat", vec![(0.0, 5.0), (10.0, 5.0)]);
        let c = chart(&s, 20, 6);
        assert!(c.contains('*'));
    }
}
