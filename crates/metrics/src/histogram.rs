//! A simple sample accumulator with percentile queries.
//!
//! Used for response-time and per-period load distributions, where a
//! mean hides exactly the tail the SLA cares about.

/// An unordered sample set with on-demand order statistics.
///
/// # Example
///
/// ```
/// use metrics::histogram::Samples;
/// let mut s = Samples::new();
/// for v in 1..=100 {
///     s.add(f64::from(v));
/// }
/// assert_eq!(s.percentile(50.0), Some(50.0));
/// assert_eq!(s.percentile(95.0), Some(95.0));
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(100.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
    dropped: usize,
}

impl Samples {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds one sample.
    ///
    /// Non-finite values (NaN, ±∞) are **dropped, not stored**: one
    /// poisoned sample must not panic a whole campaign mid-run. Drops
    /// are counted ([`Samples::dropped`]) and surfaced by
    /// [`Samples::summary`] so they never pass silently.
    pub fn add(&mut self, value: f64) {
        if !value.is_finite() {
            self.dropped += 1;
            return;
        }
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Number of non-finite values rejected by [`Samples::add`].
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// `true` when no samples have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean of the samples (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Smallest sample.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// The `p`-th percentile (nearest-rank method), `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0,100]");
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.values.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.values[rank.clamp(1, n) - 1])
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The `p`-th percentile by linear interpolation between closest
    /// ranks (the `p/100 · (n-1)` definition, numpy's default), `None`
    /// when empty.
    ///
    /// Unlike [`Samples::percentile`], which snaps to an observed
    /// sample, this variant interpolates between the two samples
    /// bracketing the fractional rank — the estimator the campaign
    /// statistics engine uses, where replica counts are small and
    /// nearest-rank would quantise the tail hard.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile_interpolated(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0,100]");
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.values.len();
        let rank = (p / 100.0) * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            return Some(self.values[lo]);
        }
        let frac = rank - lo as f64;
        Some(self.values[lo] + (self.values[hi] - self.values[lo]) * frac)
    }

    /// Renders a compact textual summary (`n / mean / p50 / p95 / max`),
    /// with a trailing `dropped=k` whenever non-finite values were
    /// rejected.
    pub fn summary(&mut self) -> String {
        let mut text = match (
            self.mean(),
            self.percentile(50.0),
            self.percentile(95.0),
            self.max(),
        ) {
            (Some(mean), Some(p50), Some(p95), Some(max)) => format!(
                "n={} mean={mean:.3} p50={p50:.3} p95={p95:.3} max={max:.3}",
                self.len()
            ),
            _ => String::from("n=0"),
        };
        if self.dropped > 0 {
            text.push_str(&format!(" dropped={}", self.dropped));
        }
        text
    }
}

impl Extend<f64> for Samples {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queries_are_none() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.summary(), "n=0");
    }

    #[test]
    fn single_sample_everything_equal() {
        let mut s: Samples = std::iter::once(7.0).collect();
        assert_eq!(s.mean(), Some(7.0));
        assert_eq!(s.percentile(0.0), Some(7.0));
        assert_eq!(s.percentile(100.0), Some(7.0));
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut s: Samples = (1..=10).map(f64::from).collect();
        assert_eq!(s.percentile(10.0), Some(1.0));
        assert_eq!(s.percentile(50.0), Some(5.0));
        assert_eq!(s.percentile(90.0), Some(9.0));
        assert_eq!(s.percentile(100.0), Some(10.0));
    }

    #[test]
    fn unsorted_insertion_is_fine() {
        let mut s: Samples = [5.0, 1.0, 9.0, 3.0].into_iter().collect();
        assert_eq!(s.percentile(50.0), Some(3.0));
        s.add(2.0);
        assert_eq!(s.percentile(50.0), Some(3.0), "re-sorts after mutation");
    }

    #[test]
    fn summary_contains_fields() {
        let mut s: Samples = (1..=100).map(f64::from).collect();
        let text = s.summary();
        assert!(text.contains("n=100"));
        assert!(text.contains("p95=95"));
    }

    #[test]
    fn non_finite_dropped_and_counted() {
        let mut s = Samples::new();
        s.add(f64::NAN);
        s.add(f64::INFINITY);
        s.add(f64::NEG_INFINITY);
        assert!(s.is_empty(), "non-finite values are not stored");
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.summary(), "n=0 dropped=3");
        s.add(2.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.percentile(50.0), Some(2.0));
        assert!(s.summary().ends_with("dropped=3"), "{}", s.summary());
    }

    #[test]
    fn interpolated_percentile_interpolates_between_ranks() {
        let mut s: Samples = (1..=10).map(f64::from).collect();
        // rank = 0.5 * 9 = 4.5 → halfway between 5 and 6.
        assert_eq!(s.percentile_interpolated(50.0), Some(5.5));
        // rank = 0.25 * 9 = 2.25 → 3 + 0.25.
        assert!((s.percentile_interpolated(25.0).unwrap() - 3.25).abs() < 1e-12);
        assert_eq!(s.percentile_interpolated(0.0), Some(1.0));
        assert_eq!(s.percentile_interpolated(100.0), Some(10.0));
    }

    #[test]
    fn interpolated_percentile_single_sample() {
        let mut s: Samples = std::iter::once(7.0).collect();
        assert_eq!(s.percentile_interpolated(0.0), Some(7.0));
        assert_eq!(s.percentile_interpolated(50.0), Some(7.0));
        assert_eq!(s.percentile_interpolated(100.0), Some(7.0));
    }

    #[test]
    fn interpolated_percentile_duplicate_heavy() {
        // 9 copies of 1.0 and a single 100.0: the median must sit on
        // the plateau, and interpolation only kicks in at the tail.
        let mut s: Samples = std::iter::repeat_n(1.0, 9)
            .chain(std::iter::once(100.0))
            .collect();
        assert_eq!(s.percentile_interpolated(50.0), Some(1.0));
        assert_eq!(s.percentile_interpolated(80.0), Some(1.0));
        // rank = 0.95 * 9 = 8.55 → between 1.0 and 100.0.
        let p95 = s.percentile_interpolated(95.0).unwrap();
        assert!((p95 - (1.0 + 0.55 * 99.0)).abs() < 1e-9, "p95 {p95}");
        assert_eq!(s.percentile_interpolated(100.0), Some(100.0));
    }

    #[test]
    fn interpolated_percentile_empty_is_none() {
        assert_eq!(Samples::new().percentile_interpolated(50.0), None);
    }

    #[test]
    #[should_panic(expected = "out of [0,100]")]
    fn interpolated_percentile_rejects_out_of_range() {
        let mut s: Samples = std::iter::once(1.0).collect();
        let _ = s.percentile_interpolated(101.0);
    }
}
