//! Replication statistics: reducing a handful of seeded runs to a
//! defensible number.
//!
//! The campaign subsystem runs every design point under R independent
//! seeds; this module reduces those replicas to mean, sample standard
//! deviation, a 95% confidence interval (Student-t, exact small-R
//! critical values), and interpolated percentiles. Everything here is
//! pure arithmetic over a slice — deterministic by construction.

use serde::Serialize;

use crate::histogram::Samples;

/// Reduction of one scalar across replicated runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Number of replicas.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n-1` denominator; 0 when `n == 1`).
    pub stddev: f64,
    /// Half-width of the 95% confidence interval on the mean
    /// (Student-t with `n-1` degrees of freedom; 0 when `n == 1`).
    pub ci95_half: f64,
    /// Median (interpolated).
    pub p50: f64,
    /// 95th percentile (interpolated).
    pub p95: f64,
    /// 99th percentile (interpolated).
    pub p99: f64,
    /// Smallest replica.
    pub min: f64,
    /// Largest replica.
    pub max: f64,
    /// Non-finite replicas excluded from the reduction (see
    /// [`summarize`]).
    pub dropped: usize,
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
///
/// Exact table values for the small replica counts campaigns actually
/// use (df 1–30); beyond that, the `1.960 + 2.4/df` continuation is
/// within ~0.1% of the true quantile everywhere (and continuous at
/// the table boundary), converging to the normal 1.960.
///
/// # Panics
///
/// Panics if `df` is zero (one sample has no dispersion estimate).
#[must_use]
pub fn student_t95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    assert!(df > 0, "Student-t needs at least one degree of freedom");
    if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.960 + 2.4 / df as f64
    }
}

/// Reduces replicated samples to a [`Summary`] (`None` when no finite
/// value remains).
///
/// Non-finite replicas (a NaN latency from a degenerate run, say) are
/// excluded from every statistic rather than poisoning the reduction;
/// the count of exclusions is reported in [`Summary::dropped`].
///
/// # Example
///
/// ```
/// use metrics::stats::summarize;
/// let s = summarize(&[10.0, 12.0, 14.0]).unwrap();
/// assert_eq!(s.n, 3);
/// assert_eq!(s.mean, 12.0);
/// assert_eq!(s.stddev, 2.0);
/// // t(df=2) = 4.303: the CI is wide with three replicas.
/// assert!((s.ci95_half - 4.303 * 2.0 / 3f64.sqrt()).abs() < 1e-9);
/// assert_eq!(s.p50, 12.0);
/// assert_eq!(s.dropped, 0);
/// ```
#[must_use]
pub fn summarize(values: &[f64]) -> Option<Summary> {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let dropped = values.len() - finite.len();
    if finite.is_empty() {
        return None;
    }
    let n = finite.len();
    let mean = finite.iter().sum::<f64>() / n as f64;
    let stddev = if n > 1 {
        let ss: f64 = finite.iter().map(|v| (v - mean) * (v - mean)).sum();
        (ss / (n - 1) as f64).sqrt()
    } else {
        0.0
    };
    let ci95_half = if n > 1 {
        student_t95(n - 1) * stddev / (n as f64).sqrt()
    } else {
        0.0
    };
    let mut samples: Samples = finite.iter().copied().collect();
    Some(Summary {
        n,
        mean,
        stddev,
        ci95_half,
        p50: samples.percentile_interpolated(50.0).expect("non-empty"),
        p95: samples.percentile_interpolated(95.0).expect("non-empty"),
        p99: samples.percentile_interpolated(99.0).expect("non-empty"),
        min: samples.min().expect("non-empty"),
        max: samples.max().expect("non-empty"),
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert_eq!(summarize(&[]), None);
    }

    #[test]
    fn non_finite_replicas_are_dropped_not_fatal() {
        let s = summarize(&[10.0, f64::NAN, 14.0, f64::INFINITY]).unwrap();
        assert_eq!(s.n, 2);
        assert_eq!(s.dropped, 2);
        assert_eq!(s.mean, 12.0);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 14.0);
        // All-poisoned input reduces to nothing rather than panicking.
        assert_eq!(summarize(&[f64::NAN, f64::NEG_INFINITY]), None);
    }

    #[test]
    fn single_replica_has_no_dispersion() {
        let s = summarize(&[5.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95_half, 0.0);
        assert_eq!(s.p50, 5.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn t_table_matches_known_values() {
        assert_eq!(student_t95(1), 12.706);
        assert_eq!(student_t95(4), 2.776);
        assert_eq!(student_t95(30), 2.042);
        // Past the table: near the true quantiles (t(40) = 2.021,
        // t(60) = 2.000), no discontinuity at the boundary, and
        // monotonically decreasing toward the normal 1.960.
        assert!((student_t95(40) - 2.021).abs() < 0.002);
        assert!((student_t95(60) - 2.000).abs() < 0.001);
        assert!(student_t95(31) < student_t95(30));
        assert!(student_t95(31) > student_t95(32));
        assert!((student_t95(100_000) - 1.960).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least one degree of freedom")]
    fn zero_df_rejected() {
        let _ = student_t95(0);
    }

    #[test]
    fn ci_shrinks_with_replica_count() {
        // Same dispersion, more replicas → tighter interval.
        let few = summarize(&[1.0, 3.0]).unwrap();
        let many = summarize(&[1.0, 3.0, 1.0, 3.0, 1.0, 3.0, 1.0, 3.0]).unwrap();
        assert!(many.ci95_half < few.ci95_half);
    }

    #[test]
    fn percentiles_are_interpolated() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.p50, 2.5);
    }

    #[test]
    fn summary_serializes_to_json() {
        let s = summarize(&[1.0, 2.0]).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"mean\":1.5"), "{json}");
    }
}
