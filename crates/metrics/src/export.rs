//! Exporters: CSV, gnuplot `.dat` and JSON.
//!
//! These write the machine-readable artefacts referenced from
//! `EXPERIMENTS.md`. Several series sharing a time axis are merged
//! column-wise; series with different time axes are exported as
//! separate blocks.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use serde::Serialize;

use crate::series::TimeSeries;

/// Renders series as CSV: a `t` column plus one column per series.
///
/// Rows are the union of all time stamps; missing values are empty
/// cells.
///
/// # Example
///
/// ```
/// use metrics::{export, TimeSeries};
/// let a = TimeSeries::from_points("a", vec![(0.0, 1.0)]);
/// let b = TimeSeries::from_points("b", vec![(0.0, 2.0)]);
/// let csv = export::to_csv(&[&a, &b]);
/// assert_eq!(csv.lines().next(), Some("t,a,b"));
/// assert_eq!(csv.lines().nth(1), Some("0,1,2"));
/// ```
#[must_use]
pub fn to_csv(series: &[&TimeSeries]) -> String {
    let mut times: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points().iter().map(|p| p.0))
        .collect();
    times.sort_by(f64::total_cmp);
    times.dedup();

    let mut out = String::new();
    out.push('t');
    for s in series {
        out.push(',');
        out.push_str(&csv_field(s.name()));
    }
    out.push('\n');
    for &t in &times {
        let _ = write!(out, "{}", trim_float(t));
        for s in series {
            out.push(',');
            if let Some(&(_, v)) = s.points().iter().find(|&&(pt, _)| pt == t) {
                let _ = write!(out, "{}", trim_float(v));
            }
        }
        out.push('\n');
    }
    out
}

/// Renders series as gnuplot-style data blocks: one indexed block per
/// series (`plot 'f.dat' index 0 ...`).
#[must_use]
pub fn to_gnuplot(series: &[&TimeSeries]) -> String {
    let mut out = String::new();
    for (i, s) in series.iter().enumerate() {
        let _ = writeln!(out, "# series {}: {}", i, s.name());
        for &(t, v) in s.points() {
            let _ = writeln!(out, "{} {}", trim_float(t), trim_float(v));
        }
        out.push('\n');
        out.push('\n');
    }
    out
}

/// Serializes any result value as pretty JSON.
///
/// # Errors
///
/// Returns a `serde_json` error if serialization fails (e.g. NaN in a
/// float field).
pub fn to_json<T: Serialize>(value: &T) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(value)
}

/// Writes a string artefact to disk, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifact(path: &Path, content: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, content)
}

/// Quotes a CSV field per RFC 4180 when (and only when) it needs it:
/// fields containing commas, double quotes, or line breaks are wrapped
/// in double quotes with embedded quotes doubled; everything else is
/// passed through unchanged.
///
/// # Example
///
/// ```
/// use metrics::export::csv_field;
/// assert_eq!(csv_field("plain"), "plain");
/// assert_eq!(csv_field("load, pct"), "\"load, pct\"");
/// assert_eq!(csv_field("the \"hot\" path"), "\"the \"\"hot\"\" path\"");
/// ```
#[must_use]
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Renders a float exactly: integral values (within `2^53`) print
/// without a decimal point, everything else uses Rust's shortest
/// round-trip formatting. The campaign artefacts and sweep labels all
/// render numbers through this one helper so they can never drift
/// apart.
///
/// # Example
///
/// ```
/// use metrics::export::exact_num;
/// assert_eq!(exact_num(42.0), "42");
/// assert_eq!(exact_num(0.1), "0.1");
/// ```
#[must_use]
pub fn exact_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn trim_float(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Quotes a JSON string per RFC 8259 — the JSONL counterpart of
/// [`csv_field`]: the result includes the surrounding double quotes,
/// with `"`, `\` and control characters escaped (the two-character
/// forms where they exist, `\u00XX` otherwise).
///
/// # Example
///
/// ```
/// use metrics::export::json_str;
/// assert_eq!(json_str("plain"), "\"plain\"");
/// assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
/// assert_eq!(json_str("line\nbreak"), "\"line\\nbreak\"");
/// ```
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One value in a [`JsonlWriter`] line.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (sequence numbers, counts).
    UInt(u64),
    /// A float, rendered through [`exact_num`] so integral values and
    /// shortest-round-trip decimals never drift between writers;
    /// non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// A string, escaped through [`json_str`].
    Str(String),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(u64::from(v))
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        v.map_or(JsonValue::Null, Into::into)
    }
}

impl JsonValue {
    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Num(v) if v.is_finite() => {
                let _ = write!(out, "{}", exact_num(*v));
            }
            JsonValue::Num(_) => out.push_str("null"),
            JsonValue::Str(s) => out.push_str(&json_str(s)),
        }
    }
}

/// A line-oriented JSON (JSONL) writer: each [`line`](JsonlWriter::line)
/// call appends one flat JSON object, one per output line, with the
/// fields in the given order. Strings go through [`json_str`] and
/// numbers through [`exact_num`], so the output is deterministic and
/// parseable by any RFC 8259 consumer. The trace subsystem streams its
/// event log through this; future artefacts share it.
///
/// # Example
///
/// ```
/// use metrics::export::JsonlWriter;
/// let mut w = JsonlWriter::new();
/// w.line(&[("event", "boot".into()), ("at_s", 0.5.into())]);
/// assert_eq!(w.as_str(), "{\"event\":\"boot\",\"at_s\":0.5}\n");
/// ```
#[derive(Debug, Default, Clone)]
pub struct JsonlWriter {
    buf: String,
    lines: usize,
}

impl JsonlWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        JsonlWriter::default()
    }

    /// Appends one JSON object line with the fields in order.
    pub fn line(&mut self, fields: &[(&str, JsonValue)]) {
        self.buf.push('{');
        for (i, (key, value)) in fields.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&json_str(key));
            self.buf.push(':');
            value.render_into(&mut self.buf);
        }
        self.buf.push_str("}\n");
        self.lines += 1;
    }

    /// Number of lines written so far.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// The output so far.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the writer, returning the full JSONL document.
    #[must_use]
    pub fn into_string(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_series() -> (TimeSeries, TimeSeries) {
        (
            TimeSeries::from_points("load", vec![(0.0, 10.0), (10.0, 20.5)]),
            TimeSeries::from_points("freq", vec![(0.0, 1600.0), (10.0, 2667.0)]),
        )
    }

    #[test]
    fn csv_merges_columns() {
        let (a, b) = two_series();
        let csv = to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,load,freq");
        assert_eq!(lines[1], "0,10,1600");
        assert_eq!(lines[2], "10,20.5000,2667");
    }

    #[test]
    fn csv_handles_missing_cells() {
        let a = TimeSeries::from_points("a", vec![(0.0, 1.0)]);
        let b = TimeSeries::from_points("b", vec![(5.0, 2.0)]);
        let csv = to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "0,1,");
        assert_eq!(lines[2], "5,,2");
    }

    #[test]
    fn csv_quotes_series_names_that_need_it() {
        let a = TimeSeries::from_points("load, pct", vec![(0.0, 1.0)]);
        let b = TimeSeries::from_points("the \"hot\" path", vec![(0.0, 2.0)]);
        let c = TimeSeries::from_points("plain", vec![(0.0, 3.0)]);
        let csv = to_csv(&[&a, &b, &c]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,\"load, pct\",\"the \"\"hot\"\" path\",plain");
        assert_eq!(lines[1], "0,1,2,3");
    }

    #[test]
    fn gnuplot_blocks() {
        let (a, b) = two_series();
        let g = to_gnuplot(&[&a, &b]);
        assert!(g.contains("# series 0: load"));
        assert!(g.contains("# series 1: freq"));
        assert!(g.contains("0 1600"));
    }

    #[test]
    fn json_round_trip() {
        let (a, _) = two_series();
        let j = to_json(&a).unwrap();
        let back: TimeSeries = serde_json::from_str(&j).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn json_str_escapes_every_control_character() {
        // RFC 8259 §7: all of U+0000..U+001F MUST be escaped. Sweep
        // the whole range rather than spot-checking.
        for code in 0u32..0x20 {
            let c = char::from_u32(code).expect("control chars are chars");
            let quoted = json_str(&format!("a{c}b"));
            assert!(
                !quoted.chars().any(|q| (q as u32) < 0x20),
                "U+{code:04X} leaked through unescaped: {quoted:?}"
            );
            let expected = match c {
                '\u{08}' => "\\b".to_owned(),
                '\t' => "\\t".to_owned(),
                '\n' => "\\n".to_owned(),
                '\u{0C}' => "\\f".to_owned(),
                '\r' => "\\r".to_owned(),
                _ => format!("\\u{code:04x}"),
            };
            assert_eq!(quoted, format!("\"a{expected}b\""), "U+{code:04X}");
            // And the escape round-trips through a real JSON parser.
            let back: String = serde_json::from_str(&quoted)
                .unwrap_or_else(|e| panic!("U+{code:04X} does not reparse: {e}"));
            assert_eq!(back, format!("a{c}b"), "U+{code:04X} round-trip");
        }
    }

    #[test]
    fn jsonl_lines_with_hostile_keys_and_values_reparse() {
        let hostile = "quote\" slash\\ nul\u{0}\ttab";
        let mut w = JsonlWriter::new();
        w.line(&[(hostile, hostile.into())]);
        let line = w.as_str().trim_end();
        let v: serde::Value = serde_json::from_str(line).expect("hostile line reparses");
        let map = v.as_map().expect("an object");
        assert_eq!(map[0].0, hostile);
        assert_eq!(map[0].1.as_str(), Some(hostile));
    }

    #[test]
    fn write_artifact_creates_dirs() {
        let dir = std::env::temp_dir().join("pas-metrics-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        write_artifact(&path, "t,a\n0,1\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "t,a\n0,1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
