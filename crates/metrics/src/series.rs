//! A named time series.

use serde::{Deserialize, Serialize};

/// A named series of `(t_secs, value)` points, ordered by time.
///
/// # Example
///
/// ```
/// use metrics::TimeSeries;
/// let s = TimeSeries::from_points("load", vec![(0.0, 10.0), (10.0, 30.0)]);
/// assert_eq!(s.len(), 2);
/// assert!((s.mean() - 20.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TimeSeries {
    name: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Builds a series from points, sorting them by time.
    #[must_use]
    pub fn from_points(name: impl Into<String>, mut points: Vec<(f64, f64)>) -> Self {
        points.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
        TimeSeries {
            name: name.into(),
            points,
        }
    }

    /// The series name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last point (series are
    /// time-ordered).
    pub fn push(&mut self, t: f64, value: f64) {
        if let Some(&(last_t, _)) = self.points.last() {
            assert!(t >= last_t, "non-monotonic time {t} after {last_t}");
        }
        self.points.push((t, value));
    }

    /// The points, time-ordered.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when there are no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of all values (0 for an empty series).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Mean of values with `t0 <= t < t1` (`None` if no point falls in
    /// the window).
    #[must_use]
    pub fn mean_between(&self, t0: f64, t1: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= t0 && t < t1)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Minimum value (`None` for an empty series).
    #[must_use]
    pub fn min_value(&self) -> Option<f64> {
        self.points.iter().map(|p| p.1).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.min(v),
            })
        })
    }

    /// Maximum value (`None` for an empty series).
    #[must_use]
    pub fn max_value(&self) -> Option<f64> {
        self.points.iter().map(|p| p.1).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    /// The value at the latest time `<= t` (step interpolation), or
    /// `None` before the first point.
    #[must_use]
    pub fn value_at(&self, t: f64) -> Option<f64> {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// Number of changes of value (useful for counting frequency
    /// transitions in governor stability comparisons).
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.points
            .windows(2)
            .filter(|w| (w[0].1 - w[1].1).abs() > 1e-12)
            .count()
    }

    /// A renamed copy.
    #[must_use]
    pub fn renamed(&self, name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            points: self.points.clone(),
        }
    }
}

impl Extend<(f64, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        TimeSeries::from_points("", iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> TimeSeries {
        TimeSeries::from_points("x", vec![(0.0, 1.0), (1.0, 3.0), (2.0, 3.0), (3.0, 5.0)])
    }

    #[test]
    fn stats() {
        let s = s();
        assert_eq!(s.len(), 4);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.min_value(), Some(1.0));
        assert_eq!(s.max_value(), Some(5.0));
    }

    #[test]
    fn windowed_mean() {
        let s = s();
        assert_eq!(s.mean_between(1.0, 3.0), Some(3.0));
        assert_eq!(s.mean_between(10.0, 20.0), None);
    }

    #[test]
    fn step_lookup() {
        let s = s();
        assert_eq!(s.value_at(-0.5), None);
        assert_eq!(s.value_at(0.0), Some(1.0));
        assert_eq!(s.value_at(1.5), Some(3.0));
        assert_eq!(s.value_at(99.0), Some(5.0));
    }

    #[test]
    fn transitions() {
        let s = s();
        assert_eq!(s.transition_count(), 2, "1→3, 3→3 (no), 3→5");
    }

    #[test]
    fn from_points_sorts() {
        let s = TimeSeries::from_points("y", vec![(2.0, 1.0), (0.0, 2.0)]);
        assert_eq!(s.points()[0], (0.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "non-monotonic")]
    fn push_rejects_time_travel() {
        let mut s = s();
        s.push(1.0, 0.0);
    }

    #[test]
    fn collect_and_extend() {
        let mut s: TimeSeries = vec![(0.0, 1.0)].into_iter().collect();
        s.extend(vec![(1.0, 2.0)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_series_edge_cases() {
        let s = TimeSeries::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min_value(), None);
        assert_eq!(s.value_at(0.0), None);
        assert_eq!(s.transition_count(), 0);
    }
}
