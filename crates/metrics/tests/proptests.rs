//! Property tests on the metrics substrate: series statistics, the
//! summary helpers and the histogram must agree with first-principles
//! recomputation on arbitrary data.

use metrics::histogram::Samples;
use metrics::{export, summary, TimeSeries};
use proptest::prelude::*;

fn points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.0f64..1000.0, -1e6f64..1e6), 1..50)
}

fn values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 1..100)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `from_points` sorts by time, and lookups respect the ordering.
    #[test]
    fn series_is_time_sorted(pts in points()) {
        let s = TimeSeries::from_points("s", pts);
        let ts: Vec<f64> = s.points().iter().map(|&(t, _)| t).collect();
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    /// The mean lies within [min, max] and matches a direct sum.
    #[test]
    fn series_mean_is_consistent(pts in points()) {
        let s = TimeSeries::from_points("s", pts.clone());
        let direct: f64 = pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len() as f64;
        prop_assert!((s.mean() - direct).abs() < 1e-6 * direct.abs().max(1.0));
        let min = s.min_value().expect("non-empty");
        let max = s.max_value().expect("non-empty");
        prop_assert!(min <= s.mean() + 1e-9 && s.mean() <= max + 1e-9);
    }

    /// `mean_between` over the full span equals the global mean, and a
    /// window covering nothing returns `None`.
    #[test]
    fn mean_between_windows(pts in points()) {
        let s = TimeSeries::from_points("s", pts);
        let (t0, _) = s.points()[0];
        let (t1, _) = *s.points().last().expect("non-empty");
        let full = s.mean_between(t0, t1 + 1.0).expect("covers all points");
        prop_assert!((full - s.mean()).abs() < 1e-9 * s.mean().abs().max(1.0));
        prop_assert!(s.mean_between(t1 + 10.0, t1 + 20.0).is_none());
    }

    /// Standard deviation is translation-invariant and zero for
    /// constant series.
    #[test]
    fn stddev_translation_invariant(vals in values(), shift in -1e3f64..1e3) {
        let a = TimeSeries::from_points(
            "a",
            vals.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect(),
        );
        let b = TimeSeries::from_points(
            "b",
            vals.iter().enumerate().map(|(i, &v)| (i as f64, v + shift)).collect(),
        );
        let scale = summary::stddev(&a).abs().max(1.0);
        prop_assert!((summary::stddev(&a) - summary::stddev(&b)).abs() < 1e-6 * scale);

        let c = TimeSeries::from_points("c", vec![(0.0, shift), (1.0, shift), (2.0, shift)]);
        prop_assert!(summary::stddev(&c).abs() < 1e-12);
    }

    /// A series correlates perfectly with itself and anti-correlates
    /// with its negation (when it varies at all).
    #[test]
    fn correlation_endpoints(vals in values()) {
        let varies = vals.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9);
        prop_assume!(varies && vals.len() >= 2);
        let a = TimeSeries::from_points(
            "a",
            vals.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect(),
        );
        let neg = TimeSeries::from_points(
            "neg",
            vals.iter().enumerate().map(|(i, &v)| (i as f64, -v)).collect(),
        );
        let self_r = summary::correlation(&a, &a).expect("varying series");
        prop_assert!((self_r - 1.0).abs() < 1e-6, "{self_r}");
        let anti_r = summary::correlation(&a, &neg).expect("varying series");
        prop_assert!((anti_r + 1.0).abs() < 1e-6, "{anti_r}");
    }

    /// Histogram percentiles are monotone in `p`, bracketed by
    /// min/max, and the median of a constant sample is that constant.
    #[test]
    fn histogram_percentiles_monotone(vals in values()) {
        let mut h = Samples::new();
        for &v in &vals {
            h.add(v);
        }
        let mut prev = h.min().expect("non-empty");
        for p in [5.0, 25.0, 50.0, 75.0, 95.0, 100.0] {
            let q = h.percentile(p).expect("non-empty");
            prop_assert!(q + 1e-9 >= prev, "p{p}: {q} < {prev}");
            prop_assert!(q <= h.max().expect("non-empty") + 1e-9);
            prev = q;
        }
    }

    /// Degenerate inputs: on an all-equal sample (including n = 1),
    /// the snap and interpolated percentile estimators agree exactly
    /// with each other and with the sample value, for every `p`.
    #[test]
    fn percentile_estimators_agree_on_degenerate_inputs(
        v in -1e6f64..1e6,
        n in 1usize..20,
        p in 0.0f64..100.0,
    ) {
        let mut h = Samples::new();
        for _ in 0..n {
            h.add(v);
        }
        let snap = h.percentile(p).expect("non-empty");
        let interp = h.percentile_interpolated(p).expect("non-empty");
        prop_assert_eq!(snap.to_bits(), interp.to_bits());
        prop_assert_eq!(snap.to_bits(), v.to_bits());
    }

    /// Non-finite pushes never panic and never poison the estimators:
    /// with NaN/±inf interleaved among finite samples, both percentile
    /// variants return bit-identical results to the finite subset
    /// alone, and every rejected push is counted.
    #[test]
    fn non_finite_pushes_never_panic_or_poison(
        vals in values(),
        junk in proptest::collection::vec(
            (0u8..3).prop_map(|i| match i {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            }),
            0..10,
        ),
        p in 0.0f64..100.0,
    ) {
        let mut clean = Samples::new();
        let mut mixed = Samples::new();
        for (i, &v) in vals.iter().enumerate() {
            clean.add(v);
            mixed.add(v);
            if let Some(&j) = junk.get(i) {
                mixed.add(j);
            }
        }
        for &j in junk.iter().skip(vals.len()) {
            mixed.add(j);
        }
        prop_assert_eq!(mixed.dropped(), junk.len());
        prop_assert_eq!(clean.dropped(), 0);
        let (a, b) = (clean.percentile(p), mixed.percentile(p));
        prop_assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        let (ai, bi) = (
            clean.percentile_interpolated(p),
            mixed.percentile_interpolated(p),
        );
        prop_assert_eq!(ai.map(f64::to_bits), bi.map(f64::to_bits));
    }

    /// The interpolated estimator stays bracketed by min/max and hits
    /// them exactly at p = 0 and p = 100.
    #[test]
    fn interpolated_percentile_is_bracketed(vals in values(), p in 0.0f64..100.0) {
        let mut h = Samples::new();
        for &v in &vals {
            h.add(v);
        }
        let q = h.percentile_interpolated(p).expect("non-empty");
        let (min, max) = (h.min().expect("non-empty"), h.max().expect("non-empty"));
        prop_assert!(min <= q && q <= max, "p{p}: {q} outside [{min}, {max}]");
        prop_assert_eq!(h.percentile_interpolated(0.0).expect("non-empty").to_bits(), min.to_bits());
        prop_assert_eq!(h.percentile_interpolated(100.0).expect("non-empty").to_bits(), max.to_bits());
    }

    /// Degradation: OnDemand equal to Performance is 0%; doubling the
    /// time is 50% in the paper's convention (Table 2's formula).
    #[test]
    fn degradation_convention(t in 1.0f64..1e4) {
        prop_assert!(summary::degradation_pct(t, t).abs() < 1e-9);
        let d = summary::degradation_pct(t, 2.0 * t);
        prop_assert!((d - 50.0).abs() < 1e-9, "{d}");
    }

    /// CSV export: header row lists every series; one data row per
    /// distinct timestamp across all series.
    #[test]
    fn csv_shape(pts in points()) {
        let a = TimeSeries::from_points("a", pts.clone());
        let csv = export::to_csv(&[&a]);
        let mut lines = csv.lines();
        prop_assert_eq!(lines.next(), Some("t,a"));
        let mut distinct: Vec<f64> = pts.iter().map(|&(t, _)| t).collect();
        distinct.sort_by(f64::total_cmp);
        distinct.dedup();
        prop_assert_eq!(lines.count(), distinct.len());
    }
}
