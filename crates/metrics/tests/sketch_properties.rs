//! Property tests for the quantile sketch: merge algebra, equality
//! with the single-pass sketch, the documented rank-error bound
//! against the store-all `Samples` estimator, and NaN hygiene.

use metrics::histogram::Samples;
use metrics::sketch::Sketch;
use proptest::prelude::*;

const ALPHA: f64 = 0.01;

fn sketch_of(values: &[f64]) -> Sketch {
    let mut s = Sketch::new(ALPHA);
    s.extend(values.iter().copied());
    s
}

/// A seeded pseudo-random stream in one of three shapes; the shapes
/// the fleet actually produces (uniform loads, heavy-tailed response
/// times, and a bimodal idle/busy mix).
fn distribution(kind: u8, seed: u64, n: usize) -> Vec<f64> {
    // Deterministic xorshift so every proptest case is replayable.
    let mut state = seed | 1;
    let mut unit = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| match kind {
            // Uniform on [0, 100): per-epoch load percentages.
            0 => unit() * 100.0,
            // Lognormal-ish: exp of an approximate normal (CLT over
            // twelve uniforms), the classic response-time tail.
            1 => {
                let z: f64 = (0..12).map(|_| unit()).sum::<f64>() - 6.0;
                z.exp()
            }
            // Bimodal: a near-idle mode at ~2 and a busy mode at ~80.
            _ => {
                if unit() < 0.7 {
                    2.0 + unit()
                } else {
                    80.0 + 5.0 * unit()
                }
            }
        })
        .collect()
}

proptest! {
    /// Merging is associative and commutative on arbitrary splits:
    /// every merge tree over the same pushes gives the same sketch.
    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(-1000.0f64..1000.0, 0..40),
        b in proptest::collection::vec(-1000.0f64..1000.0, 0..40),
        c in proptest::collection::vec(-1000.0f64..1000.0, 0..40),
    ) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right, "associativity");
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba, "commutativity");
    }

    /// A merged sketch equals the single-pass sketch over the
    /// concatenated stream — the exact property fleet sharding relies
    /// on for byte-identical artefacts across `--jobs`.
    #[test]
    fn merged_equals_single_pass_over_concatenation(
        a in proptest::collection::vec(-500.0f64..500.0, 0..60),
        b in proptest::collection::vec(-500.0f64..500.0, 0..60),
    ) {
        let mut merged = sketch_of(&a);
        merged.merge(&sketch_of(&b));
        let concat: Vec<f64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged, sketch_of(&concat));
    }

    /// Across uniform / lognormal / bimodal seeded streams, every
    /// sketch percentile stays within the documented `alpha` relative
    /// error of the store-all nearest-rank answer from `Samples`.
    #[test]
    fn rank_error_within_documented_bound(
        kind in 0u8..3,
        seed in 1u64..10_000,
        n in 1usize..400,
    ) {
        let values = distribution(kind, seed, n);
        let sketch = sketch_of(&values);
        let mut store_all: Samples = values.iter().copied().collect();
        for p in [0.0, 1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let truth = store_all.percentile(p).unwrap();
            let est = sketch.percentile(p).unwrap();
            prop_assert!(
                (est - truth).abs() <= ALPHA * truth.abs() + 1e-9,
                "kind {} seed {} n {} p{}: sketch {} vs store-all {}",
                kind, seed, n, p, est, truth
            );
        }
        // The summary surface agrees on the exact fields.
        prop_assert_eq!(sketch.len(), store_all.len());
        prop_assert_eq!(sketch.min(), store_all.min());
        prop_assert_eq!(sketch.max(), store_all.max());
    }

    /// Non-finite pushes are dropped and counted exactly like
    /// `Samples::add` — the PR-4 NaN-hygiene contract carries over.
    #[test]
    fn non_finite_handling_matches_samples(
        finite in proptest::collection::vec(-100.0f64..100.0, 0..30),
        poison_mask in proptest::collection::vec(0u8..3, 1..10),
    ) {
        let mut sketch = Sketch::new(ALPHA);
        let mut samples = Samples::new();
        for v in &finite {
            sketch.push(*v);
            samples.add(*v);
        }
        for m in &poison_mask {
            let bad = match m {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            };
            sketch.push(bad);
            samples.add(bad);
        }
        prop_assert_eq!(sketch.len(), samples.len());
        prop_assert_eq!(sketch.dropped(), samples.dropped());
        prop_assert_eq!(sketch.dropped(), poison_mask.len());
        let (st, sa) = (sketch.summary(), samples.summary());
        prop_assert_eq!(
            st.rsplit(" dropped=").next().map(str::to_owned),
            sa.rsplit(" dropped=").next().map(str::to_owned),
            "both summaries report the same drop count"
        );
    }
}
