//! A synthetic sysfs/cgroup tree for testing the shim without root
//! privileges or real hardware.
//!
//! [`FakeSysfs`] builds the directory layout [`CgroupLayout`] expects
//! under a temporary directory and plays the kernel's role:
//! `kernel_tick` applies pending `scaling_setspeed` writes to
//! `scaling_cur_freq`, and `advance_time` accrues `/proc/stat`
//! counters at a configurable busy fraction.

use std::fs;
use std::path::{Path, PathBuf};

use cpumodel::PStateTable;

use crate::cgroup::CgroupLayout;

/// A fake sysfs tree plus the minimal "kernel" that animates it.
#[derive(Debug)]
pub struct FakeSysfs {
    layout: CgroupLayout,
    busy_jiffies: u64,
    total_jiffies: u64,
}

impl FakeSysfs {
    /// Builds the tree under `root` for the given DVFS ladder and
    /// cgroup names. The CPU starts at the maximum frequency, idle.
    ///
    /// # Panics
    ///
    /// Panics on filesystem errors (tests own the directory).
    #[must_use]
    pub fn create(root: impl Into<PathBuf>, table: &PStateTable, cgroups: &[&str]) -> Self {
        let layout = CgroupLayout::new(root);
        fs::create_dir_all(layout.cpufreq_dir()).expect("create cpufreq dir");
        fs::create_dir_all(layout.proc_stat().parent().expect("proc dir")).expect("create proc");
        for name in cgroups {
            fs::create_dir_all(layout.cpu_max(name).parent().expect("cgroup dir"))
                .expect("create cgroup dir");
            fs::write(layout.cpu_max(name), "max 100000\n").expect("init cpu.max");
        }
        let khz_list: Vec<String> = table
            .frequencies()
            .map(|f| (u64::from(f.as_mhz()) * 1000).to_string())
            .collect();
        fs::write(layout.available_frequencies(), khz_list.join(" ") + "\n")
            .expect("write available freqs");
        let max_khz = u64::from(table.max().frequency.as_mhz()) * 1000;
        fs::write(layout.cur_freq(), format!("{max_khz}\n")).expect("write cur freq");
        fs::write(layout.setspeed(), format!("{max_khz}\n")).expect("write setspeed");
        let mut fake = FakeSysfs {
            layout,
            busy_jiffies: 0,
            total_jiffies: 0,
        };
        fake.flush_stat();
        fake
    }

    /// The layout of the tree.
    #[must_use]
    pub fn layout(&self) -> &CgroupLayout {
        &self.layout
    }

    /// Applies a pending `scaling_setspeed` write to
    /// `scaling_cur_freq` — what the kernel's userspace governor does.
    ///
    /// # Panics
    ///
    /// Panics on filesystem errors.
    pub fn kernel_tick(&mut self) {
        let requested = fs::read_to_string(self.layout.setspeed()).expect("read setspeed");
        fs::write(self.layout.cur_freq(), requested).expect("apply setspeed");
    }

    /// Accrues `jiffies` of wall time with the given busy fraction
    /// into the `/proc/stat` counters.
    ///
    /// # Panics
    ///
    /// Panics if `busy_fraction` is outside `[0, 1]` or on filesystem
    /// errors.
    pub fn advance_time(&mut self, jiffies: u64, busy_fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&busy_fraction),
            "busy fraction {busy_fraction} out of [0,1]"
        );
        self.total_jiffies += jiffies;
        self.busy_jiffies += (jiffies as f64 * busy_fraction).round() as u64;
        self.flush_stat();
    }

    /// Reads back a cgroup's `cpu.max` as `(quota_us, period_us)`;
    /// `None` quota means "max" (uncapped).
    ///
    /// # Panics
    ///
    /// Panics if the file is missing or malformed.
    #[must_use]
    pub fn read_cpu_max(&self, cgroup: &str) -> (Option<u64>, u64) {
        let raw = fs::read_to_string(self.layout.cpu_max(cgroup)).expect("read cpu.max");
        let mut parts = raw.split_whitespace();
        let quota = match parts.next().expect("quota field") {
            "max" => None,
            q => Some(q.parse().expect("numeric quota")),
        };
        let period = parts
            .next()
            .expect("period field")
            .parse()
            .expect("numeric period");
        (quota, period)
    }

    /// The current frequency file content, in kHz.
    ///
    /// # Panics
    ///
    /// Panics if the file is missing or malformed.
    #[must_use]
    pub fn cur_freq_khz(&self) -> u64 {
        fs::read_to_string(self.layout.cur_freq())
            .expect("read cur freq")
            .trim()
            .parse()
            .expect("numeric freq")
    }

    /// Breaks a control file by replacing it with a directory, so
    /// both reads and writes fail — failure-injection hook for tests
    /// (a plain unlink would not do: `fs::write` recreates files).
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be replaced.
    pub fn break_file(&mut self, path: &Path) {
        fs::remove_file(path).expect("remove file");
        fs::create_dir(path).expect("replace with directory");
    }

    fn flush_stat(&mut self) {
        fs::write(
            self.layout.proc_stat(),
            format!("cpu {} {}\n", self.busy_jiffies, self.total_jiffies),
        )
        .expect("write proc stat");
    }
}

/// Creates a unique temporary root for one test.
#[must_use]
pub fn temp_root(tag: &str) -> PathBuf {
    let pid = std::process::id();
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .subsec_nanos();
    std::env::temp_dir().join(format!("pas-shim-{tag}-{pid}-{nanos}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgroup::CgroupBackend;
    use cpumodel::{machines, PStateIdx};
    use pas_core::{Credit, PasBackend};

    fn setup(tag: &str) -> (FakeSysfs, CgroupBackend, PathBuf) {
        let root = temp_root(tag);
        let table = machines::optiplex_755().pstate_table();
        let fake = FakeSysfs::create(&root, &table, &["v20", "v70"]);
        let backend = CgroupBackend::with_table(
            CgroupLayout::new(&root),
            vec![
                ("v20".to_owned(), Credit::percent(20.0)),
                ("v70".to_owned(), Credit::percent(70.0)),
            ],
            table,
        );
        (fake, backend, root)
    }

    fn teardown(root: &Path) {
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn discovery_reads_ladder() {
        let root = temp_root("discover");
        let table = machines::optiplex_755().pstate_table();
        let _fake = FakeSysfs::create(&root, &table, &["v"]);
        let backend = CgroupBackend::discover(
            CgroupLayout::new(&root),
            vec![("v".to_owned(), Credit::percent(50.0))],
            &cpumodel::CfModel::Ideal,
        )
        .unwrap();
        assert_eq!(backend.pstate_table().len(), 5);
        assert_eq!(backend.pstate_table().max().frequency.as_mhz(), 2667);
        teardown(&root);
    }

    #[test]
    fn credits_become_quotas() {
        let (fake, mut backend, root) = setup("quota");
        backend
            .apply_credits(&[Credit::percent(33.3), Credit::percent(116.7)])
            .unwrap();
        let (q20, p) = fake.read_cpu_max("v20");
        assert_eq!(p, 100_000);
        assert_eq!(q20, Some(33_300));
        let (q70, _) = fake.read_cpu_max("v70");
        assert_eq!(
            q70,
            Some(116_700),
            "quota above the period is legal in cgroup v2"
        );
        teardown(&root);
    }

    #[test]
    fn uncapped_writes_max() {
        let (fake, mut backend, root) = setup("uncapped");
        let mut b2 = CgroupBackend::with_table(
            backend.layout().clone(),
            vec![
                ("v20".to_owned(), Credit::ZERO),
                ("v70".to_owned(), Credit::percent(70.0)),
            ],
            backend.pstate_table().clone(),
        );
        b2.apply_credits(&[Credit::ZERO, Credit::percent(70.0)])
            .unwrap();
        let (q, _) = fake.read_cpu_max("v20");
        assert_eq!(q, None);
        let _ = &mut backend;
        teardown(&root);
    }

    #[test]
    fn frequency_round_trip() {
        let (mut fake, mut backend, root) = setup("freq");
        assert_eq!(
            backend.current_pstate().unwrap(),
            backend.pstate_table().max_idx()
        );
        backend.set_pstate(PStateIdx(0)).unwrap();
        // The kernel hasn't applied it yet:
        assert_eq!(
            backend.current_pstate().unwrap(),
            backend.pstate_table().max_idx()
        );
        fake.kernel_tick();
        assert_eq!(backend.current_pstate().unwrap(), PStateIdx(0));
        assert_eq!(fake.cur_freq_khz(), 1_600_000);
        teardown(&root);
    }

    #[test]
    fn load_from_stat_deltas() {
        let (mut fake, mut backend, root) = setup("load");
        backend.prime_load().unwrap();
        fake.advance_time(1000, 0.35);
        let load = backend.global_load_percent().unwrap();
        assert!((load - 35.0).abs() < 0.2, "load {load}");
        backend.advance_load_baseline().unwrap();
        fake.advance_time(1000, 0.80);
        let load2 = backend.global_load_percent().unwrap();
        assert!((load2 - 80.0).abs() < 0.2, "load {load2}");
        teardown(&root);
    }

    #[test]
    fn unprimed_load_is_error() {
        let (_fake, backend, root) = setup("unprimed");
        let err = backend.global_load_percent().unwrap_err();
        assert!(err.detail.contains("prime_load"));
        teardown(&root);
    }

    #[test]
    fn missing_file_surfaces_as_error() {
        let (mut fake, mut backend, root) = setup("missing");
        let setspeed = fake.layout().setspeed();
        fake.break_file(&setspeed);
        let err = backend.set_pstate(PStateIdx(0)).unwrap_err();
        assert_eq!(err.operation, "write scaling_setspeed");
        teardown(&root);
    }

    #[test]
    fn wrong_credit_count_rejected() {
        let (_fake, mut backend, root) = setup("count");
        let err = backend.apply_credits(&[Credit::percent(10.0)]).unwrap_err();
        assert!(err.detail.contains("1 credits for 2 cgroups"));
        teardown(&root);
    }

    #[test]
    fn full_controller_drives_the_shim() {
        use pas_core::{ControllerPlacement, PasController};
        let (mut fake, mut backend, root) = setup("e2e");
        backend.prime_load().unwrap();
        let mut ctl = PasController::new(
            ControllerPlacement::UserLevelFull,
            backend.pstate_table().clone(),
        )
        .with_smoothing_window(1);
        // A long stretch of 20% load.
        for _ in 0..3 {
            fake.advance_time(500, 0.20);
            ctl.step(&mut backend).unwrap();
            backend.advance_load_baseline().unwrap();
            fake.kernel_tick();
        }
        // Frequency parked at the bottom...
        assert_eq!(fake.cur_freq_khz(), 1_600_000);
        // ...and V20's quota compensated to ~33%.
        let (q20, p) = fake.read_cpu_max("v20");
        let frac = q20.unwrap() as f64 / p as f64;
        assert!((frac - 0.333).abs() < 0.02, "quota fraction {frac}");
        teardown(&root);
    }
}
