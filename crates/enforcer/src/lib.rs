//! Credit-enforcement backends for the user-level PAS controllers.
//!
//! `pas_core::controller` implements the paper's two user-level
//! placements against the [`pas_core::PasBackend`] trait; this crate
//! supplies the two concrete backends:
//!
//! * [`SimBackend`] — drives the simulated host (`hypervisor` crate):
//!   caps via the Credit scheduler, frequency via the CPU model, load
//!   via the host's external measurement window;
//! * [`CgroupBackend`] — the **cgroup-v2 shim** for real Linux hosts:
//!   VM credits map to `cpu.max` bandwidth quotas, the frequency to
//!   cpufreq sysfs knobs, and the load to `/proc/stat`-style counter
//!   deltas. All paths are rooted at a configurable directory so the
//!   test-suite exercises the shim against a synthetic sysfs tree
//!   ([`testkit::FakeSysfs`]) — and pointing the root at `/` deploys
//!   it on an actual machine.
//!
//! The cgroup shim is the honest substitute for "patching Xen" on a
//! machine where no hypervisor scheduler hook exists: `cpu.max` is
//! semantically Xen's cap (bandwidth per period), so Equation 4
//! applies verbatim.
//!
//! [`daemon`] supervises the controller for real deployments: error
//! budgets, a fail-safe that restores booked credits and the maximum
//! frequency when the backend breaks, and automatic recovery.

#![deny(missing_docs)]

mod cgroup;
pub mod daemon;
mod sim;
pub mod testkit;

pub use cgroup::{CgroupBackend, CgroupLayout};
pub use daemon::{DaemonConfig, PasDaemon, TickOutcome};
pub use sim::SimBackend;
