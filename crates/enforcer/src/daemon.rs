//! A resilient run-loop around a user-level PAS controller.
//!
//! The paper's user-level placements (Section 4.1) are daemons: they
//! poll the load, recompute credits and (for placement 2) frequency,
//! and write both back. On a real host, any of those reads or writes
//! can fail transiently — a cgroup vanishes with its VM, a sysfs knob
//! is briefly locked by the kernel, a filesystem hiccups. A control
//! loop that dies on the first `EIO` is not deployable, and one that
//! keeps writing through a persistently broken backend makes things
//! worse.
//!
//! [`PasDaemon`] adds exactly that operational layer:
//!
//! * each [`tick`](PasDaemon::tick) runs one controller step and
//!   classifies the outcome;
//! * consecutive failures are counted; at
//!   [`DaemonConfig::degrade_after`] the daemon enters **degraded**
//!   mode and *restores every VM's initial credit and the maximum
//!   frequency* (fail-safe: an unmanaged host must never be left with
//!   stale low-frequency compensations — the SLA direction of the
//!   paper's argument);
//! * in degraded mode it keeps probing; one successful step restores
//!   normal operation.
//!
//! The loop itself is step-driven so tests (and the simulator) can
//! drive it without real time; [`run_for_steps`](PasDaemon::run_for_steps)
//! is the convenience wrapper the `cgroup_shim` example uses.

use pas_core::{BackendError, Credit, PasBackend, PasController};

/// Outcome of one daemon tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TickOutcome {
    /// Controller step applied cleanly.
    Applied,
    /// The step failed; the daemon is still within its error budget.
    Errored,
    /// The error budget was exhausted this tick: initial credits and
    /// maximum frequency were restored (or restoring failed too, which
    /// leaves nothing more to do until the backend heals).
    Degraded,
    /// A step succeeded after degradation: normal operation resumed.
    Recovered,
}

/// Tunables for [`PasDaemon`].
#[derive(Debug, Clone, Copy)]
pub struct DaemonConfig {
    /// Consecutive failures after which the daemon degrades.
    pub degrade_after: u32,
}

impl Default for DaemonConfig {
    /// Degrade after 3 consecutive failures.
    fn default() -> Self {
        DaemonConfig { degrade_after: 3 }
    }
}

/// The supervised control loop.
#[derive(Debug)]
pub struct PasDaemon {
    controller: PasController,
    config: DaemonConfig,
    consecutive_errors: u32,
    degraded: bool,
    ticks: u64,
    errors_total: u64,
    last_error: Option<BackendError>,
}

impl PasDaemon {
    /// Wraps a controller with the default error budget.
    #[must_use]
    pub fn new(controller: PasController) -> Self {
        Self::with_config(controller, DaemonConfig::default())
    }

    /// Wraps a controller with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `degrade_after` is zero (the daemon could never
    /// apply anything).
    #[must_use]
    pub fn with_config(controller: PasController, config: DaemonConfig) -> Self {
        assert!(config.degrade_after > 0, "degrade_after must be at least 1");
        PasDaemon {
            controller,
            config,
            consecutive_errors: 0,
            degraded: false,
            ticks: 0,
            errors_total: 0,
            last_error: None,
        }
    }

    /// `true` while the daemon has given up applying compensations.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Ticks driven so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total failed steps over the daemon's lifetime.
    #[must_use]
    pub fn errors_total(&self) -> u64 {
        self.errors_total
    }

    /// The most recent backend error, if any step ever failed.
    #[must_use]
    pub fn last_error(&self) -> Option<&BackendError> {
        self.last_error.as_ref()
    }

    /// The wrapped controller (e.g. to read its step count).
    #[must_use]
    pub fn controller(&self) -> &PasController {
        &self.controller
    }

    /// Runs one control period against `backend` and classifies the
    /// outcome. Never panics on backend failures; see the module docs
    /// for the degradation protocol.
    pub fn tick<B: PasBackend>(&mut self, backend: &mut B) -> TickOutcome {
        self.ticks += 1;
        match self.controller.step(backend) {
            Ok(_) => {
                self.consecutive_errors = 0;
                if self.degraded {
                    self.degraded = false;
                    TickOutcome::Recovered
                } else {
                    TickOutcome::Applied
                }
            }
            Err(e) => {
                self.errors_total += 1;
                self.consecutive_errors += 1;
                self.last_error = Some(e);
                if !self.degraded && self.consecutive_errors >= self.config.degrade_after {
                    self.degraded = true;
                    self.fail_safe(backend);
                    TickOutcome::Degraded
                } else {
                    TickOutcome::Errored
                }
            }
        }
    }

    /// Drives `steps` ticks; returns the outcomes (test/report aid).
    pub fn run_for_steps<B: PasBackend>(
        &mut self,
        backend: &mut B,
        steps: usize,
    ) -> Vec<TickOutcome> {
        (0..steps).map(|_| self.tick(backend)).collect()
    }

    /// Best-effort fail-safe: initial credits, maximum frequency. A
    /// backend broken enough to refuse even this is left as-is — the
    /// daemon will retry the fail-safe on the next degradation edge.
    fn fail_safe<B: PasBackend>(&mut self, backend: &mut B) {
        let initial: Vec<Credit> = backend.initial_credits();
        if let Err(e) = backend.apply_credits(&initial) {
            self.last_error = Some(e);
        }
        let fmax = backend.pstate_table().max_idx();
        if let Err(e) = backend.set_pstate(fmax) {
            self.last_error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgroup::{CgroupBackend, CgroupLayout};
    use crate::testkit::{temp_root, FakeSysfs};
    use cpumodel::machines;
    use pas_core::ControllerPlacement;

    fn setup(tag: &str) -> (FakeSysfs, CgroupBackend, PasDaemon, std::path::PathBuf) {
        let root = temp_root(tag);
        let table = machines::optiplex_755().pstate_table();
        let fake = FakeSysfs::create(&root, &table, &["v20", "v70"]);
        let mut backend = CgroupBackend::with_table(
            CgroupLayout::new(&root),
            vec![
                ("v20".to_owned(), Credit::percent(20.0)),
                ("v70".to_owned(), Credit::percent(70.0)),
            ],
            table.clone(),
        );
        backend.prime_load().expect("prime");
        let daemon = PasDaemon::new(PasController::new(
            ControllerPlacement::UserLevelFull,
            table,
        ));
        (fake, backend, daemon, root)
    }

    #[test]
    fn healthy_backend_applies_every_tick() {
        let (mut fake, mut backend, mut daemon, root) = setup("daemon-ok");
        for _ in 0..5 {
            fake.advance_time(100, 0.15); // 15% busy
            assert_eq!(daemon.tick(&mut backend), TickOutcome::Applied);
        }
        assert_eq!(daemon.errors_total(), 0);
        assert!(!daemon.is_degraded());
        // 15% load → the controller parks the frequency low and
        // compensates V20 above its 20% booking.
        fake.kernel_tick();
        let (quota, period) = fake.read_cpu_max("v20");
        let cap = quota.expect("capped") as f64 / period as f64;
        assert!(cap > 0.25, "compensated cap {cap}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn degrades_after_budget_and_fails_safe() {
        let (mut fake, mut backend, mut daemon, root) = setup("daemon-degrade");
        // A few healthy low-load ticks lower the frequency.
        for _ in 0..4 {
            fake.advance_time(100, 0.10);
            daemon.tick(&mut backend);
        }
        fake.kernel_tick();
        assert!(fake.cur_freq_khz() < 2_667_000, "frequency was lowered");

        // Break the load source: every subsequent step fails.
        let stat = backend.layout().proc_stat();
        fake.break_file(&stat);
        assert_eq!(daemon.tick(&mut backend), TickOutcome::Errored);
        assert_eq!(daemon.tick(&mut backend), TickOutcome::Errored);
        assert_eq!(daemon.tick(&mut backend), TickOutcome::Degraded);
        assert!(daemon.is_degraded());
        assert!(daemon.last_error().is_some());

        // Fail-safe restored booked credits and fmax.
        fake.kernel_tick();
        let (quota, period) = fake.read_cpu_max("v20");
        let cap = quota.expect("capped") as f64 / period as f64;
        assert!(
            (cap - 0.20).abs() < 1e-3,
            "initial credit restored, got {cap}"
        );
        assert_eq!(fake.cur_freq_khz(), 2_667_000, "fmax restored");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn recovers_when_the_backend_heals() {
        let (mut fake, mut backend, mut daemon, root) = setup("daemon-recover");
        let stat = backend.layout().proc_stat();
        fake.break_file(&stat);
        for _ in 0..3 {
            daemon.tick(&mut backend);
        }
        assert!(daemon.is_degraded());

        // Heal the file (break_file replaced it with a directory).
        std::fs::remove_dir(&stat).expect("remove broken dir");
        std::fs::write(&stat, "cpu 0 0\n").expect("recreate stat");
        backend.prime_load().expect("re-prime after heal");
        fake.advance_time(100, 0.5);

        assert_eq!(daemon.tick(&mut backend), TickOutcome::Recovered);
        assert!(!daemon.is_degraded());
        assert_eq!(daemon.tick(&mut backend), TickOutcome::Applied);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn transient_errors_within_budget_do_not_degrade() {
        let (mut fake, mut backend, mut daemon, root) = setup("daemon-transient");
        let stat = backend.layout().proc_stat();
        fake.break_file(&stat);
        assert_eq!(daemon.tick(&mut backend), TickOutcome::Errored);
        // Heal before the budget (3) is reached.
        std::fs::remove_dir(&stat).expect("remove broken dir");
        std::fs::write(&stat, "cpu 0 0\n").expect("recreate");
        backend.prime_load().expect("re-prime");
        fake.advance_time(100, 0.3);
        assert_eq!(daemon.tick(&mut backend), TickOutcome::Applied);
        assert!(!daemon.is_degraded());
        assert_eq!(daemon.errors_total(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn zero_budget_is_rejected() {
        let table = machines::optiplex_755().pstate_table();
        let controller = PasController::new(ControllerPlacement::UserLevelFull, table);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            PasDaemon::with_config(controller, DaemonConfig { degrade_after: 0 })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn fail_safe_survives_a_fully_broken_backend() {
        let (mut fake, mut backend, mut daemon, root) = setup("daemon-allbroken");
        // Break load, quota and frequency files: even the fail-safe
        // writes fail; the daemon must degrade without panicking.
        let stat = backend.layout().proc_stat();
        let setspeed = backend.layout().setspeed();
        let cpu_max = backend.layout().cpu_max("v20");
        fake.break_file(&stat);
        fake.break_file(&setspeed);
        fake.break_file(&cpu_max);
        let outcomes = daemon.run_for_steps(&mut backend, 5);
        assert_eq!(outcomes[2], TickOutcome::Degraded);
        assert!(daemon.is_degraded());
        // Later ticks keep counting errors quietly.
        assert_eq!(outcomes[4], TickOutcome::Errored);
        assert_eq!(daemon.errors_total(), 5);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn degraded_daemon_resumes_applying_after_recovery_pstate() {
        // Recovery must not leave stale planner state: after healing,
        // the next plans reflect fresh loads, not pre-failure ones.
        let (mut fake, mut backend, mut daemon, root) = setup("daemon-freshness");
        let stat = backend.layout().proc_stat();
        fake.break_file(&stat);
        daemon.run_for_steps(&mut backend, 3);
        std::fs::remove_dir(&stat).expect("heal");
        std::fs::write(&stat, "cpu 0 0\n").expect("recreate");
        backend.prime_load().expect("re-prime");
        // Saturating load after recovery: frequency must go to fmax.
        for _ in 0..4 {
            fake.advance_time(100, 0.97);
            daemon.tick(&mut backend);
        }
        fake.kernel_tick();
        assert_eq!(fake.cur_freq_khz(), 2_667_000);
        assert_eq!(daemon.tick(&mut backend), TickOutcome::Applied);
        let _ = std::fs::remove_dir_all(&root);
    }
}
