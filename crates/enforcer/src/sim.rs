//! The simulator backend: a thin adapter from [`PasBackend`] onto a
//! mutably borrowed [`Host`].

use cpumodel::{PStateIdx, PStateTable};
use hypervisor::vm::VmId;
use hypervisor::Host;
use pas_core::{BackendError, Credit, PasBackend};

/// Adapts a simulated [`Host`] to the [`PasBackend`] control surface.
///
/// Construct one per control period around a mutable borrow of the
/// host, run `PasController::step`, then drop it and keep simulating:
///
/// ```
/// use enforcer::SimBackend;
/// use hypervisor::{HostConfig, SchedulerKind, VmConfig};
/// use hypervisor::work::ConstantDemand;
/// use pas_core::{ControllerPlacement, Credit, PasController};
/// use simkernel::SimDuration;
///
/// let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
/// let rate = 0.2 * host.fmax_mcps();
/// host.add_vm(VmConfig::new("v20", Credit::percent(20.0)),
///             Box::new(ConstantDemand::new(rate)));
/// let mut ctl = PasController::new(
///     ControllerPlacement::UserLevelFull,
///     host.cpu().pstates().clone(),
/// );
/// for _ in 0..10 {
///     host.run_for(SimDuration::from_secs(1));
///     let mut backend = SimBackend::new(&mut host);
///     ctl.step(&mut backend)?;
/// }
/// // 20% load → the controller parked the host at the lowest frequency.
/// assert_eq!(host.cpu().pstate(), host.cpu().pstates().min_idx());
/// # Ok::<(), pas_core::BackendError>(())
/// ```
pub struct SimBackend<'a> {
    host: &'a mut Host,
    cached_load_pct: f64,
}

impl<'a> SimBackend<'a> {
    /// Wraps a host, snapshotting (and resetting) the host's external
    /// load window — so construct one backend per control period.
    #[must_use]
    pub fn new(host: &'a mut Host) -> Self {
        let cached_load_pct = host.take_external_load().0;
        SimBackend {
            host,
            cached_load_pct,
        }
    }
}

impl PasBackend for SimBackend<'_> {
    fn pstate_table(&self) -> &PStateTable {
        self.host.cpu().pstates()
    }

    fn current_pstate(&self) -> Result<PStateIdx, BackendError> {
        Ok(self.host.cpu().pstate())
    }

    fn set_pstate(&mut self, idx: PStateIdx) -> Result<(), BackendError> {
        self.host
            .set_pstate(idx)
            .map_err(|e| BackendError::new("set p-state", e.to_string()))
    }

    fn initial_credits(&self) -> Vec<Credit> {
        (0..self.host.vm_count())
            .map(|i| self.host.vm(VmId(i)).config.credit)
            .collect()
    }

    fn apply_credits(&mut self, credits: &[Credit]) -> Result<(), BackendError> {
        if credits.len() != self.host.vm_count() {
            return Err(BackendError::new(
                "apply credits",
                format!("{} credits for {} VMs", credits.len(), self.host.vm_count()),
            ));
        }
        for (i, credit) in credits.iter().enumerate() {
            let cap = if credit.is_uncapped() {
                None
            } else {
                Some(credit.as_fraction())
            };
            if !self.host.set_vm_cap(VmId(i), cap) {
                return Err(BackendError::new(
                    "apply credits",
                    format!(
                        "scheduler '{}' does not accept external caps",
                        self.host.scheduler_name()
                    ),
                ));
            }
        }
        Ok(())
    }

    fn global_load_percent(&self) -> Result<f64, BackendError> {
        Ok(self.cached_load_pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypervisor::work::ConstantDemand;
    use hypervisor::{HostConfig, SchedulerKind, VmConfig};
    use simkernel::SimDuration;

    fn host_with_v20() -> Host {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Credit).build();
        let rate = 0.2 * host.fmax_mcps();
        host.add_vm(
            VmConfig::new("v20", Credit::percent(20.0)),
            Box::new(ConstantDemand::new(rate)),
        );
        host
    }

    #[test]
    fn reads_host_state() {
        let mut host = host_with_v20();
        host.run_for(SimDuration::from_secs(2));
        let backend = SimBackend::new(&mut host);
        assert_eq!(backend.initial_credits(), vec![Credit::percent(20.0)]);
        assert!(backend.current_pstate().is_ok());
    }

    #[test]
    fn applies_caps_and_pstate() {
        let mut host = host_with_v20();
        let mut backend = SimBackend::new(&mut host);
        backend.apply_credits(&[Credit::percent(33.0)]).unwrap();
        let min = backend.pstate_table().min_idx();
        backend.set_pstate(min).unwrap();
        assert_eq!(host.effective_cap_pct(VmId(0)), Some(33.0));
        assert_eq!(host.cpu().pstate(), host.cpu().pstates().min_idx());
    }

    #[test]
    fn wrong_credit_count_is_error() {
        let mut host = host_with_v20();
        let mut backend = SimBackend::new(&mut host);
        let err = backend.apply_credits(&[]).unwrap_err();
        assert!(err.detail.contains("0 credits"));
    }

    #[test]
    fn sedf_rejects_external_caps() {
        let mut host = HostConfig::optiplex_defaults(SchedulerKind::Sedf { extra: true }).build();
        host.add_vm(
            VmConfig::new("v", Credit::percent(20.0)),
            Box::new(ConstantDemand::new(100.0)),
        );
        let mut backend = SimBackend::new(&mut host);
        let err = backend.apply_credits(&[Credit::percent(25.0)]).unwrap_err();
        assert!(err.detail.contains("sedf"));
    }

    #[test]
    fn load_snapshot_measures_window() {
        let mut host = host_with_v20();
        host.run_for(SimDuration::from_secs(5));
        let backend = SimBackend::new(&mut host);
        let load = backend.global_load_percent().unwrap();
        assert!((load - 20.0).abs() < 2.0, "load {load}");
    }
}
