//! The cgroup-v2 + cpufreq-sysfs shim.
//!
//! On a real Linux host with no hypervisor scheduler hooks, the
//! closest native equivalent of Xen's per-VM cap is the cgroup-v2
//! `cpu.max` controller: `"$MAX $PERIOD"` grants the group at most
//! `MAX` microseconds of CPU per `PERIOD` microseconds — a bandwidth
//! cap that, like Xen's, is *frequency-blind*. Equation 4 therefore
//! transfers verbatim: when the frequency drops to `ratio · cf`, the
//! quota must be divided by `ratio · cf` to preserve the booked
//! capacity.
//!
//! Filesystem layout (relative to the configured root):
//!
//! ```text
//! sys/fs/cgroup/<vm>/cpu.max                      quota control
//! sys/devices/system/cpu/cpu0/cpufreq/
//!     scaling_cur_freq                            kHz, read
//!     scaling_setspeed                            kHz, write (userspace gov)
//!     scaling_available_frequencies               kHz list, read
//! proc/stat                                       "cpu <busy> <total>" jiffies
//! ```
//!
//! Pointing the root at `/` drives an actual machine; the test-suite
//! uses [`crate::testkit::FakeSysfs`] instead.

use std::fs;
use std::path::{Path, PathBuf};

use cpumodel::{Frequency, PStateIdx, PStateTable};
use pas_core::{BackendError, Credit, PasBackend};

/// Path construction for the shim's control files.
#[derive(Debug, Clone)]
pub struct CgroupLayout {
    root: PathBuf,
}

impl CgroupLayout {
    /// A layout rooted at `root`.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        CgroupLayout { root: root.into() }
    }

    /// The root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// `cpu.max` of one VM's cgroup.
    #[must_use]
    pub fn cpu_max(&self, vm: &str) -> PathBuf {
        self.root.join("sys/fs/cgroup").join(vm).join("cpu.max")
    }

    /// The cpufreq directory of cpu0.
    #[must_use]
    pub fn cpufreq_dir(&self) -> PathBuf {
        self.root.join("sys/devices/system/cpu/cpu0/cpufreq")
    }

    /// `scaling_cur_freq`.
    #[must_use]
    pub fn cur_freq(&self) -> PathBuf {
        self.cpufreq_dir().join("scaling_cur_freq")
    }

    /// `scaling_setspeed`.
    #[must_use]
    pub fn setspeed(&self) -> PathBuf {
        self.cpufreq_dir().join("scaling_setspeed")
    }

    /// `scaling_available_frequencies`.
    #[must_use]
    pub fn available_frequencies(&self) -> PathBuf {
        self.cpufreq_dir().join("scaling_available_frequencies")
    }

    /// The `/proc/stat`-style counter file.
    #[must_use]
    pub fn proc_stat(&self) -> PathBuf {
        self.root.join("proc/stat")
    }
}

/// One managed VM (cgroup name + booked credit).
#[derive(Debug, Clone)]
struct ManagedVm {
    cgroup: String,
    credit: Credit,
}

/// The cgroup-v2 enforcement backend.
///
/// See [`crate::testkit::FakeSysfs`] for a runnable end-to-end
/// example.
#[derive(Debug)]
pub struct CgroupBackend {
    layout: CgroupLayout,
    table: PStateTable,
    vms: Vec<ManagedVm>,
    /// `cpu.max` period in microseconds (cgroup default: 100 ms).
    period_us: u64,
    /// Previous `/proc/stat` sample for delta-based load measurement.
    last_stat: Option<(u64, u64)>,
}

impl CgroupBackend {
    /// Creates a backend over `layout` managing `vms`
    /// (cgroup-name, booked-credit) pairs, with the DVFS ladder read
    /// from `scaling_available_frequencies`.
    ///
    /// # Errors
    ///
    /// Fails if the available-frequencies file is missing or
    /// malformed, or a ladder cannot be built from it.
    pub fn discover(
        layout: CgroupLayout,
        vms: Vec<(String, Credit)>,
        cf_model: &cpumodel::CfModel,
    ) -> Result<Self, BackendError> {
        let raw = fs::read_to_string(layout.available_frequencies())
            .map_err(|e| BackendError::new("read available frequencies", e.to_string()))?;
        let mut khz: Vec<u64> = raw
            .split_whitespace()
            .map(|tok| {
                tok.parse::<u64>().map_err(|e| {
                    BackendError::new("parse available frequencies", format!("token {tok:?}: {e}"))
                })
            })
            .collect::<Result<_, _>>()?;
        khz.sort_unstable();
        let table = PStateTable::from_frequencies(
            khz.iter().map(|&k| Frequency::mhz((k / 1000) as u32)),
            cf_model,
        )
        .map_err(|e| BackendError::new("build p-state table", e.to_string()))?;
        Ok(Self::with_table(layout, vms, table))
    }

    /// Creates a backend with an explicit ladder (skips sysfs
    /// discovery).
    #[must_use]
    pub fn with_table(
        layout: CgroupLayout,
        vms: Vec<(String, Credit)>,
        table: PStateTable,
    ) -> Self {
        CgroupBackend {
            layout,
            table,
            vms: vms
                .into_iter()
                .map(|(cgroup, credit)| ManagedVm { cgroup, credit })
                .collect(),
            period_us: 100_000,
            last_stat: None,
        }
    }

    /// The layout in use.
    #[must_use]
    pub fn layout(&self) -> &CgroupLayout {
        &self.layout
    }

    /// The `cpu.max` period in microseconds.
    #[must_use]
    pub fn period_us(&self) -> u64 {
        self.period_us
    }

    fn read_stat(&self) -> Result<(u64, u64), BackendError> {
        let raw = fs::read_to_string(self.layout.proc_stat())
            .map_err(|e| BackendError::new("read proc stat", e.to_string()))?;
        let mut parts = raw.split_whitespace();
        let tag = parts.next().unwrap_or_default();
        if tag != "cpu" {
            return Err(BackendError::new(
                "parse proc stat",
                format!("expected leading 'cpu', got {tag:?}"),
            ));
        }
        let busy: u64 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| BackendError::new("parse proc stat", "missing busy field"))?;
        let total: u64 = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| BackendError::new("parse proc stat", "missing total field"))?;
        Ok((busy, total))
    }

    /// Primes the load-delta baseline (call once before the first
    /// control period).
    ///
    /// # Errors
    ///
    /// Propagates `/proc/stat` read failures.
    pub fn prime_load(&mut self) -> Result<(), BackendError> {
        self.last_stat = Some(self.read_stat()?);
        Ok(())
    }
}

impl PasBackend for CgroupBackend {
    fn pstate_table(&self) -> &PStateTable {
        &self.table
    }

    fn current_pstate(&self) -> Result<PStateIdx, BackendError> {
        let raw = fs::read_to_string(self.layout.cur_freq())
            .map_err(|e| BackendError::new("read current frequency", e.to_string()))?;
        let khz: u64 = raw
            .trim()
            .parse()
            .map_err(|e| BackendError::new("parse current frequency", format!("{e}")))?;
        let mhz = Frequency::mhz((khz / 1000) as u32);
        self.table.index_of(mhz).ok_or_else(|| {
            BackendError::new(
                "resolve current frequency",
                format!("{mhz} is not in the ladder"),
            )
        })
    }

    fn set_pstate(&mut self, idx: PStateIdx) -> Result<(), BackendError> {
        let state = self
            .table
            .get(idx)
            .ok_or_else(|| BackendError::new("set frequency", format!("unknown p-state {idx}")))?;
        let khz = u64::from(state.frequency.as_mhz()) * 1000;
        fs::write(self.layout.setspeed(), format!("{khz}\n"))
            .map_err(|e| BackendError::new("write scaling_setspeed", e.to_string()))
    }

    fn initial_credits(&self) -> Vec<Credit> {
        self.vms.iter().map(|vm| vm.credit).collect()
    }

    fn apply_credits(&mut self, credits: &[Credit]) -> Result<(), BackendError> {
        if credits.len() != self.vms.len() {
            return Err(BackendError::new(
                "apply credits",
                format!("{} credits for {} cgroups", credits.len(), self.vms.len()),
            ));
        }
        for (vm, credit) in self.vms.iter().zip(credits) {
            let content = if credit.is_uncapped() {
                format!("max {}\n", self.period_us)
            } else {
                // cgroup v2 allows quota > period (multi-CPU); we keep
                // the raw Equation 4 value, as the paper keeps credits
                // above 100%.
                let quota = (credit.as_fraction() * self.period_us as f64).round() as u64;
                format!("{quota} {}\n", self.period_us)
            };
            fs::write(self.layout.cpu_max(&vm.cgroup), content).map_err(|e| {
                BackendError::new("write cpu.max", format!("cgroup {}: {e}", vm.cgroup))
            })?;
        }
        Ok(())
    }

    fn global_load_percent(&self) -> Result<f64, BackendError> {
        let (busy, total) = self.read_stat()?;
        match self.last_stat {
            None => Err(BackendError::new(
                "read load",
                "prime_load was not called before the first period",
            )),
            Some((b0, t0)) => {
                let db = busy.saturating_sub(b0);
                let dt = total.saturating_sub(t0);
                if dt == 0 {
                    Ok(0.0)
                } else {
                    Ok(100.0 * db as f64 / dt as f64)
                }
            }
        }
    }
}

impl CgroupBackend {
    /// Advances the load-delta baseline to the current counters. Call
    /// once per control period, after
    /// [`global_load_percent`](PasBackend::global_load_percent).
    ///
    /// # Errors
    ///
    /// Propagates `/proc/stat` read failures.
    pub fn advance_load_baseline(&mut self) -> Result<(), BackendError> {
        self.prime_load()
    }
}
