//! The `repro trace-summary` analyzer.
//!
//! Parses a `pas-repro-trace/v1` JSONL document (header line, one
//! object per event, footer line with totals), validates it, and
//! reduces it to a human-readable report: event counts by kind, by
//! host and by VM, a frequency-transition histogram, and a migration
//! timeline table. Malformed input is rejected with the offending
//! line number — the analyzer doubles as the CI validator for traced
//! artefacts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use metrics::export::exact_num;
use serde::Value;

/// One row of the migration timeline, stitched from the
/// `migration_start` / `migration_blackout` / `migration_finish`
/// triple of a single migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRow {
    /// Pre-copy start, simulation seconds.
    pub at_s: f64,
    /// Migrating VM name.
    pub vm: String,
    /// Source host index.
    pub from_host: u64,
    /// Destination host index.
    pub to_host: u64,
    /// Pre-copy duration, seconds.
    pub copy_s: f64,
    /// Blackout duration, seconds (absent if the blackout event was
    /// dropped from the ring).
    pub downtime_s: Option<f64>,
    /// Completion time, seconds (absent if the finish event was
    /// dropped).
    pub finish_s: Option<f64>,
}

/// The reduced view of one trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// The header's `source` field.
    pub source: String,
    /// Labelled runs in the file (footer `runs`).
    pub runs: u64,
    /// Merged streams (footer `streams`).
    pub streams: u64,
    /// Event lines in the file (validated against the footer).
    pub events: u64,
    /// Events recorded before ring eviction (footer `recorded`).
    pub recorded: u64,
    /// Events evicted by full rings (footer `dropped`).
    pub dropped: u64,
    /// Event counts by kind name.
    pub by_kind: Vec<(String, u64)>,
    /// Event counts by host index (host-tagged streams only).
    pub by_host: Vec<(u64, u64)>,
    /// Events carrying no host tag (fleet-level streams).
    pub fleet_events: u64,
    /// Event counts by VM name, most active first.
    pub by_vm: Vec<(String, u64)>,
    /// Frequency-transition histogram: `(from_mhz, to_mhz, cause)`
    /// with occurrence counts, ascending by key.
    pub freq_transitions: Vec<((u64, u64, String), u64)>,
    /// Migration timeline in start order.
    pub migrations: Vec<MigrationRow>,
}

fn get<'v>(map: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn num(map: &[(String, Value)], key: &str, line: usize) -> Result<f64, String> {
    get(map, key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("line {line}: missing numeric field {key:?}"))
}

fn uint(map: &[(String, Value)], key: &str, line: usize) -> Result<u64, String> {
    let v = num(map, key, line)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!(
            "line {line}: field {key:?} is not a non-negative integer"
        ));
    }
    Ok(v as u64)
}

fn text_field(map: &[(String, Value)], key: &str, line: usize) -> Result<String, String> {
    get(map, key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("line {line}: missing string field {key:?}"))
}

/// Parses and validates a `pas-repro-trace/v1` JSONL document.
///
/// # Errors
///
/// Returns a message naming the offending line when the document is
/// not valid JSONL, the header schema is wrong, an event line lacks
/// `at_s`/`event`, or the footer totals disagree with the line count.
pub fn summarize(jsonl: &str) -> Result<TraceSummary, String> {
    let mut lines = jsonl
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());

    let (header_no, header_line) = lines.next().ok_or("trace file is empty")?;
    let header: Value =
        serde_json::from_str(header_line).map_err(|e| format!("line {}: {e}", header_no + 1))?;
    let header = header
        .as_map()
        .ok_or_else(|| format!("line {}: header is not an object", header_no + 1))?
        .to_vec();
    let schema = text_field(&header, "schema", header_no + 1)?;
    if schema != crate::SCHEMA {
        return Err(format!(
            "line {}: unsupported schema {schema:?} (expected {:?})",
            header_no + 1,
            crate::SCHEMA
        ));
    }
    let source = text_field(&header, "source", header_no + 1)?;

    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_host: BTreeMap<u64, u64> = BTreeMap::new();
    let mut fleet_events: u64 = 0;
    let mut by_vm: BTreeMap<String, u64> = BTreeMap::new();
    let mut freq: BTreeMap<(u64, u64, String), u64> = BTreeMap::new();
    let mut migrations: Vec<MigrationRow> = Vec::new();
    let mut event_count: u64 = 0;
    let mut footer: Option<(usize, Vec<(String, Value)>)> = None;

    for (idx, raw) in lines {
        let line = idx + 1;
        if footer.is_some() {
            return Err(format!("line {line}: content after the footer"));
        }
        let value: Value = serde_json::from_str(raw).map_err(|e| format!("line {line}: {e}"))?;
        let map = value
            .as_map()
            .ok_or_else(|| format!("line {line}: not a JSON object"))?
            .to_vec();
        if get(&map, "events").is_some() && get(&map, "event").is_none() {
            footer = Some((line, map));
            continue;
        }

        let at_s = num(&map, "at_s", line)?;
        let kind = text_field(&map, "event", line)?;
        event_count += 1;
        *by_kind.entry(kind.clone()).or_insert(0) += 1;
        match get(&map, "host").and_then(Value::as_num) {
            Some(h) => *by_host.entry(h as u64).or_insert(0) += 1,
            None => fleet_events += 1,
        }
        let vm = get(&map, "vm").and_then(Value::as_str).map(str::to_owned);
        if let Some(name) = &vm {
            *by_vm.entry(name.clone()).or_insert(0) += 1;
        }

        match kind.as_str() {
            "freq_change" => {
                let key = (
                    uint(&map, "from_mhz", line)?,
                    uint(&map, "to_mhz", line)?,
                    text_field(&map, "cause", line)?,
                );
                *freq.entry(key).or_insert(0) += 1;
            }
            "migration_start" => migrations.push(MigrationRow {
                at_s,
                vm: vm.ok_or_else(|| format!("line {line}: migration_start without vm"))?,
                from_host: uint(&map, "from_host", line)?,
                to_host: uint(&map, "to_host", line)?,
                copy_s: num(&map, "copy_s", line)?,
                downtime_s: None,
                finish_s: None,
            }),
            "migration_blackout" => {
                let downtime = num(&map, "downtime_s", line)?;
                if let Some(row) = migrations
                    .iter_mut()
                    .rev()
                    .find(|r| vm.as_deref() == Some(&r.vm) && r.downtime_s.is_none())
                {
                    row.downtime_s = Some(downtime);
                }
            }
            "migration_finish" => {
                if let Some(row) = migrations
                    .iter_mut()
                    .rev()
                    .find(|r| vm.as_deref() == Some(&r.vm) && r.finish_s.is_none())
                {
                    row.finish_s = Some(at_s);
                }
            }
            _ => {}
        }
    }

    let (footer_line, footer) = footer.ok_or("trace file has no footer (missing totals object)")?;
    let events = uint(&footer, "events", footer_line)?;
    if events != event_count {
        return Err(format!(
            "line {footer_line}: footer claims {events} events but the file has {event_count}"
        ));
    }

    let mut by_vm: Vec<(String, u64)> = by_vm.into_iter().collect();
    by_vm.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    Ok(TraceSummary {
        source,
        runs: uint(&footer, "runs", footer_line)?,
        streams: uint(&footer, "streams", footer_line)?,
        events,
        recorded: uint(&footer, "recorded", footer_line)?,
        dropped: uint(&footer, "dropped", footer_line)?,
        by_kind: by_kind.into_iter().collect(),
        by_host: by_host.into_iter().collect(),
        fleet_events,
        by_vm,
        freq_transitions: freq.into_iter().collect(),
        migrations,
    })
}

const MAX_HOST_ROWS: usize = 16;
const MAX_VM_ROWS: usize = 16;
const MAX_MIGRATION_ROWS: usize = 20;

impl TraceSummary {
    /// Renders the report as the text `repro trace-summary` prints.
    #[must_use]
    pub fn text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace summary: {}", self.source);
        let _ = writeln!(
            out,
            "  schema {}, {} run(s), {} stream(s)",
            crate::SCHEMA,
            self.runs,
            self.streams
        );
        let _ = writeln!(
            out,
            "  events {} (recorded {}, dropped {})",
            self.events, self.recorded, self.dropped
        );

        let _ = writeln!(out, "\nevents by kind:");
        for (kind, n) in &self.by_kind {
            let _ = writeln!(out, "  {kind:<20} {n:>8}");
        }

        let _ = writeln!(
            out,
            "\nevents by host ({} host(s), {} fleet-level):",
            self.by_host.len(),
            self.fleet_events
        );
        for (host, n) in self.by_host.iter().take(MAX_HOST_ROWS) {
            let _ = writeln!(out, "  host{host:<5} {n:>8}");
        }
        if self.by_host.len() > MAX_HOST_ROWS {
            let _ = writeln!(
                out,
                "  ... +{} more host(s)",
                self.by_host.len() - MAX_HOST_ROWS
            );
        }

        let _ = writeln!(out, "\nevents by vm ({} vm(s)):", self.by_vm.len());
        for (vm, n) in self.by_vm.iter().take(MAX_VM_ROWS) {
            let _ = writeln!(out, "  {vm:<12} {n:>8}");
        }
        if self.by_vm.len() > MAX_VM_ROWS {
            let _ = writeln!(out, "  ... +{} more vm(s)", self.by_vm.len() - MAX_VM_ROWS);
        }

        let _ = writeln!(
            out,
            "\nfrequency transitions ({}):",
            self.freq_transitions.len()
        );
        for ((from, to, cause), n) in &self.freq_transitions {
            let _ = writeln!(out, "  {from:>5} -> {to:<5} MHz  {cause:<9} {n:>6}");
        }

        let _ = writeln!(out, "\nmigrations ({}):", self.migrations.len());
        if !self.migrations.is_empty() {
            let _ = writeln!(
                out,
                "  {:>10}  {:<12} {:>5} {:>5}  {:>8}  {:>10}  {:>10}",
                "at_s", "vm", "from", "to", "copy_s", "downtime_s", "finish_s"
            );
            for row in self.migrations.iter().take(MAX_MIGRATION_ROWS) {
                let opt = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), exact_num);
                let _ = writeln!(
                    out,
                    "  {:>10}  {:<12} {:>5} {:>5}  {:>8}  {:>10}  {:>10}",
                    exact_num(row.at_s),
                    row.vm,
                    row.from_host,
                    row.to_host,
                    exact_num(row.copy_s),
                    opt(row.downtime_s),
                    opt(row.finish_s),
                );
            }
            if self.migrations.len() > MAX_MIGRATION_ROWS {
                let _ = writeln!(
                    out,
                    "  ... +{} more migration(s)",
                    self.migrations.len() - MAX_MIGRATION_ROWS
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{render_jsonl, EventKind, FreqCause, Record, Trace, Tracer};

    fn sample_jsonl() -> String {
        let mut fleet = Tracer::new(0, 64);
        let mut host = Tracer::new(1, 64).with_host(0);
        host.record(
            0.03,
            EventKind::SchedPick {
                vm: Some("v20".into()),
                preempt: false,
            },
        );
        host.record(
            30.0,
            EventKind::FreqChange {
                cause: FreqCause::Scheduler,
                from_mhz: 2800,
                to_mhz: 2100,
            },
        );
        fleet.record(
            30.0,
            EventKind::MigrationStart {
                vm: "v20".into(),
                from_host: 0,
                to_host: 1,
                mem_gib: 4.0,
                copy_s: 32.0,
            },
        );
        fleet.record(
            30.0,
            EventKind::MigrationBlackout {
                vm: "v20".into(),
                downtime_s: 0.3,
            },
        );
        fleet.record(
            62.3,
            EventKind::MigrationFinish {
                vm: "v20".into(),
                from_host: 0,
                to_host: 1,
                energy_j: 80.0,
            },
        );
        let trace = Trace::merge(vec![fleet, host]);
        render_jsonl("unit", &[(None, &trace)])
    }

    #[test]
    fn summarize_counts_kinds_hosts_vms_and_stitches_migrations() {
        let s = summarize(&sample_jsonl()).expect("valid trace");
        assert_eq!(s.source, "unit");
        assert_eq!(s.events, 5);
        assert_eq!(s.streams, 2);
        assert_eq!(s.dropped, 0);
        assert_eq!(
            s.by_kind,
            vec![
                ("freq_change".to_owned(), 1),
                ("migration_blackout".to_owned(), 1),
                ("migration_finish".to_owned(), 1),
                ("migration_start".to_owned(), 1),
                ("sched_pick".to_owned(), 1),
            ]
        );
        assert_eq!(s.by_host, vec![(0, 2)]);
        assert_eq!(s.fleet_events, 3);
        assert_eq!(s.by_vm, vec![("v20".to_owned(), 4)]);
        assert_eq!(
            s.freq_transitions,
            vec![((2800, 2100, "sched".to_owned()), 1)]
        );
        assert_eq!(s.migrations.len(), 1);
        let m = &s.migrations[0];
        assert_eq!(m.vm, "v20");
        assert_eq!((m.from_host, m.to_host), (0, 1));
        assert_eq!(m.downtime_s, Some(0.3));
        assert_eq!(m.finish_s, Some(62.3));
        let text = s.text();
        assert!(text.contains("trace summary: unit"));
        assert!(text.contains("sched_pick"));
        assert!(text.contains("2800 -> 2100"));
    }

    #[test]
    fn wrong_schema_is_rejected_with_line_number() {
        let doc = "{\"schema\":\"other/v9\",\"source\":\"x\"}\n";
        let err = summarize(doc).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("other/v9"), "{err}");
    }

    #[test]
    fn malformed_json_names_the_line() {
        let doc = format!(
            "{}\n{}\n",
            "{\"schema\":\"pas-repro-trace/v1\",\"source\":\"x\"}", "{not json"
        );
        let err = summarize(&doc).unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
    }

    #[test]
    fn footer_event_count_mismatch_is_rejected() {
        let doc = concat!(
            "{\"schema\":\"pas-repro-trace/v1\",\"source\":\"x\"}\n",
            "{\"at_s\":1,\"host\":null,\"vm\":null,\"event\":\"sla_violation\",\"sla_ratio\":0.9}\n",
            "{\"events\":7,\"recorded\":7,\"dropped\":0,\"streams\":1,\"runs\":1}\n",
        );
        let err = summarize(doc).unwrap_err();
        assert!(err.contains("claims 7 events but the file has 1"), "{err}");
    }

    #[test]
    fn missing_footer_is_rejected() {
        let doc = "{\"schema\":\"pas-repro-trace/v1\",\"source\":\"x\"}\n";
        let err = summarize(doc).unwrap_err();
        assert!(err.contains("no footer"), "{err}");
    }

    #[test]
    fn event_line_without_at_s_is_rejected() {
        let doc = concat!(
            "{\"schema\":\"pas-repro-trace/v1\",\"source\":\"x\"}\n",
            "{\"event\":\"sla_violation\"}\n",
            "{\"events\":1,\"recorded\":1,\"dropped\":0,\"streams\":1,\"runs\":1}\n",
        );
        let err = summarize(doc).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("at_s"), "{err}");
    }
}
