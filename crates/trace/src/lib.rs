//! Deterministic simulation event log.
//!
//! Every interesting simulation-time decision — scheduler picks,
//! DVFS transitions, cap rewrites, migrations, placement, epoch
//! boundaries, SLA violations — can be recorded as a typed
//! [`EventKind`] stamped with `(sim_time, host, vm)`. Events are
//! a pure function of simulation state, never of wall clock or worker
//! scheduling, so a trace is **byte-identical across `--jobs` and
//! shard counts** (wall-clock self-profiling lives in
//! [`metrics::profile`] and is written to a separate file precisely so
//! it cannot contaminate this contract).
//!
//! The pieces:
//!
//! * [`Tracer`] — a bounded in-memory ring per event stream (one
//!   stream per host plus one fleet-level stream). When the ring is
//!   full the oldest event is evicted and counted in
//!   [`Tracer::dropped`]; memory stays bounded no matter how long the
//!   run is.
//! * [`NullTracer`] — the disabled path: a no-op [`Record`] sink. The
//!   host keeps its tracer in an `Option` so the tracer-off hot path
//!   is a single branch; the `trace_overhead` bench group pins that
//!   this stays in the noise.
//! * [`Trace`] — the deterministic merge of many tracers, ordered by
//!   `(sim_time, stream, seq)`.
//! * [`render_jsonl`] — the JSONL artefact (schema
//!   [`SCHEMA`] = `pas-repro-trace/v1`): a header object, one flat
//!   object per event, and a footer with totals, written through
//!   [`metrics::export::JsonlWriter`].
//! * [`summary`] — the `repro trace-summary` analyzer, reducing a
//!   trace file to per-host/per-VM counts, a frequency-transition
//!   histogram and a migration timeline.

#![deny(missing_docs)]

use std::collections::VecDeque;

use metrics::export::{JsonValue, JsonlWriter};

pub mod summary;

/// Schema identifier written into every trace header.
pub const SCHEMA: &str = "pas-repro-trace/v1";

/// Default per-stream ring capacity (events kept before the oldest
/// are evicted and counted as dropped).
///
/// Sized so a full ring (16-byte entries → 32 KiB) stays resident in
/// a per-core L1/L2 cache: ring churn on the hot scheduling path then
/// costs a few percent instead of thrashing the simulation's own
/// working set. Callers wanting a longer tail pass an explicit
/// capacity to [`Tracer::new`] / `Fleet::enable_tracing`.
pub const DEFAULT_CAPACITY: usize = 2048;

/// What caused a frequency transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreqCause {
    /// The scheduler's accounting tick (PAS planning a new P-state).
    Scheduler,
    /// The cpufreq governor's sampling tick.
    Governor,
}

impl FreqCause {
    /// Stable string form used in the JSONL payload.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FreqCause::Scheduler => "sched",
            FreqCause::Governor => "governor",
        }
    }
}

/// Interned VM name: events are recorded millions of times on hot
/// scheduling paths, so carrying `Arc<str>` makes each record a
/// reference-count bump instead of a heap allocation. Producers
/// intern once (e.g. per VM at tracer install) and clone per event.
pub type VmName = std::sync::Arc<str>;

/// The typed payload of one trace event.
///
/// VM identity is carried by name (the scenario's `VmConfig` /
/// `VmSpec` name) so host-level and fleet-level events aggregate
/// under the same key in `trace-summary`; see [`VmName`] for why the
/// name is interned.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The scheduler's pick changed: a different VM (or none) now
    /// holds the CPU. `preempt` is true when the previously running
    /// VM was still runnable — i.e. it lost the CPU to a competitor
    /// rather than going idle.
    SchedPick {
        /// Name of the VM now running; `None` = CPU idle.
        vm: Option<VmName>,
        /// Whether the displaced VM was still runnable.
        preempt: bool,
    },
    /// The scheduler rewrote a VM's cap (PAS credit compensation,
    /// Equation 4). Emitted only when the cap actually changes.
    CapChange {
        /// Name of the capped VM.
        vm: VmName,
        /// New cap in percent of wall time; `None` = uncapped.
        cap_pct: Option<f64>,
    },
    /// The CPU changed P-state.
    FreqChange {
        /// Who initiated the transition.
        cause: FreqCause,
        /// Frequency before, MHz.
        from_mhz: u32,
        /// Frequency after, MHz.
        to_mhz: u32,
    },
    /// A VM finished its demand (work source exhausted and backlog
    /// drained).
    VmComplete {
        /// Name of the finished VM.
        vm: VmName,
    },
    /// The placement controller assigned a VM to a host (recorded
    /// once per VM when tracing is enabled on a fleet).
    Placement {
        /// Name of the placed VM.
        vm: VmName,
        /// Destination host index.
        to_host: usize,
        /// Zone the VM's name hashed to (sharded placement only).
        zone: Option<usize>,
        /// Whether the VM overflowed its zone's capacity and was
        /// re-placed serially by the coordinator.
        spilled: bool,
    },
    /// A live migration began (pre-copy starts).
    MigrationStart {
        /// Name of the migrating VM.
        vm: VmName,
        /// Source host index.
        from_host: usize,
        /// Destination host index.
        to_host: usize,
        /// VM memory footprint, GiB.
        mem_gib: f64,
        /// Pre-copy duration, seconds.
        copy_s: f64,
    },
    /// Pre-copy finished; the stop-and-copy blackout begins.
    MigrationBlackout {
        /// Name of the migrating VM.
        vm: VmName,
        /// Blackout duration, seconds.
        downtime_s: f64,
    },
    /// The migration completed on the destination host.
    MigrationFinish {
        /// Name of the migrated VM.
        vm: VmName,
        /// Source host index.
        from_host: usize,
        /// Destination host index.
        to_host: usize,
        /// Transfer energy charged to the fleet, joules.
        energy_j: f64,
    },
    /// A fleet control epoch ended.
    EpochEnd {
        /// Zero-based epoch index.
        epoch: u64,
        /// Fleet-mean host load over the epoch, percent.
        mean_load_pct: f64,
    },
    /// The run finished with delivered capacity below entitlement.
    SlaViolation {
        /// Delivered/entitled ratio (< 1 means violation).
        sla_ratio: f64,
    },
}

impl EventKind {
    /// Stable event name used as the JSONL `event` field.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SchedPick { .. } => "sched_pick",
            EventKind::CapChange { .. } => "cap_change",
            EventKind::FreqChange { .. } => "freq_change",
            EventKind::VmComplete { .. } => "vm_complete",
            EventKind::Placement { .. } => "placement",
            EventKind::MigrationStart { .. } => "migration_start",
            EventKind::MigrationBlackout { .. } => "migration_blackout",
            EventKind::MigrationFinish { .. } => "migration_finish",
            EventKind::EpochEnd { .. } => "epoch_end",
            EventKind::SlaViolation { .. } => "sla_violation",
        }
    }

    /// The VM this event is about, if any.
    #[must_use]
    pub fn vm(&self) -> Option<&str> {
        match self {
            EventKind::SchedPick { vm, .. } => vm.as_deref(),
            EventKind::CapChange { vm, .. }
            | EventKind::VmComplete { vm }
            | EventKind::Placement { vm, .. }
            | EventKind::MigrationStart { vm, .. }
            | EventKind::MigrationBlackout { vm, .. }
            | EventKind::MigrationFinish { vm, .. } => Some(vm),
            EventKind::FreqChange { .. }
            | EventKind::EpochEnd { .. }
            | EventKind::SlaViolation { .. } => None,
        }
    }

    /// Payload fields beyond `(at_s, host, vm, event)`, in schema
    /// order.
    fn payload(&self) -> Vec<(&'static str, JsonValue)> {
        match self {
            EventKind::SchedPick { preempt, .. } => vec![("preempt", (*preempt).into())],
            EventKind::CapChange { cap_pct, .. } => vec![("cap_pct", (*cap_pct).into())],
            EventKind::FreqChange {
                cause,
                from_mhz,
                to_mhz,
            } => vec![
                ("cause", cause.as_str().into()),
                ("from_mhz", (*from_mhz).into()),
                ("to_mhz", (*to_mhz).into()),
            ],
            EventKind::VmComplete { .. } => vec![],
            EventKind::Placement {
                to_host,
                zone,
                spilled,
                ..
            } => vec![
                ("to_host", (*to_host).into()),
                ("zone", (*zone).into()),
                ("spilled", (*spilled).into()),
            ],
            EventKind::MigrationStart {
                from_host,
                to_host,
                mem_gib,
                copy_s,
                ..
            } => vec![
                ("from_host", (*from_host).into()),
                ("to_host", (*to_host).into()),
                ("mem_gib", (*mem_gib).into()),
                ("copy_s", (*copy_s).into()),
            ],
            EventKind::MigrationBlackout { downtime_s, .. } => {
                vec![("downtime_s", (*downtime_s).into())]
            }
            EventKind::MigrationFinish {
                from_host,
                to_host,
                energy_j,
                ..
            } => vec![
                ("from_host", (*from_host).into()),
                ("to_host", (*to_host).into()),
                ("energy_j", (*energy_j).into()),
            ],
            EventKind::EpochEnd {
                epoch,
                mean_load_pct,
            } => vec![
                ("epoch", (*epoch).into()),
                ("mean_load_pct", (*mean_load_pct).into()),
            ],
            EventKind::SlaViolation { sla_ratio } => vec![("sla_ratio", (*sla_ratio).into())],
        }
    }
}

/// Index of an interned VM name in a [`Tracer`]'s name table (see
/// [`Tracer::intern`]). Copyable, so hot recording paths can stamp
/// events without touching the name's reference count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NameId(u32);

/// One recorded event: simulation time plus a packed payload word —
/// 16 bytes, `Copy`. Scheduler picks fire millions of times per
/// simulated fleet and are encoded entirely in `packed` (tag +
/// preempt bit + [`NameId`]); every other kind is rare and stores a
/// [`TAG_SIDE`] marker here with its full [`EventKind`] in the
/// tracer's side queue. Small `Copy` entries keep the hot record path
/// to one 16-byte store and halve the ring's cache footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SlotEvent {
    at_s: f64,
    packed: u64,
}

/// `packed` bit layout: bits 0–1 tag, bit 2 preempt (picks), bits
/// 32–63 the picked VM's [`NameId`] ([`TAG_PICK_SOME`] only).
const TAG_MASK: u64 = 0b11;
/// The scheduler picked nothing: the CPU went idle.
const TAG_PICK_NONE: u64 = 0;
/// The scheduler picked the VM in bits 32–63.
const TAG_PICK_SOME: u64 = 1;
/// The payload is the oldest unclaimed entry of the side queue.
const TAG_SIDE: u64 = 2;
/// Pick events: the displaced VM was still runnable.
const PREEMPT_BIT: u64 = 1 << 2;

/// A sink for trace events. Implemented by [`Tracer`] (bounded ring)
/// and [`NullTracer`] (discard); instrumentation that does not want
/// an `Option` branch can take `&mut dyn Record` instead.
pub trait Record {
    /// Records one event at simulation time `at_s`.
    fn record(&mut self, at_s: f64, kind: EventKind);

    /// Whether events are kept at all. Instrumentation may skip
    /// building expensive payloads (name clones) when this is false.
    fn enabled(&self) -> bool {
        true
    }
}

/// The disabled tracing path: discards every event.
///
/// ```
/// use trace::{EventKind, NullTracer, Record};
/// let mut t = NullTracer;
/// assert!(!t.enabled());
/// t.record(1.0, EventKind::SlaViolation { sla_ratio: 0.9 }); // no-op
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Record for NullTracer {
    fn record(&mut self, _at_s: f64, _kind: EventKind) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A bounded per-stream event ring.
///
/// Each simulation component that emits events owns one tracer with a
/// distinct `stream` id (fleet stream 0, host *h* stream *h + 1*).
/// Every recorded event gets a per-stream sequence number; when the
/// ring is full the oldest event is evicted and counted, so memory
/// stays bounded while the totals remain exact.
#[derive(Debug, Clone)]
pub struct Tracer {
    stream: usize,
    host: Option<usize>,
    capacity: usize,
    seq: u64,
    dropped: u64,
    names: Vec<VmName>,
    /// Flat ring: grows until `capacity`, then `write` wraps and
    /// overwrites oldest-first. No VecDeque head/tail bookkeeping on
    /// the hot store.
    events: Vec<SlotEvent>,
    /// Next overwrite position once the ring is full.
    write: usize,
    /// Payloads for [`TAG_SIDE`] slots, oldest first. At most one per
    /// ring slot, so bounded by `capacity`; evicting a side slot pops
    /// the front.
    side: VecDeque<EventKind>,
}

impl Tracer {
    /// Creates a tracer for `stream` keeping at most `capacity`
    /// events (a zero capacity is clamped to 1).
    #[must_use]
    pub fn new(stream: usize, capacity: usize) -> Self {
        Tracer {
            stream,
            host: None,
            capacity: capacity.max(1),
            seq: 0,
            dropped: 0,
            names: Vec::new(),
            events: Vec::new(),
            write: 0,
            side: VecDeque::new(),
        }
    }

    /// Interns a VM name into this tracer's name table, returning the
    /// copyable id the `record_pick` / `record_cap` fast paths take.
    /// Idempotent: interning the same name again returns the same id.
    pub fn intern(&mut self, name: &VmName) -> NameId {
        let found = self
            .names
            .iter()
            .position(|n| VmName::ptr_eq(n, name) || **n == **name);
        match found {
            Some(i) => NameId(u32::try_from(i).expect("name table fits u32")),
            None => {
                let id = NameId(u32::try_from(self.names.len()).expect("name table fits u32"));
                self.names.push(name.clone());
                id
            }
        }
    }

    #[inline]
    fn push(&mut self, at_s: f64, packed: u64) {
        if self.events.len() < self.capacity {
            self.events.push(SlotEvent { at_s, packed });
        } else {
            let w = self.write;
            // Overwrites proceed oldest-first, and side payloads are
            // queued oldest-first, so an evicted side slot's payload
            // is always the queue front.
            if self.events[w].packed & TAG_MASK == TAG_SIDE {
                self.side.pop_front();
            }
            self.events[w] = SlotEvent { at_s, packed };
            self.write = if w + 1 == self.capacity { 0 } else { w + 1 };
            self.dropped += 1;
        }
        self.seq += 1;
    }

    /// Records a scheduler pick change without touching a name's
    /// reference count — the allocation-free fast path for the
    /// highest-volume event kind. `vm` is `None` when the CPU went
    /// idle. Merges identically to recording
    /// [`EventKind::SchedPick`] through [`Record::record`].
    #[inline]
    pub fn record_pick(&mut self, at_s: f64, vm: Option<NameId>, preempt: bool) {
        let packed = match vm {
            Some(id) => TAG_PICK_SOME | (u64::from(id.0) << 32),
            None => TAG_PICK_NONE,
        } | if preempt { PREEMPT_BIT } else { 0 };
        self.push(at_s, packed);
    }

    /// Records a cap rewrite via an interned id — the id-based
    /// equivalent of recording [`EventKind::CapChange`]. Cap rewrites
    /// are orders of magnitude rarer than picks (one per accounting
    /// period at most), so they ride the side queue.
    #[inline]
    pub fn record_cap(&mut self, at_s: f64, vm: NameId, cap_pct: Option<f64>) {
        let vm = self.names[vm.0 as usize].clone();
        self.record(at_s, EventKind::CapChange { vm, cap_pct });
    }

    /// Tags every event of this stream with a host index (rendered as
    /// the JSONL `host` field).
    #[must_use]
    pub fn with_host(mut self, host: usize) -> Self {
        self.host = Some(host);
        self
    }

    /// The stream id.
    #[must_use]
    pub fn stream(&self) -> usize {
        self.stream
    }

    /// The host tag, if any.
    #[must_use]
    pub fn host(&self) -> Option<usize> {
        self.host
    }

    /// Events currently held in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events recorded on this stream (kept + dropped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Record for Tracer {
    fn record(&mut self, at_s: f64, kind: EventKind) {
        self.side.push_back(kind);
        self.push(at_s, TAG_SIDE);
    }
}

/// One event in a merged [`Trace`], annotated with its stream
/// identity so the merge order is reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedEvent {
    /// Simulation time, seconds.
    pub at_s: f64,
    /// Originating stream id.
    pub stream: usize,
    /// Per-stream sequence number.
    pub seq: u64,
    /// Host tag of the originating stream.
    pub host: Option<usize>,
    /// The typed payload.
    pub kind: EventKind,
}

/// The deterministic merge of one run's tracers.
///
/// Events are ordered by `(at_s, stream, seq)` — a pure function of
/// simulation state, so the merge is byte-stable no matter how many
/// worker threads or shards produced the streams.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<MergedEvent>,
    recorded: u64,
    dropped: u64,
    streams: usize,
}

impl Trace {
    /// Merges the given tracers into one ordered event list.
    #[must_use]
    pub fn merge(tracers: Vec<Tracer>) -> Self {
        let streams = tracers.len();
        let mut recorded = 0;
        let mut dropped = 0;
        let mut events = Vec::with_capacity(tracers.iter().map(Tracer::len).sum());
        for mut t in tracers {
            recorded += t.seq;
            dropped += t.dropped;
            let len = t.events.len();
            // Every record pushes exactly one entry, so the surviving
            // window holds the `len` newest consecutive sequence
            // numbers ending at `seq - 1`. Oldest-first ring order
            // starts at `write` once the ring has wrapped.
            let base = t.seq - len as u64;
            let start = if len < t.capacity { 0 } else { t.write };
            for i in 0..len {
                let ev = t.events[(start + i) % len];
                let kind = match ev.packed & TAG_MASK {
                    TAG_SIDE => t.side.pop_front().expect("side payload per side slot"),
                    tag => EventKind::SchedPick {
                        vm: (tag == TAG_PICK_SOME)
                            .then(|| t.names[(ev.packed >> 32) as usize].clone()),
                        preempt: ev.packed & PREEMPT_BIT != 0,
                    },
                };
                events.push(MergedEvent {
                    at_s: ev.at_s,
                    stream: t.stream,
                    seq: base + i as u64,
                    host: t.host,
                    kind,
                });
            }
        }
        events.sort_by(|a, b| {
            a.at_s
                .total_cmp(&b.at_s)
                .then(a.stream.cmp(&b.stream))
                .then(a.seq.cmp(&b.seq))
        });
        Trace {
            events,
            recorded,
            dropped,
            streams,
        }
    }

    /// The merged events in `(at_s, stream, seq)` order.
    #[must_use]
    pub fn events(&self) -> &[MergedEvent] {
        &self.events
    }

    /// Total events recorded across all streams (kept + dropped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Total events evicted by full rings.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of merged streams.
    #[must_use]
    pub fn streams(&self) -> usize {
        self.streams
    }
}

/// Renders one or more traces as a `pas-repro-trace/v1` JSONL
/// document: a header object, one flat object per event, and a footer
/// object with totals.
///
/// `parts` pairs an optional run label with each trace — a single run
/// passes `[(None, &trace)]`; a traced campaign passes one labelled
/// part per run, in plan order, and every event line carries its
/// `run` label so the concatenation stays unambiguous.
///
/// ```
/// use trace::{EventKind, Record, Trace, Tracer, render_jsonl};
/// let mut t = Tracer::new(0, 16);
/// t.record(0.5, EventKind::SlaViolation { sla_ratio: 0.9 });
/// let trace = Trace::merge(vec![t]);
/// let jsonl = render_jsonl("demo", &[(None, &trace)]);
/// let mut lines = jsonl.lines();
/// assert_eq!(
///     lines.next(),
///     Some("{\"schema\":\"pas-repro-trace/v1\",\"source\":\"demo\"}")
/// );
/// assert!(lines.next().unwrap().contains("\"event\":\"sla_violation\""));
/// assert!(lines.next().unwrap().starts_with("{\"events\":1,"));
/// ```
#[must_use]
pub fn render_jsonl(source: &str, parts: &[(Option<&str>, &Trace)]) -> String {
    let mut w = JsonlWriter::new();
    w.line(&[("schema", SCHEMA.into()), ("source", source.into())]);
    let mut events: u64 = 0;
    let mut recorded: u64 = 0;
    let mut dropped: u64 = 0;
    let mut streams: usize = 0;
    for (label, trace) in parts {
        recorded += trace.recorded();
        dropped += trace.dropped();
        streams += trace.streams();
        for ev in trace.events() {
            events += 1;
            let mut fields: Vec<(&str, JsonValue)> = Vec::with_capacity(8);
            if let Some(run) = label {
                fields.push(("run", (*run).into()));
            }
            fields.push(("at_s", ev.at_s.into()));
            fields.push(("host", ev.host.into()));
            fields.push(("vm", ev.kind.vm().map(str::to_owned).into()));
            fields.push(("event", ev.kind.name().into()));
            fields.extend(ev.kind.payload());
            w.line(&fields);
        }
    }
    w.line(&[
        ("events", events.into()),
        ("recorded", recorded.into()),
        ("dropped", dropped.into()),
        ("streams", streams.into()),
        ("runs", parts.len().into()),
    ]);
    w.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pick(vm: &str) -> EventKind {
        EventKind::SchedPick {
            vm: Some(vm.into()),
            preempt: false,
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut t = Tracer::new(1, 3);
        for i in 0..5 {
            t.record(i as f64, pick("v"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 2);
        // The survivors are the *newest* events.
        let trace = Trace::merge(vec![t]);
        assert_eq!(trace.events()[0].at_s, 2.0);
        assert_eq!(trace.events()[2].at_s, 4.0);
    }

    #[test]
    fn merge_orders_by_time_then_stream_then_seq() {
        let mut fleet = Tracer::new(0, 16);
        let mut host = Tracer::new(1, 16).with_host(0);
        host.record(1.0, pick("a"));
        host.record(1.0, pick("b"));
        fleet.record(
            1.0,
            EventKind::EpochEnd {
                epoch: 0,
                mean_load_pct: 50.0,
            },
        );
        fleet.record(0.5, EventKind::SlaViolation { sla_ratio: 0.9 });
        let trace = Trace::merge(vec![fleet, host]);
        let order: Vec<(f64, usize, u64)> = trace
            .events()
            .iter()
            .map(|e| (e.at_s, e.stream, e.seq))
            .collect();
        assert_eq!(
            order,
            vec![(0.5, 0, 1), (1.0, 0, 0), (1.0, 1, 0), (1.0, 1, 1)]
        );
        assert_eq!(trace.streams(), 2);
        assert_eq!(trace.recorded(), 4);
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn merge_is_invariant_to_tracer_insertion_order_within_a_time() {
        // Same streams handed over in a different order must yield the
        // same merged sequence (stream id, not vector position, breaks
        // ties).
        let mk = |stream: usize, names: &[&str]| {
            let mut t = Tracer::new(stream, 8);
            for n in names {
                t.record(2.0, pick(n));
            }
            t
        };
        let a = Trace::merge(vec![mk(1, &["x"]), mk(2, &["y"])]);
        let b = Trace::merge(vec![mk(2, &["y"]), mk(1, &["x"])]);
        let names = |t: &Trace| {
            t.events()
                .iter()
                .map(|e| e.kind.vm().unwrap().to_owned())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&a), names(&b));
    }

    #[test]
    fn jsonl_lines_have_fixed_field_order_and_exact_numbers() {
        let mut t = Tracer::new(1, 8).with_host(3);
        t.record(
            30.0,
            EventKind::FreqChange {
                cause: FreqCause::Governor,
                from_mhz: 2800,
                to_mhz: 2100,
            },
        );
        let trace = Trace::merge(vec![t]);
        let jsonl = render_jsonl("unit", &[(Some("base#42"), &trace)]);
        let event_line = jsonl.lines().nth(1).unwrap();
        assert_eq!(
            event_line,
            "{\"run\":\"base#42\",\"at_s\":30,\"host\":3,\"vm\":null,\
             \"event\":\"freq_change\",\"cause\":\"governor\",\
             \"from_mhz\":2800,\"to_mhz\":2100}"
        );
        let footer = jsonl.lines().nth(2).unwrap();
        assert_eq!(
            footer,
            "{\"events\":1,\"recorded\":1,\"dropped\":0,\"streams\":1,\"runs\":1}"
        );
    }

    #[test]
    fn footer_totals_include_dropped_events() {
        let mut t = Tracer::new(0, 2);
        for i in 0..4 {
            t.record(i as f64, pick("v"));
        }
        let trace = Trace::merge(vec![t]);
        let jsonl = render_jsonl("unit", &[(None, &trace)]);
        let footer = jsonl.lines().last().unwrap();
        assert_eq!(
            footer,
            "{\"events\":2,\"recorded\":4,\"dropped\":2,\"streams\":1,\"runs\":1}"
        );
    }

    #[test]
    fn null_tracer_discards_everything() {
        let mut t = NullTracer;
        assert!(!t.enabled());
        for i in 0..100 {
            t.record(i as f64, EventKind::SlaViolation { sla_ratio: 0.5 });
        }
        // Nothing to assert beyond "it did not allocate or panic";
        // enabled() is the contract instrumentation branches on.
        let real = Tracer::new(0, 4);
        assert!(Record::enabled(&real));
    }

    #[test]
    fn event_names_and_vm_extraction_are_stable() {
        let cases: Vec<(EventKind, &str, Option<&str>)> = vec![
            (pick("v1"), "sched_pick", Some("v1")),
            (
                EventKind::CapChange {
                    vm: "v2".into(),
                    cap_pct: Some(20.0),
                },
                "cap_change",
                Some("v2"),
            ),
            (
                EventKind::VmComplete { vm: "v3".into() },
                "vm_complete",
                Some("v3"),
            ),
            (
                EventKind::Placement {
                    vm: "v4".into(),
                    to_host: 1,
                    zone: Some(7),
                    spilled: false,
                },
                "placement",
                Some("v4"),
            ),
            (
                EventKind::MigrationStart {
                    vm: "v5".into(),
                    from_host: 0,
                    to_host: 1,
                    mem_gib: 4.0,
                    copy_s: 32.0,
                },
                "migration_start",
                Some("v5"),
            ),
            (
                EventKind::MigrationBlackout {
                    vm: "v5".into(),
                    downtime_s: 0.3,
                },
                "migration_blackout",
                Some("v5"),
            ),
            (
                EventKind::MigrationFinish {
                    vm: "v5".into(),
                    from_host: 0,
                    to_host: 1,
                    energy_j: 80.0,
                },
                "migration_finish",
                Some("v5"),
            ),
            (
                EventKind::EpochEnd {
                    epoch: 3,
                    mean_load_pct: 42.0,
                },
                "epoch_end",
                None,
            ),
            (
                EventKind::SlaViolation { sla_ratio: 0.98 },
                "sla_violation",
                None,
            ),
        ];
        for (kind, name, vm) in cases {
            assert_eq!(kind.name(), name);
            assert_eq!(kind.vm(), vm);
        }
    }
}
