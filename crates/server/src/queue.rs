//! The bounded in-process job queue and its worker.
//!
//! `POST /campaigns` enqueues an accepted spec; a dedicated drain
//! thread pops jobs FIFO and runs each through
//! [`campaign::run_with_progress`] on the server's `--jobs` worker
//! pool (one campaign at a time, each fanning its design-point runs
//! across the full pool — the same parallelism shape as
//! `repro campaign --jobs N`, which is what keeps the artefacts
//! byte-identical to a CLI run). The queue is bounded: submissions
//! beyond `capacity` waiting jobs answer 503 instead of growing
//! memory without limit.
//!
//! Job state lives in a registry the HTTP handlers read: queued →
//! running (with completed/total run counts fed by the progress
//! callback) → done (artefact set retained in memory and optionally
//! written to the `--out` directory) or failed.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use campaign::CampaignSpec;

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for the drain thread.
    Queued,
    /// Currently simulating.
    Running,
    /// Finished; artefacts are available.
    Done,
    /// The campaign errored (the spec passed validation but the run
    /// failed); `error` holds the message.
    Failed,
}

impl JobState {
    /// The lower-case wire name (`"queued"`, `"running"`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// One submitted campaign's status, as the handlers see it.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// The job id (`1`-based, in submission order).
    pub id: u64,
    /// The campaign name from the spec.
    pub name: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Runs completed so far (monotone; equals `total_runs` on
    /// completion).
    pub completed_runs: usize,
    /// `design points × replicates`, known at submission.
    pub total_runs: usize,
    /// The error message, for [`JobState::Failed`].
    pub error: Option<String>,
    /// The artefact set `(file name, contents)` once done — exactly
    /// what `repro campaign --out` would have written.
    pub artefacts: Vec<(String, String)>,
}

struct State {
    /// Waiting job ids, FIFO.
    queue: VecDeque<u64>,
    /// Every job ever submitted, indexed by `id - 1`.
    jobs: Vec<JobStatus>,
    /// The accepted specs, parallel to `jobs` — what the drain thread
    /// actually runs.
    specs: Vec<CampaignSpec>,
    /// Closed queues reject submissions and wake the drain thread to
    /// finish what is left and exit.
    closed: bool,
}

/// The bounded queue plus the job registry; shared between the accept
/// loop (submit/status) and the drain thread (pop/update).
pub struct JobQueue {
    state: Mutex<State>,
    wake: Condvar,
    capacity: usize,
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// `capacity` jobs are already waiting.
    Full,
    /// The server is shutting down.
    Closed,
}

impl JobQueue {
    /// A queue admitting at most `capacity` waiting jobs.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: Vec::new(),
                specs: Vec::new(),
                closed: false,
            }),
            wake: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a validated spec, returning the new job's id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when `capacity` jobs are already waiting,
    /// [`SubmitError::Closed`] after [`close`](JobQueue::close).
    pub fn submit(&self, spec: &CampaignSpec, total_runs: usize) -> Result<u64, SubmitError> {
        let mut state = self.state.lock().expect("no poisoned queue");
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.queue.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        let id = state.jobs.len() as u64 + 1;
        state.jobs.push(JobStatus {
            id,
            name: spec.name.clone(),
            state: JobState::Queued,
            completed_runs: 0,
            total_runs,
            error: None,
            artefacts: Vec::new(),
        });
        state.specs.push(spec.clone());
        state.queue.push_back(id);
        self.wake.notify_one();
        Ok(id)
    }

    /// A snapshot of job `id`'s status.
    #[must_use]
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let state = self.state.lock().expect("no poisoned queue");
        state.jobs.get(id.checked_sub(1)? as usize).cloned()
    }

    /// Jobs submitted so far (any state).
    #[must_use]
    pub fn submitted(&self) -> usize {
        self.state.lock().expect("no poisoned queue").jobs.len()
    }

    /// Jobs waiting or running (i.e. not yet drained).
    #[must_use]
    pub fn outstanding(&self) -> usize {
        let state = self.state.lock().expect("no poisoned queue");
        state
            .jobs
            .iter()
            .filter(|j| matches!(j.state, JobState::Queued | JobState::Running))
            .count()
    }

    /// Blocks until a job is available (marking it running) or the
    /// queue is closed *and* empty (`None`: the drain thread exits).
    /// Closing never drops queued work — every accepted job runs.
    #[must_use]
    pub fn pop_for_run(&self) -> Option<u64> {
        let mut state = self.state.lock().expect("no poisoned queue");
        loop {
            if let Some(id) = state.queue.pop_front() {
                state.jobs[id as usize - 1].state = JobState::Running;
                return Some(id);
            }
            if state.closed {
                return None;
            }
            state = self.wake.wait(state).expect("no poisoned queue");
        }
    }

    /// Progress-callback hook: records `completed` of `total` runs
    /// for job `id`.
    pub fn record_progress(&self, id: u64, completed: usize, total: usize) {
        let mut state = self.state.lock().expect("no poisoned queue");
        let job = &mut state.jobs[id as usize - 1];
        // Worker threads race on the callback; keep the counter
        // monotone.
        job.completed_runs = job.completed_runs.max(completed);
        job.total_runs = total;
    }

    /// Marks job `id` done with its artefact set.
    pub fn record_done(&self, id: u64, artefacts: Vec<(String, String)>) {
        let mut state = self.state.lock().expect("no poisoned queue");
        let job = &mut state.jobs[id as usize - 1];
        job.state = JobState::Done;
        job.completed_runs = job.total_runs;
        job.artefacts = artefacts;
    }

    /// Marks job `id` failed.
    pub fn record_failed(&self, id: u64, error: String) {
        let mut state = self.state.lock().expect("no poisoned queue");
        let job = &mut state.jobs[id as usize - 1];
        job.state = JobState::Failed;
        job.error = Some(error);
    }

    /// Closes the queue: rejects further submissions and lets the
    /// drain thread exit once the backlog is empty.
    pub fn close(&self) {
        self.state.lock().expect("no poisoned queue").closed = true;
        self.wake.notify_all();
    }

    /// The accepted spec of job `id` — what the drain thread runs.
    #[must_use]
    pub fn spec(&self, id: u64) -> Option<CampaignSpec> {
        let state = self.state.lock().expect("no poisoned queue");
        state.specs.get(id.checked_sub(1)? as usize).cloned()
    }

    /// The waiting-job bound this queue admits.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_spec(name: &str) -> CampaignSpec {
        CampaignSpec::from_json(&format!(
            r#"{{
                "name": "{name}",
                "scenario": {{ "kind": "host", "scheduler": "credit", "duration_s": 300,
                    "vms": [ {{ "name": "v", "credit_pct": 20,
                               "workload": {{ "kind": "fluid", "load_pct": 50 }} }} ] }},
                "seeds": {{ "base": 1, "replicates": 1 }}
            }}"#
        ))
        .expect("valid spec")
    }

    #[test]
    fn submit_assigns_sequential_ids_and_bounds_the_backlog() {
        let q = JobQueue::new(2);
        assert_eq!(q.submit(&mini_spec("a"), 4), Ok(1));
        assert_eq!(q.submit(&mini_spec("b"), 4), Ok(2));
        assert_eq!(q.submit(&mini_spec("c"), 4), Err(SubmitError::Full));
        assert_eq!(q.submitted(), 2, "the rejected job is not registered");
        assert_eq!(q.outstanding(), 2);
        let s = q.status(1).unwrap();
        assert_eq!(
            (s.state, s.completed_runs, s.total_runs),
            (JobState::Queued, 0, 4)
        );
        assert!(q.status(0).is_none());
        assert!(q.status(99).is_none());
    }

    #[test]
    fn pop_marks_running_and_freeing_a_slot_readmits() {
        let q = JobQueue::new(1);
        q.submit(&mini_spec("a"), 1).unwrap();
        assert_eq!(q.submit(&mini_spec("b"), 1), Err(SubmitError::Full));
        assert_eq!(q.pop_for_run(), Some(1));
        assert_eq!(q.status(1).unwrap().state, JobState::Running);
        // The waiting slot freed up even though the job still runs.
        assert_eq!(q.submit(&mini_spec("b"), 1), Ok(2));
    }

    #[test]
    fn lifecycle_progress_done_and_failed() {
        let q = JobQueue::new(4);
        q.submit(&mini_spec("a"), 6).unwrap();
        q.submit(&mini_spec("b"), 2).unwrap();
        assert_eq!(q.pop_for_run(), Some(1));
        q.record_progress(1, 2, 6);
        q.record_progress(1, 1, 6); // a racing, older update
        let s = q.status(1).unwrap();
        assert_eq!(s.completed_runs, 2, "progress is monotone");
        q.record_done(1, vec![("a-summary.json".to_owned(), "{}".to_owned())]);
        let s = q.status(1).unwrap();
        assert_eq!(s.state, JobState::Done);
        assert_eq!(s.completed_runs, 6, "done implies all runs");
        assert_eq!(s.artefacts.len(), 1);

        assert_eq!(q.pop_for_run(), Some(2));
        q.record_failed(2, "boom".to_owned());
        let s = q.status(2).unwrap();
        assert_eq!(s.state, JobState::Failed);
        assert_eq!(s.error.as_deref(), Some("boom"));
        assert_eq!(q.outstanding(), 0);
    }

    #[test]
    fn close_rejects_submissions_but_drains_the_backlog() {
        let q = JobQueue::new(4);
        q.submit(&mini_spec("a"), 1).unwrap();
        q.close();
        assert_eq!(q.submit(&mini_spec("b"), 1), Err(SubmitError::Closed));
        // The already-accepted job still comes out...
        assert_eq!(q.pop_for_run(), Some(1));
        // ...and only then does the drain thread get its exit signal.
        assert_eq!(q.pop_for_run(), None);
    }

    #[test]
    fn pop_blocks_until_submit_from_another_thread() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let popper = {
            let q = q.clone();
            std::thread::spawn(move || q.pop_for_run())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.submit(&mini_spec("a"), 1).unwrap();
        assert_eq!(popper.join().unwrap(), Some(1));
    }
}
