//! The daemon: config, routes, accept loop, drain thread, shutdown.

use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use metrics::export::{JsonValue, JsonlWriter};
use metrics::profile::Profiler;

use crate::http::{self, Request, Response};
use crate::middleware::{self, Ctx, LayerSpec, LogSink, Middleware};
use crate::queue::{JobQueue, JobState, SubmitError};

/// Everything `repro serve` configures, with the same defaults.
pub struct ServerConfig {
    /// Bind address (`127.0.0.1` by default; `0.0.0.0` to expose).
    pub addr: String,
    /// Bind port; `0` asks the OS for an ephemeral port (tests).
    pub port: u16,
    /// Worker threads each campaign's runs fan out across.
    pub jobs: usize,
    /// The bearer token `TokenAuth` requires (`None`: open server).
    pub token: Option<String>,
    /// Requests/second/client `RateLimit` admits (`None`: unlimited).
    pub rate: Option<f64>,
    /// Run campaigns at `--quick` fidelity.
    pub quick: bool,
    /// Also write each finished job's artefacts to this directory
    /// (the same three files `repro campaign --out` writes).
    pub out: Option<PathBuf>,
    /// Waiting-job bound of the submission queue.
    pub queue_depth: usize,
    /// Request-body bound in bytes.
    pub max_body_bytes: usize,
    /// The middleware composition, outside-in.
    pub chain: Vec<LayerSpec>,
    /// Where the access log goes.
    pub log: LogSink,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1".to_owned(),
            port: 7077,
            jobs: 1,
            token: None,
            rate: None,
            quick: false,
            out: None,
            queue_depth: 64,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            chain: vec![
                LayerSpec::RequestLog,
                LayerSpec::TokenAuth,
                LayerSpec::RateLimit,
                LayerSpec::SpecValidation,
            ],
            log: middleware::stderr_sink(),
        }
    }
}

/// State shared by the accept loop, the handlers and the drain
/// thread.
struct Shared {
    queue: JobQueue,
    profiler: Mutex<Profiler>,
    shutdown: AtomicBool,
    quick: bool,
    jobs: usize,
    out: Option<PathBuf>,
}

/// A bound, not-yet-serving server. [`Server::bind`] then
/// [`Server::run`]; [`Server::local_addr`] in between is how tests
/// learn the ephemeral port.
pub struct Server {
    listener: TcpListener,
    chain: Vec<Box<dyn Middleware>>,
    shared: Arc<Shared>,
    max_body_bytes: usize,
}

impl Server {
    /// Binds the configured address/port and assembles the middleware
    /// chain.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, no permission).
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind((cfg.addr.as_str(), cfg.port))?;
        let chain =
            middleware::build_chain(&cfg.chain, cfg.token.as_deref(), cfg.rate, cfg.log.clone());
        Ok(Server {
            listener,
            chain,
            shared: Arc::new(Shared {
                queue: JobQueue::new(cfg.queue_depth),
                profiler: Mutex::new(Profiler::new()),
                shutdown: AtomicBool::new(false),
                quick: cfg.quick,
                jobs: cfg.jobs.max(1),
                out: cfg.out,
            }),
            max_body_bytes: cfg.max_body_bytes,
        })
    }

    /// The address actually bound (the ephemeral port, for `port: 0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `POST /shutdown`: accepts connections one at a
    /// time (campaigns run on the drain thread's worker pool, so
    /// request handling stays cheap), then drains the queue and
    /// returns. Every accepted campaign completes before this
    /// returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures. Per-connection errors
    /// (parse failures, client disconnects) are answered or dropped
    /// without taking the server down.
    pub fn run(self) -> std::io::Result<()> {
        let shared = self.shared.clone();
        std::thread::scope(|scope| {
            let drain = scope.spawn(|| drain_loop(&shared));
            for stream in self.listener.incoming() {
                match stream {
                    Ok(stream) => self.handle_connection(stream),
                    Err(e) => {
                        eprintln!("accept failed: {e}");
                        continue;
                    }
                }
                if self.shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            self.shared.queue.close();
            drain.join().expect("drain thread never panics");
            Ok(())
        })
    }

    /// One connection: parse, run the chain, write the response,
    /// merge the per-layer timings into the profiler.
    fn handle_connection(&self, stream: TcpStream) {
        // A stuck client must not wedge the (serial) accept loop.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let client = stream
            .peer_addr()
            .map(|a| a.ip().to_string())
            .unwrap_or_else(|_| "unknown".to_owned());
        let mut reader = BufReader::new(stream);
        let response = match http::read_request(&mut reader, self.max_body_bytes) {
            Ok(request) => {
                let mut ctx = Ctx::for_client(&client);
                let shared = self.shared.clone();
                let handler = move |req: &Request, ctx: &mut Ctx| route(&shared, req, ctx);
                let response = middleware::run_chain(&self.chain, &handler, &request, &mut ctx);
                let mut profiler = self.shared.profiler.lock().expect("no poisoned profiler");
                profiler.count("requests", 1);
                profiler.count(&format!("responses_{}xx", response.status / 100), 1);
                for (layer, ms) in &ctx.timings {
                    profiler.add_span_ms(&format!("mw:{layer}"), *ms);
                }
                response
            }
            Err(e) => {
                let mut profiler = self.shared.profiler.lock().expect("no poisoned profiler");
                profiler.count("requests", 1);
                profiler.count("parse_errors", 1);
                Response::error(e.status, &e.message)
            }
        };
        let mut stream = reader.into_inner();
        if let Err(e) = response.write_to(&mut stream) {
            eprintln!("response write failed: {e}");
        }
    }
}

/// The drain thread: pop jobs FIFO, run each campaign on the worker
/// pool, record the outcome (and write artefacts to `--out`).
fn drain_loop(shared: &Shared) {
    while let Some(id) = shared.queue.pop_for_run() {
        let spec = shared.queue.spec(id).expect("popped jobs have specs");
        let started = std::time::Instant::now();
        let outcome =
            campaign::run_with_progress(&spec, shared.quick, shared.jobs, &|completed, total| {
                shared.queue.record_progress(id, completed, total)
            });
        let ms = started.elapsed().as_secs_f64() * 1e3;
        {
            let mut profiler = shared.profiler.lock().expect("no poisoned profiler");
            profiler.add_span_ms("campaign_run", ms);
            profiler.count("campaigns_run", 1);
        }
        match outcome.map_err(|e| e.to_string()).and_then(|report| {
            report
                .artefact_files()
                .map_err(|e| format!("artefact serialization failed: {e}"))
        }) {
            Ok(artefacts) => {
                if let Some(dir) = &shared.out {
                    for (name, content) in &artefacts {
                        let path = dir.join(name);
                        if let Err(e) = metrics::export::write_artifact(&path, content) {
                            eprintln!("failed to write {}: {e}", path.display());
                        }
                    }
                }
                shared.queue.record_done(id, artefacts);
            }
            Err(message) => shared.queue.record_failed(id, message),
        }
    }
}

/// The innermost chain layer: route dispatch.
fn route(shared: &Shared, req: &Request, ctx: &mut Ctx) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let mut w = JsonlWriter::new();
            w.line(&[
                ("status", "ok".into()),
                ("jobs", shared.jobs.into()),
                ("quick", shared.quick.into()),
                ("submitted", shared.queue.submitted().into()),
                ("outstanding", shared.queue.outstanding().into()),
            ]);
            Response::json(200, w.into_string())
        }
        ("GET", "/profilez") => {
            let report = shared
                .profiler
                .lock()
                .expect("no poisoned profiler")
                .report();
            match metrics::export::to_json(&report) {
                Ok(json) => Response::json(200, json),
                Err(e) => Response::error(500, &format!("profile serialization failed: {e}")),
            }
        }
        ("POST", "/campaigns") => submit_campaign(shared, req, ctx),
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let mut w = JsonlWriter::new();
            w.line(&[
                ("status", "shutting down".into()),
                ("draining", shared.queue.outstanding().into()),
            ]);
            Response::json(200, w.into_string())
        }
        ("GET", path) => campaign_get(shared, path),
        (_, "/healthz" | "/profilez" | "/campaigns" | "/shutdown") => {
            Response::error(405, "method not allowed on this path")
        }
        _ => Response::error(404, "no such path"),
    }
}

/// `POST /campaigns`: the spec was parsed and expanded by
/// [`middleware::SpecValidation`]; re-validate here anyway so a
/// config that drops that layer still cannot crash the handler.
fn submit_campaign(shared: &Shared, req: &Request, ctx: &mut Ctx) -> Response {
    let spec = match ctx.spec.take() {
        Some(spec) => spec,
        None => {
            let Ok(text) = std::str::from_utf8(&req.body) else {
                return Response::error(400, "campaign spec body is not UTF-8");
            };
            match campaign::CampaignSpec::from_json(text) {
                Ok(spec) => spec,
                Err(e) => return Response::error(400, &format!("invalid campaign spec: {e}")),
            }
        }
    };
    let total_runs = match campaign::expand(&spec) {
        Ok(expansion) => expansion.points.len() * expansion.replicates,
        Err(e) => return Response::error(400, &format!("invalid campaign spec: {e}")),
    };
    match shared.queue.submit(&spec, total_runs) {
        Ok(id) => {
            let mut w = JsonlWriter::new();
            w.line(&[
                ("id", id.into()),
                ("name", spec.name.as_str().into()),
                ("total_runs", total_runs.into()),
                ("status_url", format!("/campaigns/{id}").into()),
                ("summary_url", format!("/campaigns/{id}/summary").into()),
            ]);
            Response::json(202, w.into_string())
        }
        Err(SubmitError::Full) => Response::error(
            503,
            &format!(
                "queue full ({} waiting jobs); retry later",
                shared.queue.capacity()
            ),
        )
        .with_header("retry-after", "5"),
        Err(SubmitError::Closed) => Response::error(503, "server is shutting down"),
    }
}

/// `GET /campaigns/<id>` and `GET /campaigns/<id>/summary`.
fn campaign_get(shared: &Shared, path: &str) -> Response {
    let Some(rest) = path.strip_prefix("/campaigns/") else {
        return Response::error(404, "no such path");
    };
    let (id_part, want_summary) = match rest.strip_suffix("/summary") {
        Some(id_part) => (id_part, true),
        None => (rest, false),
    };
    let Ok(id) = id_part.parse::<u64>() else {
        return Response::error(404, &format!("malformed campaign id {id_part:?}"));
    };
    let Some(status) = shared.queue.status(id) else {
        return Response::error(404, &format!("no campaign {id}"));
    };
    if !want_summary {
        let mut w = JsonlWriter::new();
        let mut fields: Vec<(&str, JsonValue)> = vec![
            ("id", status.id.into()),
            ("name", status.name.as_str().into()),
            ("state", status.state.name().into()),
            ("completed_runs", status.completed_runs.into()),
            ("total_runs", status.total_runs.into()),
        ];
        if let Some(error) = &status.error {
            fields.push(("error", error.as_str().into()));
        }
        w.line(&fields);
        return Response::json(200, w.into_string());
    }
    match status.state {
        JobState::Done => {
            let summary = status
                .artefacts
                .iter()
                .find(|(name, _)| name.ends_with("-summary.json"))
                .map(|(_, content)| content.clone());
            match summary {
                Some(content) => Response::json(200, content),
                None => Response::error(500, "finished job lost its summary artefact"),
            }
        }
        JobState::Failed => Response::error(
            409,
            &format!(
                "campaign {id} failed: {}",
                status.error.as_deref().unwrap_or("unknown error")
            ),
        ),
        JobState::Queued | JobState::Running => Response::error(
            409,
            &format!(
                "campaign {id} is {} ({}/{} runs); retry when done",
                status.state.name(),
                status.completed_runs,
                status.total_runs
            ),
        ),
    }
}

/// A convenience used by `repro serve`: bind, print the bound
/// address, serve until shutdown.
///
/// # Errors
///
/// Propagates bind and accept-loop failures.
pub fn serve(cfg: ServerConfig) -> std::io::Result<()> {
    let server = Server::bind(cfg)?;
    let addr = server.local_addr()?;
    let mut stdout = std::io::stdout();
    // The parseable boot line tests and scripts wait for.
    let _ = writeln!(stdout, "listening on http://{addr}");
    let _ = stdout.flush();
    server.run()
}
