//! A minimal, std-only HTTP/1.1 layer.
//!
//! The vendored-shim constraint rules out hyper/axum, and the server
//! only needs a small, well-understood slice of the protocol: one
//! request per connection (`Connection: close`), a request line,
//! headers, and an optional `Content-Length` body. This module parses
//! that slice defensively — bounded head size, bounded body size,
//! actionable parse errors that map onto 4xx responses — and renders
//! responses. Everything is generic over [`std::io::BufRead`] /
//! [`std::io::Write`], so the parser and writer are unit-testable on
//! in-memory buffers without a socket.

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// Upper bound on the request line + headers, in bytes. Oversized
/// heads are rejected before any allocation proportional to the
/// claimed size.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default upper bound on a request body (campaign specs are a few
/// KiB; 1 MiB leaves two orders of magnitude of headroom).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path, lower-cased header names, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// The request path, without scheme/authority (`/campaigns/3`).
    pub path: String,
    /// `(name, value)` pairs in arrival order; names are lower-cased
    /// at parse time so lookups are case-insensitive per RFC 9112.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said
    /// otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request failed to parse, carrying the HTTP status the
/// connection handler should answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The status to answer with (`400` or `413`).
    pub status: u16,
    /// A one-line operator-facing reason.
    pub message: String,
}

impl ParseError {
    fn bad(message: impl Into<String>) -> Self {
        ParseError {
            status: 400,
            message: message.into(),
        }
    }

    fn too_large(message: impl Into<String>) -> Self {
        ParseError {
            status: 413,
            message: message.into(),
        }
    }
}

/// Reads one CRLF- (or LF-) terminated line, charging its bytes
/// against `budget`.
fn read_line(r: &mut impl BufRead, budget: &mut usize) -> Result<String, ParseError> {
    let mut raw = Vec::new();
    std::io::Read::take(&mut *r, *budget as u64 + 1)
        .read_until(b'\n', &mut raw)
        .map_err(|e| ParseError::bad(format!("read failed: {e}")))?;
    if raw.len() > *budget {
        return Err(ParseError::too_large(format!(
            "request head exceeds {MAX_HEAD_BYTES} bytes"
        )));
    }
    *budget -= raw.len();
    if !raw.ends_with(b"\n") {
        return Err(ParseError::bad("truncated request head"));
    }
    raw.pop();
    if raw.ends_with(b"\r") {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| ParseError::bad("request head is not UTF-8"))
}

/// Parses one HTTP/1.1 request from `r`: request line, headers, and a
/// `Content-Length` body of at most `max_body` bytes.
///
/// # Errors
///
/// Returns a [`ParseError`] carrying status 400 for malformed input
/// (bad request line, non-numeric length, truncated body, bodies
/// without a declared length) and 413 when the head or the declared
/// body length exceeds its bound.
pub fn read_request(r: &mut impl BufRead, max_body: usize) -> Result<Request, ParseError> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = read_line(r, &mut budget)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(ParseError::bad(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::bad(format!(
            "unsupported protocol version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::bad(format!("malformed header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let request = Request {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        body: Vec::new(),
    };
    let Some(length) = request.header("content-length") else {
        return Ok(request);
    };
    let length: usize = length
        .parse()
        .map_err(|_| ParseError::bad(format!("non-numeric content-length {length:?}")))?;
    if length > max_body {
        return Err(ParseError::too_large(format!(
            "body of {length} bytes exceeds the {max_body}-byte limit"
        )));
    }
    let mut body = vec![0u8; length];
    r.read_exact(&mut body)
        .map_err(|_| ParseError::bad("body shorter than content-length"))?;
    Ok(Request { body, ..request })
}

/// The reason phrase for every status this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response: status, extra headers, body. `Content-Length`,
/// `Connection: close` and the status line are rendered by
/// [`write_to`](Response::write_to); callers only add
/// content-type-style headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// Extra `(name, value)` headers in emission order.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response: the body must already be valid JSON (build it
    /// with [`metrics::export::json_str`] /
    /// [`metrics::export::JsonlWriter`] so client-supplied strings —
    /// control characters included — can never break the encoding).
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            headers: vec![("content-type".to_owned(), "application/json".to_owned())],
            body: body.into_bytes(),
        }
    }

    /// A JSON error envelope `{"error": <message>}`; the message is
    /// escaped through [`metrics::export::json_str`], so arbitrary
    /// client-supplied text (spec parse errors echo the spec) stays
    /// valid JSON.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!("{{\"error\":{}}}\n", metrics::export::json_str(message)),
        )
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Renders the response: status line, caller headers,
    /// `Content-Length`, `Connection: close`, blank line, body.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut head = String::new();
        let _ = write!(head, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status));
        for (name, value) in &self.headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        let _ = write!(head, "content-length: {}\r\n", self.body.len());
        head.push_str("connection: close\r\n\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut io::BufReader::new(bytes), DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_content_length_body() {
        let req =
            parse(b"POST /campaigns HTTP/1.1\r\ncontent-length: 11\r\n\r\n{\"a\": true}").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\": true}");
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let req = parse(b"GET / HTTP/1.1\r\nAuthorization: Bearer t\r\n\r\n").unwrap();
        assert_eq!(req.header("authorization"), Some("Bearer t"));
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for bad in [
            &b"nonsense\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET no-slash HTTP/1.1\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err.status, 400, "{bad:?}: {}", err.message);
        }
    }

    #[test]
    fn malformed_headers_and_truncated_bodies_are_400() {
        let err = parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("header"), "{}", err.message);

        let err = parse(b"POST / HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort").unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("shorter"), "{}", err.message);

        let err = parse(b"POST / HTTP/1.1\r\ncontent-length: many\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn oversized_bodies_are_413_before_reading_them() {
        // The declared length alone triggers the rejection: no body
        // bytes follow and none are awaited.
        let req = b"POST /campaigns HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n";
        let err = read_request(&mut io::BufReader::new(&req[..]), 1024).unwrap_err();
        assert_eq!(err.status, 413);
        assert!(err.message.contains("1024"), "{}", err.message);
    }

    #[test]
    fn oversized_heads_are_413() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn response_renders_status_headers_length_and_body() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".to_owned())
            .with_header("x-extra", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("x-extra: 1\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
    }

    #[test]
    fn error_envelope_escapes_control_characters() {
        let resp = Response::error(400, "bad\nname: \u{1}\"quoted\"");
        let body = String::from_utf8(resp.body).unwrap();
        assert_eq!(body, "{\"error\":\"bad\\nname: \\u0001\\\"quoted\\\"\"}\n");
        // And the envelope reparses as the original message.
        let v: serde::Value = serde_json::from_str(&body).unwrap();
        let map = v.as_map().unwrap();
        assert_eq!(map[0].1.as_str(), Some("bad\nname: \u{1}\"quoted\""));
    }
}
