//! Campaign-as-a-service: `repro serve`.
//!
//! A std-only HTTP/1.1 daemon that exposes the campaign engine over
//! the network through a composable middleware chain — the service
//! shape of the source paper's argument, where resource management
//! (admission control, accounting, enforcement) wraps the computation
//! as separable layers rather than being welded into it.
//!
//! ```text
//!           ┌─────────────────────────────────────────────┐
//! client ──▶│ RequestLog → TokenAuth → RateLimit →        │
//!           │   SpecValidation → handler                  │
//!           └───────────────┬─────────────────────────────┘
//!                           │ POST /campaigns (bounded queue)
//!                           ▼
//!                 drain thread ── campaign::run_with_progress
//!                                 (the same engine, pool and
//!                                  artefact path as the CLI, so
//!                                  results are byte-identical)
//! ```
//!
//! - [`http`] — the minimal HTTP/1.1 reader/writer (no dependencies;
//!   request-line + headers + `Content-Length` bodies only).
//! - [`middleware`] — the [`middleware::Middleware`] trait, the four
//!   layers, and [`middleware::build_chain`] which assembles whatever
//!   order the config lists.
//! - [`queue`] — the bounded job queue and registry between the
//!   accept loop and the drain thread.
//! - [`server`] — config, routes, accept loop, graceful shutdown.
//!
//! Endpoints: `POST /campaigns` (202 + job id), `GET /campaigns/<id>`
//! (status + progress), `GET /campaigns/<id>/summary` (the
//! `-summary.json` artefact), `GET /healthz`, `GET /profilez`
//! (per-layer middleware spans), `POST /shutdown` (drain then exit).

#![deny(missing_docs)]

pub mod http;
pub mod middleware;
pub mod queue;
pub mod server;

pub use http::{Request, Response};
pub use middleware::{LayerSpec, Middleware};
pub use queue::{JobQueue, JobState, JobStatus};
pub use server::{serve, Server, ServerConfig};
