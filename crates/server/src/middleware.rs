//! The composable middleware chain.
//!
//! Cross-cutting request concerns — logging, authentication,
//! admission control, spec validation — are [`Middleware`] layers
//! wrapped around the route handler *outside-in*, exactly as the
//! source paper composes services around a resource-managed core:
//! the first layer in the chain sees the request first and the
//! response last. The default chain is
//!
//! ```text
//! RequestLog → TokenAuth → RateLimit → SpecValidation → handler
//! ```
//!
//! but the order is data, not code: [`crate::ServerConfig::chain`]
//! lists [`LayerSpec`]s and [`build_chain`] instantiates them in that
//! order, so deployments can reorder or drop layers without touching
//! the server. Each layer is independently constructible and
//! unit-tested against an in-memory handler; none touches a socket.
//!
//! A layer either *short-circuits* (returns its own response — 401,
//! 429, 400 — without calling [`Next::run`]) or delegates inward,
//! optionally rewriting the context on the way in and observing the
//! response on the way out. Per-layer wall-clock is collected into
//! [`Ctx::timings`] (inclusive of inner layers) and merged into the
//! server's [`metrics::profile::Profiler`] after the chain unwinds.

use std::collections::HashMap;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::http::{Request, Response};

/// Per-request context threaded through the chain.
#[derive(Debug, Default)]
pub struct Ctx {
    /// The rate-limiting key: the client's IP address (no port, so
    /// reconnecting does not reset the bucket).
    pub client: String,
    /// The spec parsed by [`SpecValidation`], ready for the handler.
    pub spec: Option<campaign::CampaignSpec>,
    /// `(layer name, elapsed ms)` per layer, innermost first, each
    /// inclusive of the layers inside it.
    pub timings: Vec<(&'static str, f64)>,
}

impl Ctx {
    /// A context for the given client key.
    #[must_use]
    pub fn for_client(client: &str) -> Self {
        Ctx {
            client: client.to_owned(),
            ..Ctx::default()
        }
    }
}

/// The route handler at the centre of the chain.
pub type Handler<'a> = &'a (dyn Fn(&Request, &mut Ctx) -> Response + Sync);

/// One layer of the chain. Layers are shared across requests, so all
/// mutable state (rate-limit buckets, log sinks) lives behind locks.
pub trait Middleware: Send + Sync {
    /// The layer's name, used for profile spans and the chain listing.
    fn name(&self) -> &'static str;

    /// Handles the request: answer directly (short-circuit) or
    /// delegate to `next.run(req, ctx)`.
    fn handle(&self, req: &Request, ctx: &mut Ctx, next: Next<'_>) -> Response;
}

/// The remainder of the chain, handed to each layer.
pub struct Next<'a> {
    layers: &'a [Box<dyn Middleware>],
    handler: Handler<'a>,
}

impl Next<'_> {
    /// Runs the rest of the chain (ending at the handler), timing
    /// each layer into [`Ctx::timings`].
    pub fn run(self, req: &Request, ctx: &mut Ctx) -> Response {
        match self.layers.split_first() {
            Some((layer, rest)) => {
                let started = Instant::now();
                let response = layer.handle(
                    req,
                    ctx,
                    Next {
                        layers: rest,
                        handler: self.handler,
                    },
                );
                ctx.timings
                    .push((layer.name(), started.elapsed().as_secs_f64() * 1e3));
                response
            }
            None => {
                let started = Instant::now();
                let response = (self.handler)(req, ctx);
                ctx.timings
                    .push(("handler", started.elapsed().as_secs_f64() * 1e3));
                response
            }
        }
    }
}

/// Runs `req` through `layers` (outside-in) down to `handler`.
pub fn run_chain(
    layers: &[Box<dyn Middleware>],
    handler: Handler<'_>,
    req: &Request,
    ctx: &mut Ctx,
) -> Response {
    Next { layers, handler }.run(req, ctx)
}

/// A chain entry in [`crate::ServerConfig::chain`] — the middleware
/// composition as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerSpec {
    /// [`RequestLog`].
    RequestLog,
    /// [`TokenAuth`] (pass-through when no token is configured).
    TokenAuth,
    /// [`RateLimit`] (pass-through when no rate is configured).
    RateLimit,
    /// [`SpecValidation`].
    SpecValidation,
}

/// Instantiates the configured chain in order. `token`/`rate` feed
/// the auth and admission layers; an unconfigured layer stays in the
/// chain as an explicit pass-through so the composition is always the
/// one the config names.
#[must_use]
pub fn build_chain(
    chain: &[LayerSpec],
    token: Option<&str>,
    rate: Option<f64>,
    log: LogSink,
) -> Vec<Box<dyn Middleware>> {
    chain
        .iter()
        .map(|layer| match layer {
            LayerSpec::RequestLog => Box::new(RequestLog::new(log.clone())) as Box<dyn Middleware>,
            LayerSpec::TokenAuth => Box::new(TokenAuth::new(token.map(str::to_owned))),
            LayerSpec::RateLimit => Box::new(match rate {
                Some(r) => RateLimit::per_second(r),
                None => RateLimit::unlimited(),
            }),
            LayerSpec::SpecValidation => Box::new(SpecValidation),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// RequestLog.
// ---------------------------------------------------------------------------

/// Where [`RequestLog`] writes: stderr in production, an in-memory
/// buffer in tests.
pub type LogSink = Arc<Mutex<Box<dyn Write + Send>>>;

/// A [`LogSink`] over stderr.
#[must_use]
pub fn stderr_sink() -> LogSink {
    Arc::new(Mutex::new(Box::new(std::io::stderr())))
}

/// The outermost layer: one access-log line per request with method,
/// path, client, status and inclusive latency.
pub struct RequestLog {
    sink: LogSink,
}

impl RequestLog {
    /// A logger writing to `sink`.
    #[must_use]
    pub fn new(sink: LogSink) -> Self {
        RequestLog { sink }
    }
}

impl Middleware for RequestLog {
    fn name(&self) -> &'static str {
        "request_log"
    }

    fn handle(&self, req: &Request, ctx: &mut Ctx, next: Next<'_>) -> Response {
        let started = Instant::now();
        let response = next.run(req, ctx);
        let ms = started.elapsed().as_secs_f64() * 1e3;
        if let Ok(mut sink) = self.sink.lock() {
            let _ = writeln!(
                sink,
                "{} {} -> {} ({ms:.2} ms) client={}",
                req.method, req.path, response.status, ctx.client
            );
        }
        response
    }
}

// ---------------------------------------------------------------------------
// TokenAuth.
// ---------------------------------------------------------------------------

/// Bearer-token authentication: with a configured token, every
/// request must carry `Authorization: Bearer <token>`; without one
/// the layer passes everything through (an open development server).
pub struct TokenAuth {
    token: Option<String>,
}

impl TokenAuth {
    /// An auth layer requiring `token` (or pass-through for `None`).
    #[must_use]
    pub fn new(token: Option<String>) -> Self {
        TokenAuth { token }
    }
}

impl Middleware for TokenAuth {
    fn name(&self) -> &'static str {
        "token_auth"
    }

    fn handle(&self, req: &Request, ctx: &mut Ctx, next: Next<'_>) -> Response {
        let Some(expected) = &self.token else {
            return next.run(req, ctx);
        };
        let presented = req
            .header("authorization")
            .and_then(|v| v.strip_prefix("Bearer "));
        if presented == Some(expected.as_str()) {
            next.run(req, ctx)
        } else {
            Response::error(401, "missing or invalid bearer token")
                .with_header("www-authenticate", "Bearer")
        }
    }
}

// ---------------------------------------------------------------------------
// RateLimit.
// ---------------------------------------------------------------------------

/// One client's token bucket.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last_s: f64,
}

/// Per-client token-bucket admission control: each client key (IP)
/// gets a bucket of capacity `burst` refilled at `rate_per_s`; a
/// request costs one token, and an empty bucket answers 429 with
/// `Retry-After`. This is the server-side dual of the simulator's
/// resource contracts: the config declares the offered request rate
/// the service admits, and the layer enforces it.
pub struct RateLimit {
    rate_per_s: f64,
    burst: f64,
    clock: Box<dyn Fn() -> f64 + Send + Sync>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RateLimit {
    /// A limiter admitting `rate` requests per second per client with
    /// a burst capacity of `max(rate, 1)`.
    #[must_use]
    pub fn per_second(rate: f64) -> Self {
        let started = Instant::now();
        RateLimit::with_clock(rate, move || started.elapsed().as_secs_f64())
    }

    /// A pass-through limiter (no rate configured): requests are
    /// always admitted, but the layer stays in the chain.
    #[must_use]
    pub fn unlimited() -> Self {
        RateLimit::per_second(f64::INFINITY)
    }

    /// A limiter reading time from `clock` (seconds from an arbitrary
    /// epoch) — the hook the refill-math unit tests use.
    #[must_use]
    pub fn with_clock(rate: f64, clock: impl Fn() -> f64 + Send + Sync + 'static) -> Self {
        let rate = rate.max(0.0);
        RateLimit {
            rate_per_s: rate,
            burst: rate.max(1.0),
            clock: Box::new(clock),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Takes one token from `key`'s bucket, refilling it first;
    /// `false` means the request must be rejected.
    pub fn try_admit(&self, key: &str) -> bool {
        let now = (self.clock)();
        let mut buckets = self.buckets.lock().expect("no poisoned bucket map");
        let bucket = buckets.entry(key.to_owned()).or_insert(Bucket {
            tokens: self.burst,
            last_s: now,
        });
        let elapsed = (now - bucket.last_s).max(0.0);
        bucket.tokens = (bucket.tokens + elapsed * self.rate_per_s).min(self.burst);
        bucket.last_s = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

impl Middleware for RateLimit {
    fn name(&self) -> &'static str {
        "rate_limit"
    }

    fn handle(&self, req: &Request, ctx: &mut Ctx, next: Next<'_>) -> Response {
        if self.try_admit(&ctx.client) {
            next.run(req, ctx)
        } else {
            Response::error(429, "rate limit exceeded; retry later").with_header("retry-after", "1")
        }
    }
}

// ---------------------------------------------------------------------------
// SpecValidation.
// ---------------------------------------------------------------------------

/// Validates `POST /campaigns` bodies at the door: the body must
/// parse as a [`campaign::CampaignSpec`] *and* expand within its
/// `max_runs` cap, otherwise the request dies here with a 400 naming
/// the problem and the handler never sees it. The parsed spec rides
/// in [`Ctx::spec`] so the handler does not parse twice. Requests to
/// other routes pass through untouched.
pub struct SpecValidation;

impl Middleware for SpecValidation {
    fn name(&self) -> &'static str {
        "spec_validation"
    }

    fn handle(&self, req: &Request, ctx: &mut Ctx, next: Next<'_>) -> Response {
        if !(req.method == "POST" && req.path == "/campaigns") {
            return next.run(req, ctx);
        }
        let Ok(text) = std::str::from_utf8(&req.body) else {
            return Response::error(400, "campaign spec body is not UTF-8");
        };
        let spec = match campaign::CampaignSpec::from_json(text) {
            Ok(spec) => spec,
            Err(e) => return Response::error(400, &format!("invalid campaign spec: {e}")),
        };
        // Expansion errors (an over-cap sweep, zero replicates) are
        // client errors too: surface them at submission, not from a
        // failed job the client has to poll for.
        if let Err(e) = campaign::expand(&spec) {
            return Response::error(400, &format!("invalid campaign spec: {e}"));
        }
        ctx.spec = Some(spec);
        next.run(req, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_owned(),
            path: path.to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn ok_handler() -> impl Fn(&Request, &mut Ctx) -> Response + Sync {
        |_req, _ctx| Response::json(200, "{\"ok\":true}".to_owned())
    }

    #[test]
    fn empty_chain_reaches_the_handler_and_times_it() {
        let mut ctx = Ctx::for_client("10.0.0.1");
        let handler = ok_handler();
        let resp = run_chain(&[], &handler, &get("/healthz"), &mut ctx);
        assert_eq!(resp.status, 200);
        assert_eq!(ctx.timings.len(), 1);
        assert_eq!(ctx.timings[0].0, "handler");
    }

    #[test]
    fn layers_run_outside_in_and_unwind_inside_out() {
        struct Tag(&'static str, Arc<Mutex<Vec<String>>>);
        impl Middleware for Tag {
            fn name(&self) -> &'static str {
                self.0
            }
            fn handle(&self, req: &Request, ctx: &mut Ctx, next: Next<'_>) -> Response {
                self.1.lock().unwrap().push(format!("enter {}", self.0));
                let resp = next.run(req, ctx);
                self.1.lock().unwrap().push(format!("leave {}", self.0));
                resp
            }
        }
        let order = Arc::new(Mutex::new(Vec::new()));
        let chain: Vec<Box<dyn Middleware>> = vec![
            Box::new(Tag("outer", order.clone())),
            Box::new(Tag("inner", order.clone())),
        ];
        let mut ctx = Ctx::default();
        let handler = ok_handler();
        run_chain(&chain, &handler, &get("/"), &mut ctx);
        assert_eq!(
            *order.lock().unwrap(),
            ["enter outer", "enter inner", "leave inner", "leave outer"]
        );
        // Timings unwind innermost-first, ending at the outermost.
        let names: Vec<&str> = ctx.timings.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["handler", "inner", "outer"]);
    }

    #[test]
    fn token_auth_rejects_missing_and_wrong_tokens() {
        let auth = TokenAuth::new(Some("s3cret".to_owned()));
        let chain: Vec<Box<dyn Middleware>> = vec![Box::new(auth)];
        let handler = ok_handler();

        let mut ctx = Ctx::default();
        let resp = run_chain(&chain, &handler, &get("/healthz"), &mut ctx);
        assert_eq!(resp.status, 401, "no credentials");
        assert!(resp
            .headers
            .iter()
            .any(|(n, v)| n == "www-authenticate" && v == "Bearer"));

        let mut wrong = get("/healthz");
        wrong
            .headers
            .push(("authorization".to_owned(), "Bearer nope".to_owned()));
        assert_eq!(run_chain(&chain, &handler, &wrong, &mut ctx).status, 401);

        let mut basic = get("/healthz");
        basic
            .headers
            .push(("authorization".to_owned(), "Basic s3cret".to_owned()));
        assert_eq!(
            run_chain(&chain, &handler, &basic, &mut ctx).status,
            401,
            "only the Bearer scheme is accepted"
        );
    }

    #[test]
    fn token_auth_accepts_the_right_token_and_passes_through_unconfigured() {
        let handler = ok_handler();
        let chain: Vec<Box<dyn Middleware>> =
            vec![Box::new(TokenAuth::new(Some("s3cret".to_owned())))];
        let mut ok = get("/healthz");
        ok.headers
            .push(("authorization".to_owned(), "Bearer s3cret".to_owned()));
        let mut ctx = Ctx::default();
        assert_eq!(run_chain(&chain, &handler, &ok, &mut ctx).status, 200);

        let open: Vec<Box<dyn Middleware>> = vec![Box::new(TokenAuth::new(None))];
        assert_eq!(
            run_chain(&open, &handler, &get("/healthz"), &mut ctx).status,
            200,
            "no configured token means an open server"
        );
    }

    #[test]
    fn rate_limit_refill_math_is_exact_under_a_manual_clock() {
        let now = Arc::new(Mutex::new(0.0f64));
        let clock = {
            let now = now.clone();
            move || *now.lock().unwrap()
        };
        // 2 tokens/s, burst 2.
        let limit = RateLimit::with_clock(2.0, clock);
        assert!(limit.try_admit("a"), "bucket starts full");
        assert!(limit.try_admit("a"));
        assert!(!limit.try_admit("a"), "burst of 2 exhausted");
        // 0.25 s refills 0.5 tokens: still under one.
        *now.lock().unwrap() = 0.25;
        assert!(!limit.try_admit("a"));
        // 0.5 s total refills a full token.
        *now.lock().unwrap() = 0.5;
        assert!(limit.try_admit("a"));
        assert!(!limit.try_admit("a"), "and only the one");
        // Idle long enough to cap at burst, not accumulate beyond it.
        *now.lock().unwrap() = 60.0;
        assert!(limit.try_admit("a"));
        assert!(limit.try_admit("a"));
        assert!(!limit.try_admit("a"), "refill saturates at burst=2");
    }

    #[test]
    fn rate_limit_buckets_are_per_client() {
        let limit = RateLimit::with_clock(1.0, || 0.0);
        assert!(limit.try_admit("alice"));
        assert!(!limit.try_admit("alice"), "alice's bucket is empty");
        assert!(limit.try_admit("bob"), "bob's bucket is untouched");
    }

    #[test]
    fn rate_limit_layer_maps_rejection_to_429_with_retry_after() {
        let chain: Vec<Box<dyn Middleware>> = vec![Box::new(RateLimit::with_clock(1.0, || 0.0))];
        let handler = ok_handler();
        let mut ctx = Ctx::for_client("10.0.0.9");
        assert_eq!(run_chain(&chain, &handler, &get("/"), &mut ctx).status, 200);
        let rejected = run_chain(&chain, &handler, &get("/"), &mut ctx);
        assert_eq!(rejected.status, 429);
        assert!(rejected.headers.iter().any(|(n, _)| n == "retry-after"));

        let open: Vec<Box<dyn Middleware>> = vec![Box::new(RateLimit::unlimited())];
        for _ in 0..100 {
            assert_eq!(run_chain(&open, &handler, &get("/"), &mut ctx).status, 200);
        }
    }

    #[test]
    fn spec_validation_rejects_bad_bodies_and_parses_good_ones() {
        let chain: Vec<Box<dyn Middleware>> = vec![Box::new(SpecValidation)];
        let handler = |_req: &Request, ctx: &mut Ctx| {
            assert!(ctx.spec.is_some(), "handler sees the parsed spec");
            Response::json(202, "{}".to_owned())
        };

        let post = |body: &[u8]| Request {
            method: "POST".to_owned(),
            path: "/campaigns".to_owned(),
            headers: Vec::new(),
            body: body.to_vec(),
        };

        let mut ctx = Ctx::default();
        let resp = run_chain(&chain, &handler, &post(b"not json"), &mut ctx);
        assert_eq!(resp.status, 400);
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("invalid campaign spec"), "{body}");

        let resp = run_chain(&chain, &handler, &post(&[0xff, 0xfe]), &mut ctx);
        assert_eq!(resp.status, 400);

        // A structurally valid spec that fails expansion (replicates
        // of zero) dies at the door too.
        let zero_reps = br#"{
            "name": "zero",
            "scenario": { "kind": "host", "scheduler": "credit", "duration_s": 300,
                "vms": [ { "name": "v", "credit_pct": 20,
                           "workload": { "kind": "fluid", "load_pct": 50 } } ] },
            "seeds": { "base": 1, "replicates": 0 }
        }"#;
        let resp = run_chain(&chain, &handler, &post(zero_reps), &mut ctx);
        assert_eq!(resp.status, 400);

        let good = br#"{
            "name": "mini",
            "scenario": { "kind": "host", "scheduler": "credit", "duration_s": 300,
                "vms": [ { "name": "v", "credit_pct": 20,
                           "workload": { "kind": "fluid", "load_pct": 50 } } ] },
            "seeds": { "base": 1, "replicates": 1 }
        }"#;
        let resp = run_chain(&chain, &handler, &post(good), &mut ctx);
        assert_eq!(resp.status, 202);

        // Other routes pass through without a body requirement.
        let resp = run_chain(&chain, &ok_handler(), &get("/healthz"), &mut ctx);
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn request_log_writes_one_line_per_request() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink: LogSink = Arc::new(Mutex::new(Box::new(SharedBuf(buf.clone()))));
        let chain: Vec<Box<dyn Middleware>> = vec![Box::new(RequestLog::new(sink))];
        let handler = ok_handler();
        let mut ctx = Ctx::for_client("10.1.2.3");
        run_chain(&chain, &handler, &get("/healthz"), &mut ctx);
        let log = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(
            log.contains("GET /healthz -> 200") && log.contains("client=10.1.2.3"),
            "{log}"
        );
    }

    #[test]
    fn build_chain_follows_the_configured_order() {
        let chain = build_chain(
            &[
                LayerSpec::RequestLog,
                LayerSpec::TokenAuth,
                LayerSpec::RateLimit,
                LayerSpec::SpecValidation,
            ],
            Some("t"),
            Some(5.0),
            stderr_sink(),
        );
        let names: Vec<&str> = chain.iter().map(|l| l.name()).collect();
        assert_eq!(
            names,
            ["request_log", "token_auth", "rate_limit", "spec_validation"]
        );

        // Reordering the config reorders the chain: auth inside the
        // rate limiter instead of outside it.
        let chain = build_chain(
            &[LayerSpec::RateLimit, LayerSpec::TokenAuth],
            Some("t"),
            None,
            stderr_sink(),
        );
        let names: Vec<&str> = chain.iter().map(|l| l.name()).collect();
        assert_eq!(names, ["rate_limit", "token_auth"]);
    }
}
