//! End-to-end coverage over real TCP: boots the server on an
//! ephemeral port, drives it with raw HTTP/1.1, and pins the
//! byte-identity contract — a campaign submitted over the wire
//! produces exactly the `-summary.json` a direct library run does.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use server::middleware::LogSink;
use server::{Server, ServerConfig};

/// A quiet config on an ephemeral port; tests override fields.
fn test_config() -> ServerConfig {
    let quiet: LogSink = Arc::new(Mutex::new(Box::new(std::io::sink())));
    ServerConfig {
        port: 0,
        jobs: 2,
        quick: true,
        log: quiet,
        ..ServerConfig::default()
    }
}

/// Boots the server on its ephemeral port, returning the bound
/// address and the serving thread (joined by [`shutdown`]).
fn boot(cfg: ServerConfig) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(cfg).expect("ephemeral bind");
    let addr = server.local_addr().expect("bound address");
    (addr, std::thread::spawn(move || server.run()))
}

/// Sends one raw request, returning `(status, body)`.
fn http(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line in {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn get(path: &str, token: Option<&str>) -> String {
    let auth = token.map_or(String::new(), |t| format!("authorization: Bearer {t}\r\n"));
    format!("GET {path} HTTP/1.1\r\nhost: test\r\n{auth}\r\n")
}

fn post(path: &str, body: &str, token: Option<&str>) -> String {
    let auth = token.map_or(String::new(), |t| format!("authorization: Bearer {t}\r\n"));
    format!(
        "POST {path} HTTP/1.1\r\nhost: test\r\n{auth}content-length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Stops the server and joins the serving thread.
fn shutdown(addr: SocketAddr, handle: JoinHandle<std::io::Result<()>>, token: Option<&str>) {
    let (status, _) = http(addr, &post("/shutdown", "", token));
    assert_eq!(status, 200);
    handle.join().expect("serve thread").expect("clean exit");
}

fn example_spec(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/campaigns")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

const MINI_SPEC: &str = r#"{
    "name": "mini",
    "scenario": { "kind": "host", "scheduler": "credit", "duration_s": 300,
        "vms": [ { "name": "v", "credit_pct": 20,
                   "workload": { "kind": "fluid", "load_pct": 50 } } ] },
    "seeds": { "base": 1, "replicates": 1 }
}"#;

/// Polls `GET /campaigns/<id>` until the job leaves the queue.
fn wait_done(addr: SocketAddr, id: u64, token: Option<&str>) -> String {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) = http(addr, &get(&format!("/campaigns/{id}"), token));
        assert_eq!(status, 200, "{body}");
        if body.contains("\"state\":\"done\"") || body.contains("\"state\":\"failed\"") {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "campaign {id} never finished: {body}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn healthz_reports_and_unknown_paths_404() {
    let (addr, handle) = boot(test_config());
    let (status, body) = http(addr, &get("/healthz", None));
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"jobs\":2"), "{body}");

    let (status, _) = http(addr, &get("/nope", None));
    assert_eq!(status, 404);
    let (status, _) = http(addr, &http_delete(addr));
    assert_eq!(status, 405, "wrong method on a known path");
    let (status, _) = http(addr, &get("/campaigns/99", None));
    assert_eq!(status, 404, "unknown campaign id");
    let (status, body) = http(addr, &get("/campaigns/zzz", None));
    assert_eq!(status, 404, "{body}");
    shutdown(addr, handle, None);
}

fn http_delete(_addr: SocketAddr) -> String {
    "DELETE /healthz HTTP/1.1\r\nhost: test\r\n\r\n".to_owned()
}

#[test]
fn submitted_campaign_summary_is_byte_identical_to_a_direct_run() {
    let out = std::env::temp_dir().join("pas-server-e2e-out");
    let _ = std::fs::remove_dir_all(&out);
    let mut cfg = test_config();
    cfg.out = Some(out.clone());
    let (addr, handle) = boot(cfg);

    let spec_json = example_spec("credit-sweep.json");
    let (status, body) = http(addr, &post("/campaigns", &spec_json, None));
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"id\":1"), "{body}");
    assert!(body.contains("\"total_runs\":"), "{body}");

    let final_status = wait_done(addr, 1, None);
    assert!(
        final_status.contains("\"state\":\"done\""),
        "{final_status}"
    );

    let (status, served_summary) = http(addr, &get("/campaigns/1/summary", None));
    assert_eq!(status, 200);

    // The contract: the service and the CLI produce the same bytes
    // for the same spec at the same fidelity.
    let spec = campaign::CampaignSpec::from_json(&spec_json).expect("example parses");
    let report = campaign::run(&spec, true, 2).expect("direct run");
    let direct_summary = metrics::export::to_json(&report).expect("serializes");
    assert_eq!(served_summary, direct_summary);

    // `--out` wrote the same three artefacts `repro campaign` would.
    let names: Vec<String> = report
        .artefact_files()
        .expect("artefacts")
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    for name in &names {
        let on_disk = std::fs::read_to_string(out.join(name))
            .unwrap_or_else(|e| panic!("missing artefact {name}: {e}"));
        assert!(!on_disk.is_empty());
    }
    assert_eq!(
        std::fs::read_to_string(out.join(format!("{}-summary.json", spec.name))).unwrap(),
        direct_summary
    );

    shutdown(addr, handle, None);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn auth_layer_guards_every_route() {
    let mut cfg = test_config();
    cfg.token = Some("s3cret".to_owned());
    let (addr, handle) = boot(cfg);

    let (status, _) = http(addr, &get("/healthz", None));
    assert_eq!(status, 401, "no token");
    let (status, _) = http(addr, &get("/healthz", Some("wrong")));
    assert_eq!(status, 401, "wrong token");
    let (status, _) = http(addr, &post("/campaigns", MINI_SPEC, None));
    assert_eq!(status, 401, "submission needs the token too");
    let (status, _) = http(addr, &get("/healthz", Some("s3cret")));
    assert_eq!(status, 200);
    let (status, _) = http(addr, &post("/shutdown", "", None));
    assert_eq!(status, 401, "even shutdown is guarded");
    shutdown(addr, handle, Some("s3cret"));
}

#[test]
fn rate_limit_answers_429_under_burst() {
    let mut cfg = test_config();
    cfg.rate = Some(2.0); // burst of 2 for the single test client
    let (addr, handle) = boot(cfg);

    let (first, _) = http(addr, &get("/healthz", None));
    let (second, _) = http(addr, &get("/healthz", None));
    assert_eq!((first, second), (200, 200), "burst admits two");
    let (third, body) = http(addr, &get("/healthz", None));
    assert_eq!(third, 429, "{body}");
    assert!(body.contains("rate limit"), "{body}");

    // The bucket refills: within ~a second the client is admitted
    // again (2 tokens/s, so 0.6 s refills >1 token).
    std::thread::sleep(Duration::from_millis(600));
    let (status, _) = http(addr, &get("/healthz", None));
    assert_eq!(status, 200);
    std::thread::sleep(Duration::from_millis(600));
    shutdown(addr, handle, None);
}

#[test]
fn malformed_and_oversized_submissions_die_at_the_door() {
    let mut cfg = test_config();
    cfg.max_body_bytes = 4096;
    let (addr, handle) = boot(cfg);

    let (status, body) = http(addr, &post("/campaigns", "not json", None));
    assert_eq!(status, 400);
    assert!(body.contains("invalid campaign spec"), "{body}");

    let (status, body) = http(addr, &post("/campaigns", "", None));
    assert_eq!(status, 400, "{body}");

    let oversized = "x".repeat(5000);
    let (status, body) = http(addr, &post("/campaigns", &oversized, None));
    assert_eq!(status, 413, "{body}");

    let (status, _) = http(addr, "BROKEN\r\n\r\n");
    assert_eq!(status, 400, "malformed request line");

    // Nothing above was registered as a job.
    let (status, body) = http(addr, &get("/healthz", None));
    assert_eq!(status, 200);
    assert!(body.contains("\"submitted\":0"), "{body}");
    shutdown(addr, handle, None);
}

#[test]
fn status_endpoint_tracks_progress_and_summary_is_409_until_done() {
    let (addr, handle) = boot(test_config());
    let (status, body) = http(addr, &post("/campaigns", MINI_SPEC, None));
    assert_eq!(status, 202, "{body}");

    // Until the run completes the summary answers 409, not 200/404.
    let (status, body) = http(addr, &get("/campaigns/1/summary", None));
    assert!(
        status == 409 || status == 200,
        "summary of an in-flight job is 409 (or 200 if it already won the race): {status} {body}"
    );

    let final_status = wait_done(addr, 1, None);
    assert!(
        final_status.contains("\"state\":\"done\""),
        "{final_status}"
    );
    assert!(final_status.contains("\"name\":\"mini\""), "{final_status}");
    // completed == total on completion.
    assert!(
        final_status.contains("\"completed_runs\":1") && final_status.contains("\"total_runs\":1"),
        "{final_status}"
    );

    let (status, _) = http(addr, &get("/campaigns/1/summary", None));
    assert_eq!(status, 200);

    // The profiler observed the chain: per-layer spans are exported.
    let (status, body) = http(addr, &get("/profilez", None));
    assert_eq!(status, 200);
    for span in [
        "mw:handler",
        "mw:token_auth",
        "mw:rate_limit",
        "campaign_run",
    ] {
        assert!(body.contains(span), "missing span {span}: {body}");
    }
    shutdown(addr, handle, None);
}

#[test]
fn shutdown_drains_accepted_jobs_before_exit() {
    let out = std::env::temp_dir().join("pas-server-e2e-drain");
    let _ = std::fs::remove_dir_all(&out);
    let mut cfg = test_config();
    cfg.out = Some(out.clone());
    let (addr, handle) = boot(cfg);

    let (status, _) = http(addr, &post("/campaigns", MINI_SPEC, None));
    assert_eq!(status, 202);
    // Shut down immediately: the accepted job must still run.
    shutdown(addr, handle, None);

    let summary = std::fs::read_to_string(out.join("mini-summary.json"))
        .expect("the accepted job ran to completion during drain");
    assert!(!summary.is_empty());
    let _ = std::fs::remove_dir_all(&out);
}
