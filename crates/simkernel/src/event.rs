//! The pending-event set.
//!
//! A binary heap ordered by `(time, sequence)` so that events scheduled
//! for the same instant fire in FIFO order — the property every
//! deterministic simulation needs and `BinaryHeap` alone does not give.
//! Cancellation is O(1) amortised via tombstones.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable for cancellation.
///
/// Ids are unique for the lifetime of one [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// An event popped from the queue: when it fires and its payload.
#[derive(Debug)]
pub struct QueuedEvent<E> {
    /// The instant the event fires.
    pub at: SimTime,
    /// Handle under which the event was scheduled.
    pub id: EventId,
    /// The user payload.
    pub payload: E,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A total-ordered pending-event set with stable FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use simkernel::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(20), "later");
/// let first = q.push(SimTime::from_millis(10), "sooner");
/// q.cancel(first);
/// let ev = q.pop().expect("one event left");
/// assert_eq!(ev.payload, "later");
/// assert!(q.is_empty());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Schedules `payload` to fire at `at`. Returns a handle for
    /// [`cancel`](Self::cancel).
    pub fn push(&mut self, at: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Entry {
            at,
            seq,
            id,
            payload,
        });
        self.live += 1;
        id
    }

    /// Cancels a scheduled event. Returns `true` if the event was still
    /// pending (it will never fire), `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(id) {
            // It may have already popped; `live` is corrected lazily in pop.
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event, skipping tombstones.
    pub fn pop(&mut self) -> Option<QueuedEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                self.live = self.live.saturating_sub(1);
                continue;
            }
            self.live = self.live.saturating_sub(1);
            return Some(QueuedEvent {
                at: entry.at,
                id: entry.id,
                payload: entry.payload,
            });
        }
        None
    }

    /// The firing time of the earliest live event, if any, without
    /// removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let skip = match self.heap.peek() {
                None => return None,
                Some(entry) => self.cancelled.contains(&entry.id),
            };
            if skip {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.id);
                self.live = self.live.saturating_sub(1);
            } else {
                return self.heap.peek().map(|e| e.at);
            }
        }
    }

    /// Number of live (non-cancelled) pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.live)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_millis(1), "a");
        let b = q.push(SimTime::from_millis(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        let ev = q.pop().unwrap();
        assert_eq!(ev.payload, "b");
        assert_eq!(ev.id, b);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q = EventQueue::<()>::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_millis(1), "a");
        q.push(SimTime::from_millis(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_tracks_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.push(SimTime::from_millis(i), i))
            .collect();
        for id in &ids[..4] {
            q.cancel(*id);
        }
        // Tombstones are lazy: drain and confirm only 6 events fire.
        let mut fired = 0;
        while q.pop().is_some() {
            fired += 1;
        }
        assert_eq!(fired, 6);
        assert!(q.is_empty());
    }
}
