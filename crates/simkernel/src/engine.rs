//! The event loop.
//!
//! [`Engine`] owns the clock and the pending-event set; the user owns
//! the world state and passes it to [`Engine::run`]. Event payloads are
//! `FnOnce(&mut W, &mut Engine<W>)` closures, so handlers can freely
//! schedule or cancel further events.

use std::fmt;

use crate::event::{EventId, EventQueue};
use crate::time::SimTime;

type Handler<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;
type Observer = Box<dyn FnMut(EngineEvent)>;

/// A kernel-level lifecycle notification delivered to the observer
/// installed with [`Engine::set_observer`]: the raw feed a tracing or
/// profiling layer taps without touching the event handlers
/// themselves. Purely observational — the engine never changes
/// behaviour based on whether an observer is installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// An event was accepted into the queue, to fire at `at`.
    Scheduled {
        /// The requested firing time.
        at: SimTime,
    },
    /// An event fired; the clock now reads `at`.
    Fired {
        /// The firing time.
        at: SimTime,
    },
    /// A pending event was cancelled at clock time `now`.
    Cancelled {
        /// The clock when the cancellation happened.
        now: SimTime,
    },
}

/// Errors reported by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An event was scheduled strictly before the current simulated time.
    ScheduleInPast {
        /// The engine clock when the scheduling was attempted.
        now: SimTime,
        /// The (invalid) requested firing time.
        at: SimTime,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ScheduleInPast { now, at } => {
                write!(f, "event scheduled in the past (now {now}, requested {at})")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A deterministic, single-threaded discrete-event engine.
///
/// The type parameter `W` is the simulation "world": whatever mutable
/// state the event handlers operate on. See the [crate-level
/// example](crate) for typical use.
pub struct Engine<W> {
    now: SimTime,
    queue: EventQueue<Handler<W>>,
    executed: u64,
    stop_requested: bool,
    observer: Option<Observer>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            executed: 0,
            stop_requested: false,
            observer: None,
        }
    }

    /// Installs an observer that receives an [`EngineEvent`] for every
    /// schedule, fire and cancel. At most one observer is installed;
    /// a second call replaces the first.
    pub fn set_observer(&mut self, observer: impl FnMut(EngineEvent) + 'static) {
        self.observer = Some(Box::new(observer));
    }

    /// Removes the observer, if any.
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    #[inline]
    fn notify(&mut self, event: EngineEvent) {
        if let Some(obs) = self.observer.as_mut() {
            obs(event);
        }
    }

    /// The current simulated instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events executed so far.
    #[must_use]
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `handler` to run at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is strictly before [`now`](Self::now); use
    /// [`try_schedule`](Self::try_schedule) for a fallible variant.
    pub fn schedule(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        self.try_schedule(at, handler)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Schedules `handler` to run at `at`, reporting an error instead of
    /// panicking when `at` lies in the past.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ScheduleInPast`] if `at < self.now()`.
    pub fn try_schedule(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> Result<EventId, EngineError> {
        if at < self.now {
            return Err(EngineError::ScheduleInPast { now: self.now, at });
        }
        let id = self.queue.push(at, Box::new(handler));
        self.notify(EngineEvent::Scheduled { at });
        Ok(id)
    }

    /// Cancels a pending event. Returns `true` if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let cancelled = self.queue.cancel(id);
        if cancelled {
            self.notify(EngineEvent::Cancelled { now: self.now });
        }
        cancelled
    }

    /// Requests that the run loop stop after the current event handler
    /// returns. Pending events stay queued.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }

    /// Executes the single earliest pending event, advancing the clock
    /// to its firing time. Returns `false` when the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.queue.pop() {
            None => false,
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "event queue yielded a past event");
                self.now = ev.at;
                self.executed += 1;
                self.notify(EngineEvent::Fired { at: ev.at });
                (ev.payload)(world, self);
                true
            }
        }
    }

    /// Runs until the queue is empty or [`stop`](Self::stop) is called.
    pub fn run(&mut self, world: &mut W) {
        self.stop_requested = false;
        while !self.stop_requested && self.step(world) {}
    }

    /// Runs until the clock would pass `deadline`, the queue empties, or
    /// [`stop`](Self::stop) is called. Events at exactly `deadline` do
    /// fire; the clock is left at `deadline` if the horizon was reached
    /// with events still pending.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        self.stop_requested = false;
        loop {
            if self.stop_requested {
                return;
            }
            match self.queue.peek_time() {
                None => return,
                Some(t) if t > deadline => {
                    self.now = deadline.max(self.now);
                    return;
                }
                Some(_) => {
                    self.step(world);
                }
            }
        }
    }
}

impl<W> fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn runs_events_in_order() {
        let mut engine = Engine::new();
        let mut log: Vec<u32> = Vec::new();
        engine.schedule(SimTime::from_millis(20), |w: &mut Vec<u32>, _| w.push(2));
        engine.schedule(SimTime::from_millis(10), |w: &mut Vec<u32>, _| w.push(1));
        engine.schedule(SimTime::from_millis(30), |w: &mut Vec<u32>, _| w.push(3));
        engine.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(engine.now(), SimTime::from_millis(30));
        assert_eq!(engine.executed_events(), 3);
    }

    #[test]
    fn handlers_can_reschedule() {
        struct W {
            count: u32,
        }
        fn tick(w: &mut W, eng: &mut Engine<W>) {
            w.count += 1;
            if w.count < 10 {
                eng.schedule(eng.now() + SimDuration::from_millis(1), tick);
            }
        }
        let mut engine = Engine::new();
        let mut w = W { count: 0 };
        engine.schedule(SimTime::ZERO, tick);
        engine.run(&mut w);
        assert_eq!(w.count, 10);
        assert_eq!(engine.now(), SimTime::from_millis(9));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut engine = Engine::new();
        let mut fired = Vec::new();
        for ms in [5u64, 10, 15, 20] {
            engine.schedule(SimTime::from_millis(ms), move |w: &mut Vec<u64>, _| {
                w.push(ms)
            });
        }
        engine.run_until(&mut fired, SimTime::from_millis(10));
        assert_eq!(fired, vec![5, 10], "events at the deadline fire");
        assert_eq!(engine.now(), SimTime::from_millis(10));
        assert_eq!(engine.pending_events(), 2);
        engine.run_until(&mut fired, SimTime::from_millis(100));
        assert_eq!(fired, vec![5, 10, 15, 20]);
    }

    #[test]
    fn schedule_in_past_errors() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule(SimTime::from_millis(10), |_, _| {});
        engine.run(&mut ());
        let err = engine
            .try_schedule(SimTime::from_millis(5), |_, _| {})
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::ScheduleInPast {
                now: SimTime::from_millis(10),
                at: SimTime::from_millis(5)
            }
        );
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn stop_halts_run() {
        let mut engine = Engine::new();
        let mut log: Vec<u32> = Vec::new();
        engine.schedule(
            SimTime::from_millis(1),
            |w: &mut Vec<u32>, eng: &mut Engine<_>| {
                w.push(1);
                eng.stop();
            },
        );
        engine.schedule(SimTime::from_millis(2), |w: &mut Vec<u32>, _| w.push(2));
        engine.run(&mut log);
        assert_eq!(log, vec![1]);
        assert_eq!(engine.pending_events(), 1);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut engine = Engine::new();
        let mut log: Vec<u32> = Vec::new();
        let id = engine.schedule(SimTime::from_millis(1), |w: &mut Vec<u32>, _| w.push(1));
        engine.schedule(SimTime::from_millis(2), |w: &mut Vec<u32>, _| w.push(2));
        assert!(engine.cancel(id));
        engine.run(&mut log);
        assert_eq!(log, vec![2]);
    }

    #[test]
    fn run_until_with_no_events_keeps_clock() {
        let mut engine: Engine<()> = Engine::new();
        engine.run_until(&mut (), SimTime::from_secs(5));
        // No events: the clock does not jump to the horizon.
        assert_eq!(engine.now(), SimTime::ZERO);
    }

    #[test]
    fn observer_sees_schedule_fire_and_cancel() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let seen: Rc<RefCell<Vec<EngineEvent>>> = Rc::default();
        let sink = Rc::clone(&seen);
        let mut engine: Engine<()> = Engine::new();
        engine.set_observer(move |ev| sink.borrow_mut().push(ev));

        engine.schedule(SimTime::from_millis(1), |_, _| {});
        let id = engine.schedule(SimTime::from_millis(2), |_, _| {});
        assert!(engine.cancel(id));
        assert!(!engine.cancel(id), "second cancel is a no-op");
        engine.run(&mut ());

        assert_eq!(
            *seen.borrow(),
            vec![
                EngineEvent::Scheduled {
                    at: SimTime::from_millis(1)
                },
                EngineEvent::Scheduled {
                    at: SimTime::from_millis(2)
                },
                EngineEvent::Cancelled { now: SimTime::ZERO },
                EngineEvent::Fired {
                    at: SimTime::from_millis(1)
                },
            ],
            "one notification per accepted schedule, real cancel, and fire"
        );
    }

    #[test]
    fn observer_never_changes_execution() {
        let run = |observed: bool| {
            let mut engine = Engine::new();
            if observed {
                engine.set_observer(|_| {});
            }
            let mut log: Vec<u32> = Vec::new();
            engine.schedule(SimTime::from_millis(5), |w: &mut Vec<u32>, _| w.push(5));
            engine.schedule(SimTime::from_millis(3), |w: &mut Vec<u32>, _| w.push(3));
            engine.run(&mut log);
            (log, engine.now(), engine.executed_events())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn clear_observer_stops_notifications() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let count: Rc<RefCell<usize>> = Rc::default();
        let sink = Rc::clone(&count);
        let mut engine: Engine<()> = Engine::new();
        engine.set_observer(move |_| *sink.borrow_mut() += 1);
        engine.schedule(SimTime::from_millis(1), |_, _| {});
        engine.clear_observer();
        engine.schedule(SimTime::from_millis(2), |_, _| {});
        engine.run(&mut ());
        assert_eq!(*count.borrow(), 1, "only the pre-clear schedule was seen");
    }
}
