//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the substrate every other crate in the workspace
//! builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time,
//! * [`EventQueue`] — a total-ordered pending-event set with stable
//!   FIFO tie-breaking and O(log n) cancellation,
//! * [`WakeHeap`] — a rebuildable per-host wake-instant heap ordered
//!   by `(time, stream, sequence)` for the event-driven host loop,
//! * [`Engine`] — the event loop, generic over a user-supplied world type,
//! * [`SimRng`] — a seeded, reproducible random number generator.
//!
//! The kernel is deliberately single-threaded: reproducing a scheduling
//! paper requires bit-for-bit reproducible runs, so all parallelism in
//! this workspace lives *across* experiment runs (see the `experiments`
//! crate), never inside one.
//!
//! # Example
//!
//! ```
//! use simkernel::{Engine, SimTime, SimDuration};
//!
//! struct World { ticks: u32 }
//!
//! let mut engine = Engine::new();
//! let mut world = World { ticks: 0 };
//! // A self-rescheduling periodic event.
//! fn tick(w: &mut World, eng: &mut Engine<World>) {
//!     w.ticks += 1;
//!     if w.ticks < 5 {
//!         let next = eng.now() + SimDuration::from_millis(10);
//!         eng.schedule(next, tick);
//!     }
//! }
//! engine.schedule(SimTime::ZERO, tick);
//! engine.run(&mut world);
//! assert_eq!(world.ticks, 5);
//! assert_eq!(engine.now(), SimTime::from_millis(40));
//! ```

#![deny(missing_docs)]

mod engine;
mod event;
mod rng;
mod time;
mod wake;

pub use engine::{Engine, EngineError, EngineEvent};
pub use event::{EventId, EventQueue, QueuedEvent};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use wake::{Wake, WakeHeap, WakeKind};
