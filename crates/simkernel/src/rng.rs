//! Seeded, reproducible randomness.
//!
//! All stochastic workload generation in the workspace goes through
//! [`SimRng`] so that every experiment run is reproducible from its
//! seed. The generator is `rand`'s `StdRng` (a fixed algorithm for a
//! given `rand` major version), plus the distribution helpers the
//! workload crates need.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random number generator for simulations.
///
/// # Example
///
/// ```
/// use simkernel::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform_f64(), b.uniform_f64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator; `stream` distinguishes
    /// siblings derived from the same parent.
    #[must_use]
    pub fn fork(&self, stream: u64) -> SimRng {
        // SplitMix64-style mix keeps child streams decorrelated.
        let mut z = self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from(z)
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        self.inner.gen_range(0..n)
    }

    /// An exponential sample with the given rate (events per unit time).
    ///
    /// Used for Poisson inter-arrival times in the httperf-like load
    /// generator.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate.is_finite() && rate > 0.0, "invalid rate {rate}");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate
    }

    /// A Bernoulli trial with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
        self.inner.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_f64().to_bits(), b.uniform_f64().to_bits());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32)
            .filter(|_| a.uniform_f64() == b.uniform_f64())
            .count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let parent = SimRng::seed_from(99);
        let mut c1 = parent.fork(0);
        let mut c1b = parent.fork(0);
        let mut c2 = parent.fork(1);
        assert_eq!(c1.uniform_f64().to_bits(), c1b.uniform_f64().to_bits());
        assert_ne!(c1.uniform_f64().to_bits(), c2.uniform_f64().to_bits());
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = SimRng::seed_from(3);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.02,
            "mean {mean} far from {}",
            1.0 / rate
        );
    }

    #[test]
    fn uniform_range_within_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let x = rng.uniform_range(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn exponential_rejects_zero_rate() {
        SimRng::seed_from(0).exponential(0.0);
    }
}
