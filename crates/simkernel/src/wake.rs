//! Per-host wake-event heap for the event-driven host loop.
//!
//! A host's future is a small set of *wake instants*: the next
//! accounting / governor / snapshot boundary plus, per VM, the instant
//! its backlog drains or enough demand arrives to make it runnable.
//! [`WakeHeap`] keeps those instants totally ordered by
//! `(time, stream, sequence)` — the same scheme the trace merge uses —
//! so "what happens next on this host?" is a deterministic O(1) peek
//! regardless of how the wakes were inserted.
//!
//! Unlike [`EventQueue`](crate::EventQueue) there is no cancellation:
//! the host rebuilds its heap from current state whenever it needs a
//! forecast (entries are cheap, counts are tiny), and [`WakeHeap::clear`]
//! retains the allocation across rebuilds.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// What a wake instant means to the host loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeKind {
    /// Scheduler accounting boundary (credit refill, PAS replanning).
    Acct,
    /// Governor sampling boundary (DVFS decision point).
    Governor,
    /// Telemetry snapshot boundary.
    Sample,
    /// The VM at this host-local index drains its backlog and may go
    /// idle (the pick can change).
    VmDrain(u32),
    /// The VM at this host-local index accumulates enough demand to
    /// become runnable (the pick can change).
    VmArrival(u32),
}

impl WakeKind {
    /// The stream rank used as the first-level tie-break between wakes
    /// scheduled for the same instant: control boundaries fire before
    /// per-VM wakes, mirroring the host loop's boundary-first order.
    #[must_use]
    pub fn stream(self) -> u8 {
        match self {
            WakeKind::Acct => 0,
            WakeKind::Governor => 1,
            WakeKind::Sample => 2,
            WakeKind::VmDrain(_) => 3,
            WakeKind::VmArrival(_) => 4,
        }
    }
}

/// A wake popped from the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wake {
    /// The instant the host must re-evaluate its state.
    pub at: SimTime,
    /// Why.
    pub kind: WakeKind,
}

struct WakeEntry {
    at: SimTime,
    stream: u8,
    seq: u64,
    kind: WakeKind,
}

impl WakeEntry {
    fn key(&self) -> (SimTime, u8, u64) {
        (self.at, self.stream, self.seq)
    }
}

impl PartialEq for WakeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for WakeEntry {}
impl PartialOrd for WakeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WakeEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest
        // (time, stream, seq) pops first.
        other.key().cmp(&self.key())
    }
}

/// A deterministic min-heap of host wake instants.
///
/// # Example
///
/// ```
/// use simkernel::{SimTime, WakeHeap, WakeKind};
///
/// let mut wakes = WakeHeap::new();
/// wakes.push(SimTime::from_millis(30), WakeKind::Acct);
/// wakes.push(SimTime::from_millis(12), WakeKind::VmDrain(0));
/// assert_eq!(wakes.peek_time(), Some(SimTime::from_millis(12)));
/// let first = wakes.pop().expect("two wakes queued");
/// assert_eq!(first.kind, WakeKind::VmDrain(0));
/// ```
#[derive(Default)]
pub struct WakeHeap {
    heap: BinaryHeap<WakeEntry>,
    next_seq: u64,
}

impl WakeHeap {
    /// Creates an empty heap.
    #[must_use]
    pub fn new() -> Self {
        WakeHeap::default()
    }

    /// Empties the heap, retaining its allocation for the next
    /// rebuild.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }

    /// Schedules a wake of `kind` at `at`.
    pub fn push(&mut self, at: SimTime, kind: WakeKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(WakeEntry {
            at,
            stream: kind.stream(),
            seq,
            kind,
        });
    }

    /// Removes and returns the earliest wake.
    pub fn pop(&mut self) -> Option<Wake> {
        self.heap.pop().map(|e| Wake {
            at: e.at,
            kind: e.kind,
        })
    }

    /// The instant of the earliest wake without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending wakes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no wakes are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl std::fmt::Debug for WakeHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakeHeap")
            .field("len", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut w = WakeHeap::new();
        w.push(SimTime::from_millis(30), WakeKind::Acct);
        w.push(SimTime::from_millis(10), WakeKind::VmArrival(2));
        w.push(SimTime::from_millis(20), WakeKind::Sample);
        let order: Vec<WakeKind> = std::iter::from_fn(|| w.pop().map(|e| e.kind)).collect();
        assert_eq!(
            order,
            vec![WakeKind::VmArrival(2), WakeKind::Sample, WakeKind::Acct]
        );
    }

    #[test]
    fn same_instant_orders_by_stream() {
        let mut w = WakeHeap::new();
        let t = SimTime::from_millis(50);
        // Insert in reverse stream order; pops must follow stream rank.
        w.push(t, WakeKind::VmArrival(0));
        w.push(t, WakeKind::VmDrain(0));
        w.push(t, WakeKind::Sample);
        w.push(t, WakeKind::Governor);
        w.push(t, WakeKind::Acct);
        let order: Vec<u8> = std::iter::from_fn(|| w.pop().map(|e| e.kind.stream())).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn same_stream_is_fifo() {
        let mut w = WakeHeap::new();
        let t = SimTime::from_millis(5);
        for i in 0..64 {
            w.push(t, WakeKind::VmDrain(i));
        }
        let order: Vec<WakeKind> = std::iter::from_fn(|| w.pop().map(|e| e.kind)).collect();
        let expect: Vec<WakeKind> = (0..64).map(WakeKind::VmDrain).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut w = WakeHeap::new();
        for i in 0..32 {
            w.push(SimTime::from_millis(i), WakeKind::Acct);
        }
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.peek_time(), None);
        w.push(SimTime::from_millis(1), WakeKind::Governor);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop().map(|e| e.kind), Some(WakeKind::Governor));
    }
}
