//! Simulated time.
//!
//! [`SimTime`] is an absolute instant; [`SimDuration`] is a span between
//! instants. Both are microsecond-resolution `u64` newtypes so that the
//! whole simulation is exact integer arithmetic — no floating-point clock
//! drift across the multi-thousand-second runs the paper's figures need.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant of simulated time, in microseconds since the
/// start of the simulation.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`].
///
/// # Example
///
/// ```
/// use simkernel::{SimTime, SimDuration};
/// let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(t.as_micros(), 2_500_000);
/// assert_eq!(format!("{t}"), "2.500s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use simkernel::SimDuration;
/// let d = SimDuration::from_millis(30);
/// assert_eq!(d * 3, SimDuration::from_millis(90));
/// assert_eq!(d.as_secs_f64(), 0.030);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid simulated time {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// This instant as whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration. Returns `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Rounds this instant *down* to a multiple of `period`.
    ///
    /// Useful for aligning samples to accounting-period boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn align_down(self, period: SimDuration) -> SimTime {
        assert!(period.0 > 0, "period must be non-zero");
        SimTime(self.0 - self.0 % period.0)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from whole microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from whole milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// This span as whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span as whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This span as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if this span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two spans.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Multiplies this span by a non-negative fraction, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    #[must_use]
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f.is_finite() && f >= 0.0, "invalid factor {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// Integer division: how many whole `other` spans fit in `self`.
    fn div(self, other: SimDuration) -> u64 {
        self.0 / other.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 % other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{:03}s",
            self.0 / 1_000_000,
            (self.0 % 1_000_000) / 1_000
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{:03}s",
            self.0 / 1_000_000,
            (self.0 % 1_000_000) / 1_000
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn float_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid simulated time")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_micros(), 10_250_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(d * 4, SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_secs(1) / d, 4);
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(late.duration_since(early), SimDuration::from_secs(1));
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
    }

    #[test]
    fn align_down() {
        let t = SimTime::from_micros(35_500);
        assert_eq!(
            t.align_down(SimDuration::from_millis(10)),
            SimTime::from_millis(30)
        );
        let exact = SimTime::from_millis(30);
        assert_eq!(exact.align_down(SimDuration::from_millis(10)), exact);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(3);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(2)); // 1.5 rounds to 2
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1_234)), "1.234s");
        assert_eq!(format!("{}", SimDuration::from_micros(500)), "0.000s");
    }

    #[test]
    fn min_and_saturating() {
        let a = SimDuration::from_millis(5);
        let b = SimDuration::from_millis(7);
        assert_eq!(a.min(b), a);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_millis(2));
    }
}
