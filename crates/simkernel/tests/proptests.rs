//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use simkernel::{Engine, EventQueue, SimDuration, SimTime};

proptest! {
    /// Popping the queue always yields events in non-decreasing time
    /// order, whatever the insertion order.
    #[test]
    fn queue_yields_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.at >= last, "time went backwards");
            last = ev.at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Events at equal times pop in insertion (FIFO) order.
    #[test]
    fn queue_equal_times_fifo(n in 1usize..100, t in 0u64..1_000) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_micros(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    /// Cancelling an arbitrary subset fires exactly the complement.
    #[test]
    fn cancellation_fires_complement(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times.iter().enumerate()
            .map(|(i, &t)| (q.push(SimTime::from_micros(t), i), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (idx, (id, payload)) in ids.iter().enumerate() {
            if *mask.get(idx % mask.len()).unwrap_or(&false) {
                q.cancel(*id);
            } else {
                expected.push(*payload);
            }
        }
        let mut fired: Vec<usize> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        fired.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    /// The engine clock is monotone non-decreasing across any schedule.
    #[test]
    fn engine_clock_monotone(offsets in proptest::collection::vec(0u64..5_000, 1..50)) {
        struct W { seen: Vec<SimTime> }
        let mut engine = Engine::new();
        let mut w = W { seen: Vec::new() };
        for &off in &offsets {
            engine.schedule(
                SimTime::from_micros(off),
                move |w: &mut W, eng: &mut Engine<W>| {
                    w.seen.push(eng.now());
                    // Handlers may reschedule relative to now.
                    if off % 7 == 0 {
                        let at = eng.now() + SimDuration::from_micros(off % 13);
                        eng.schedule(at, |w: &mut W, eng: &mut Engine<W>| {
                            w.seen.push(eng.now());
                        });
                    }
                },
            );
        }
        engine.run(&mut w);
        for pair in w.seen.windows(2) {
            prop_assert!(pair[1] >= pair[0]);
        }
    }

    /// `run_until` never executes an event past the horizon.
    #[test]
    fn run_until_respects_horizon(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        horizon in 0u64..10_000,
    ) {
        let mut engine = Engine::new();
        let mut fired: Vec<u64> = Vec::new();
        for &t in &times {
            engine.schedule(SimTime::from_micros(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        engine.run_until(&mut fired, SimTime::from_micros(horizon));
        for &t in &fired {
            prop_assert!(t <= horizon);
        }
        let expected = times.iter().filter(|&&t| t <= horizon).count();
        prop_assert_eq!(fired.len(), expected);
    }
}
