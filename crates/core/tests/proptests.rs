//! Property tests on the paper's equations (pas-core): the algebra of
//! Section 4.2 must hold for arbitrary operating points, not just the
//! Optiplex ladder.

use pas_core::equations::{
    absolute_load, capacity_percent, compensated_credit, load_at_ratio, time_at_ratio,
    time_with_credit,
};
use pas_core::{Credit, FreqPlanner, MovingAverage};
use proptest::prelude::*;

fn ratios() -> impl Strategy<Value = f64> {
    0.1f64..=1.0
}

fn cfs() -> impl Strategy<Value = f64> {
    0.75f64..=1.05
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Equation 1 round-trip: projecting a load to fmax and back is
    /// the identity.
    #[test]
    fn eq1_round_trips(load in 0.0f64..=100.0, r in ratios(), cf in cfs()) {
        let abs = absolute_load(load, r, cf);
        let back = load_at_ratio(abs, r, cf);
        prop_assert!((back - load).abs() < 1e-9 * load.max(1.0), "{back} vs {load}");
    }

    /// Equation 2: execution time scales by exactly 1/(ratio·cf), so
    /// time at fmax is recovered by multiplying back.
    #[test]
    fn eq2_scales_time(t_max in 0.001f64..1e4, r in ratios(), cf in cfs()) {
        let t_i = time_at_ratio(t_max, r, cf);
        prop_assert!(t_i >= t_max * 0.9, "slower frequency must not speed the job up much");
        prop_assert!((t_i * r * cf - t_max).abs() < 1e-9 * t_max, "Eq.2 algebra");
    }

    /// Equation 3: doubling the credit halves the time; the general
    /// form is exact inverse proportionality.
    #[test]
    fn eq3_credit_time_inverse(t in 0.001f64..1e4, c0 in 1.0f64..=100.0, c1 in 1.0f64..=100.0) {
        let t1 = time_with_credit(t, Credit::percent(c0), Credit::percent(c1));
        prop_assert!((t1 * c1 - t * c0).abs() < 1e-6 * (t * c0), "T·C invariant");
    }

    /// Equation 4 composed with the capacity it buys is the identity:
    /// the compensated credit delivers exactly the booked absolute
    /// capacity (when no clamping applies).
    #[test]
    fn eq4_preserves_absolute_capacity(c in 1.0f64..=60.0, r in ratios(), cf in cfs()) {
        let booked = Credit::percent(c);
        let comp = compensated_credit(booked, r, cf);
        prop_assume!(comp.as_percent() <= 100.0); // no wall-clock clamp
        let delivered = comp.as_percent() * r * cf;
        prop_assert!((delivered - c).abs() < 1e-9 * c, "{delivered} vs booked {c}");
    }

    /// Equation 4 is antitone in frequency: lower ratios yield larger
    /// compensated credits.
    #[test]
    fn eq4_antitone_in_ratio(c in 1.0f64..=60.0, cf in cfs()) {
        let booked = Credit::percent(c);
        let mut prev = 0.0;
        for step in (2..=10).rev() {
            let r = step as f64 / 10.0;
            let comp = compensated_credit(booked, r, cf).as_percent();
            prop_assert!(comp >= prev - 1e-12, "credit must grow as frequency falls");
            prev = comp;
        }
    }

    /// `capacity_percent` is exactly the break-even load for Listing
    /// 1.1: any absolute load strictly below it fits, anything above
    /// does not.
    #[test]
    fn capacity_is_the_planning_threshold(r in ratios(), cf in cfs()) {
        let cap = capacity_percent(r, cf);
        prop_assert!((cap - 100.0 * r * cf).abs() < 1e-9);
    }

    /// The moving average lies within the sample range, converges to a
    /// constant input, and a window of 1 is the identity.
    #[test]
    fn moving_average_behaviour(samples in proptest::collection::vec(0.0f64..=100.0, 1..50)) {
        let mut ma = MovingAverage::new(3);
        let mut last = 0.0;
        for &s in &samples {
            last = ma.push(s);
        }
        let lo = samples.iter().rev().take(3).cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().rev().take(3).cloned().fold(0.0f64, f64::max);
        prop_assert!(last >= lo - 1e-12 && last <= hi + 1e-12, "{last} outside [{lo},{hi}]");

        let mut id = MovingAverage::new(1);
        for &s in &samples {
            prop_assert_eq!(id.push(s), s, "window 1 is the identity");
        }

        let mut conv = MovingAverage::new(5);
        let mut out = 0.0;
        for _ in 0..10 {
            out = conv.push(42.0);
        }
        prop_assert!((out - 42.0).abs() < 1e-12);
    }

    /// The planner always returns a ladder state, the chosen state
    /// absorbs the load whenever any state can, and the choice is
    /// monotone in the load.
    #[test]
    fn planner_is_sound_and_monotone(loads in proptest::collection::vec(0.0f64..=120.0, 1..20)) {
        let table = cpumodel::machines::optiplex_755().pstate_table();
        let planner = FreqPlanner::new(table.clone());
        let mut sorted = loads.clone();
        sorted.sort_by(f64::total_cmp);
        let picks: Vec<_> = sorted.iter().map(|&l| planner.compute_new_freq(l)).collect();
        prop_assert!(picks.windows(2).all(|w| w[0] <= w[1]), "monotone in load");
        for (&l, &p) in sorted.iter().zip(&picks) {
            prop_assert!(p <= table.max_idx());
            let cap = capacity_percent(table.ratio(p), table.cf(p));
            if p < table.max_idx() {
                prop_assert!(cap > l, "chosen state must absorb the load");
            }
        }
    }
}
