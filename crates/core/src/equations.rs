//! Equations 1–4 of the paper (Section 4.2), as pure functions.
//!
//! Notation (paper ↔ code):
//!
//! * `ratio_i = F_i / F_max` — `ratio`
//! * `cf_i` — `cf` (see [`cpumodel::CfModel`])
//! * loads are percentages of the processor (0–100)
//! * credits are percentages of the processor **at maximum frequency**
//!   (the SLA unit a customer buys), wrapped in [`Credit`]

use std::fmt;
use std::ops::{Add, Div, Mul};

use serde::{Deserialize, Serialize};

/// A CPU credit: a percentage of the processor's computing capacity
/// *at maximum frequency* (the paper's SLA unit).
///
/// Credits may legitimately exceed 100% after PAS compensation at a
/// low frequency — the paper notes "the sum of the VM credits may be
/// more than 100%". Negative credits are rejected.
///
/// # Example
///
/// ```
/// use pas_core::Credit;
/// let c = Credit::percent(20.0);
/// assert_eq!(c.as_percent(), 20.0);
/// assert!((c.as_fraction() - 0.2).abs() < 1e-12);
/// assert_eq!(format!("{c}"), "20.0%");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Credit(f64);

impl Credit {
    /// A zero credit (Xen semantics: *no cap*, i.e. a variable-credit
    /// VM; see the paper's Section 3.1 discussion of null credits).
    pub const ZERO: Credit = Credit(0.0);

    /// Creates a credit from a percentage.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is negative or not finite.
    #[must_use]
    pub fn percent(pct: f64) -> Self {
        assert!(pct.is_finite() && pct >= 0.0, "invalid credit {pct}%");
        Credit(pct)
    }

    /// Creates a credit from a fraction (`0.2` → 20%).
    ///
    /// # Panics
    ///
    /// Panics if `frac` is negative or not finite.
    #[must_use]
    pub fn fraction(frac: f64) -> Self {
        Credit::percent(frac * 100.0)
    }

    /// This credit as a percentage.
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0
    }

    /// This credit as a fraction of the processor.
    #[must_use]
    pub fn as_fraction(self) -> f64 {
        self.0 / 100.0
    }

    /// `true` for the zero credit (Xen's "no cap" marker).
    #[must_use]
    pub fn is_uncapped(self) -> bool {
        self.0 == 0.0
    }

    /// Clamps to at most `pct` percent (e.g. 100% of one core).
    #[must_use]
    pub fn clamped_to(self, pct: f64) -> Credit {
        Credit(self.0.min(pct))
    }
}

impl fmt::Display for Credit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0)
    }
}

impl Add for Credit {
    type Output = Credit;
    fn add(self, other: Credit) -> Credit {
        Credit(self.0 + other.0)
    }
}

impl Mul<f64> for Credit {
    type Output = Credit;
    fn mul(self, k: f64) -> Credit {
        Credit::percent(self.0 * k)
    }
}

impl Div<f64> for Credit {
    type Output = Credit;
    fn div(self, k: f64) -> Credit {
        Credit::percent(self.0 / k)
    }
}

fn check_ratio_cf(ratio: f64, cf: f64) {
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "frequency ratio {ratio} out of (0,1]"
    );
    assert!(cf > 0.0 && cf.is_finite(), "cf {cf} must be positive");
}

/// **Equation 1 (forward)** — the load a demand would impose at
/// maximum frequency, given the load `load_i` it imposes at ratio
/// `ratio` with factor `cf`:
/// `L_max = L_i · ratio · cf`.
///
/// This is exactly the paper's *absolute load* when `load_i` is the
/// measured global load at the current frequency.
///
/// # Panics
///
/// Panics if `ratio` is outside `(0, 1]` or `cf` is not positive.
#[must_use]
pub fn absolute_load(load_i: f64, ratio: f64, cf: f64) -> f64 {
    check_ratio_cf(ratio, cf);
    load_i * ratio * cf
}

/// **Equation 1 (inverse)** — the load observed at ratio `ratio` for a
/// demand whose load at maximum frequency is `load_max`:
/// `L_i = L_max / (ratio · cf)`.
///
/// # Panics
///
/// Panics if `ratio` is outside `(0, 1]` or `cf` is not positive.
#[must_use]
pub fn load_at_ratio(load_max: f64, ratio: f64, cf: f64) -> f64 {
    check_ratio_cf(ratio, cf);
    load_max / (ratio * cf)
}

/// **Equation 2** — execution time at ratio `ratio` of a job that
/// takes `t_max` at maximum frequency (same credit in both runs):
/// `T_i = T_max / (ratio · cf)`.
///
/// # Panics
///
/// Panics if `ratio` is outside `(0, 1]` or `cf` is not positive.
#[must_use]
pub fn time_at_ratio(t_max: f64, ratio: f64, cf: f64) -> f64 {
    check_ratio_cf(ratio, cf);
    t_max / (ratio * cf)
}

/// **Equation 3** — execution time after a credit change (same
/// frequency in both runs): `T_j = T_init · C_init / C_j`.
///
/// # Panics
///
/// Panics if either credit is zero (zero credit means *uncapped* in
/// Xen and has no proportionality semantics).
#[must_use]
pub fn time_with_credit(t_init: f64, c_init: Credit, c_j: Credit) -> f64 {
    assert!(
        !c_init.is_uncapped() && !c_j.is_uncapped(),
        "equation 3 needs non-zero credits"
    );
    t_init * c_init.as_percent() / c_j.as_percent()
}

/// **Equation 4** — the compensated credit that preserves a VM's
/// computing capacity when the processor runs at ratio `ratio`:
/// `C_j = C_init / (ratio · cf)`.
///
/// Zero (uncapped) credits are returned unchanged — there is nothing
/// to compensate.
///
/// # Panics
///
/// Panics if `ratio` is outside `(0, 1]` or `cf` is not positive.
#[must_use]
pub fn compensated_credit(c_init: Credit, ratio: f64, cf: f64) -> Credit {
    check_ratio_cf(ratio, cf);
    if c_init.is_uncapped() {
        return c_init;
    }
    Credit::percent(c_init.as_percent() / (ratio * cf))
}

/// The computing capacity of the processor at ratio `ratio`, as a
/// percentage of its capacity at maximum frequency:
/// `100 · ratio · cf` — the left side of the Listing 1.1 test.
///
/// # Panics
///
/// Panics if `ratio` is outside `(0, 1]` or `cf` is not positive.
#[must_use]
pub fn capacity_percent(ratio: f64, cf: f64) -> f64 {
    check_ratio_cf(ratio, cf);
    100.0 * ratio * cf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example_eq1() {
        // Paper: Fmax 3000, Fi 1500 → ratio 0.5; 10% load at Fmax is
        // 20% at Fi (cf = 1).
        let li = load_at_ratio(10.0, 0.5, 1.0);
        assert!((li - 20.0).abs() < 1e-12);
        assert!((absolute_load(li, 0.5, 1.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn paper_worked_example_eq4() {
        // Paper: 20% credit, frequency halved → 40% credit.
        let c = compensated_credit(Credit::percent(20.0), 0.5, 1.0);
        assert!((c.as_percent() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn fig1_compensation_values() {
        // Figure 1: 2133/2667 = 0.7999; credits 10..100 map to
        // 13, 25, 38, 50, 63, 75, 88, 100, 113, 125 (rounded).
        let ratio = 2133.0 / 2667.0;
        let expected = [
            13.0, 25.0, 38.0, 50.0, 63.0, 75.0, 88.0, 100.0, 113.0, 125.0,
        ];
        for (i, want) in expected.iter().enumerate() {
            let init = Credit::percent((i as f64 + 1.0) * 10.0);
            let got = compensated_credit(init, ratio, 1.0).as_percent().round();
            assert!((got - want).abs() < 1.0, "credit {init}: {got} vs {want}");
        }
    }

    #[test]
    fn eq2_eq3_consistency() {
        // Compensating per eq4 must cancel the eq2 slowdown via eq3.
        let (ratio, cf) = (0.6, 0.95);
        let t_max = 500.0;
        let c_init = Credit::percent(30.0);
        let t_slow = time_at_ratio(t_max, ratio, cf);
        let c_new = compensated_credit(c_init, ratio, cf);
        let t_comp = time_with_credit(t_slow, c_init, c_new);
        assert!((t_comp - t_max).abs() < 1e-9, "compensation restores T_max");
    }

    #[test]
    fn cf_affects_compensation() {
        // cf < 1 (E5-2620-like) needs *more* credit than 1/ratio.
        let with_cf = compensated_credit(Credit::percent(20.0), 0.6, 0.8);
        let without = compensated_credit(Credit::percent(20.0), 0.6, 1.0);
        assert!(with_cf > without);
    }

    #[test]
    fn uncapped_credit_is_preserved() {
        let c = compensated_credit(Credit::ZERO, 0.5, 1.0);
        assert!(c.is_uncapped());
    }

    #[test]
    fn capacity_percent_at_fmax_is_100() {
        assert!((capacity_percent(1.0, 1.0) - 100.0).abs() < 1e-12);
        assert!(capacity_percent(0.5, 0.9) < 50.0);
    }

    #[test]
    fn credit_arithmetic() {
        let c = Credit::percent(20.0) + Credit::percent(30.0);
        assert_eq!(c, Credit::percent(50.0));
        assert_eq!(Credit::percent(20.0) * 2.0, Credit::percent(40.0));
        assert_eq!(Credit::percent(20.0) / 2.0, Credit::percent(10.0));
        assert_eq!(
            Credit::percent(120.0).clamped_to(100.0),
            Credit::percent(100.0)
        );
        assert_eq!(Credit::fraction(0.25), Credit::percent(25.0));
    }

    #[test]
    #[should_panic(expected = "invalid credit")]
    fn negative_credit_rejected() {
        let _ = Credit::percent(-1.0);
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn ratio_above_one_rejected() {
        let _ = absolute_load(10.0, 1.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "needs non-zero credits")]
    fn eq3_rejects_uncapped() {
        let _ = time_with_credit(100.0, Credit::ZERO, Credit::percent(10.0));
    }
}
